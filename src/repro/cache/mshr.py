"""Miss Status Holding Registers with same-line merging."""

from __future__ import annotations


class MshrEntry:
    """One outstanding miss: the waiters to wake and the in-flight txn."""

    __slots__ = ("line_addr", "waiters", "txn", "issued", "rfo")

    def __init__(self, line_addr: int):
        self.line_addr = line_addr
        self.waiters: list = []
        self.txn = None
        self.issued = False
        # True when a store (read-for-ownership) is merged into this miss.
        self.rfo = False


class MshrFile:
    """A fixed-capacity file of outstanding misses, keyed by line address."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        self.capacity = entries
        self._entries: dict[int, MshrEntry] = {}
        self.peak = 0
        self.merges = 0
        self.full_rejections = 0

    def get(self, line_addr: int) -> MshrEntry | None:
        return self._entries.get(line_addr)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self, line_addr: int) -> MshrEntry | None:
        """New entry for ``line_addr``; None if the file is full.

        Callers must check :meth:`get` first — allocating a duplicate line
        is a bug and raises.
        """
        if line_addr in self._entries:
            raise ValueError(f"MSHR already tracks line {line_addr:#x}")
        if self.full:
            self.full_rejections += 1
            return None
        entry = MshrEntry(line_addr)
        self._entries[line_addr] = entry
        self.peak = max(self.peak, len(self._entries))
        return entry

    def release(self, line_addr: int) -> MshrEntry:
        """Remove and return the entry (miss completed)."""
        return self._entries.pop(line_addr)

    def det_state(self) -> list[int]:
        """Architectural state words for the determinism hash-chain.

        Entries only change inside cache/DRAM events, which always occur
        at stepped cycles, so everything here is constant during
        quiescent fast-forward windows.  Dict order is insertion order —
        itself a deterministic product of the simulated access stream —
        so the word sequence is reproducible across processes.
        """
        values = [len(self._entries)]
        for line_addr, entry in self._entries.items():
            values.append(line_addr)
            values.append(len(entry.waiters))
            values.append(
                (1 if entry.rfo else 0) | (2 if entry.issued else 0)
            )
            txn = entry.txn
            values.append(-1 if txn is None else txn.seq)
        return values

    def __len__(self) -> int:
        return len(self._entries)
