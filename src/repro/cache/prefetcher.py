"""L2 stream prefetcher (Section 5.5; after Srinath et al., HPCA 2007).

Tracks up to ``streams`` independent access streams.  A stream is allocated
on a miss; two further misses in the same direction within the training
window confirm it, after which each demand access to the stream issues up to
``degree`` prefetches, staying within ``distance`` lines of the demand
pointer.  The paper's aggressive configuration: 64 streams, distance 64,
degree 4.
"""

from __future__ import annotations

from repro.config import PrefetcherConfig


class _Stream:
    __slots__ = ("last_line", "direction", "confidence", "next_prefetch", "lru")

    def __init__(self, line: int, lru: int):
        self.last_line = line
        self.direction = 0
        self.confidence = 0
        self.next_prefetch = line
        self.lru = lru


class StreamPrefetcher:
    """Per-L2 stream prefetch engine.

    :meth:`observe` is called with each demand access (line-granular) and
    returns the list of line addresses to prefetch now.
    """

    #: A new access within this many lines of a stream head trains it.
    TRAIN_WINDOW = 16
    #: Confirmations needed before a stream issues prefetches.
    CONFIRM = 2

    def __init__(self, config: PrefetcherConfig, line_bytes: int):
        self.config = config
        self.line_bytes = line_bytes
        self._streams: dict[int, _Stream] = {}
        self._clock = 0
        self.issued = 0

    def _region(self, line: int) -> int:
        # Streams are tracked per 4 KB region to keep matching O(1).
        return line // (4096 // self.line_bytes)

    def observe(self, address: int, is_miss: bool) -> list[int]:
        """Train on a demand access; return prefetch line addresses."""
        if not self.config.enabled:
            return []
        line = address // self.line_bytes
        region = self._region(line)
        self._clock += 1
        stream = self._streams.get(region)
        if stream is None:
            if not is_miss:
                return []
            if len(self._streams) >= self.config.streams:
                # Evict the least-recently-used stream.
                victim = min(self._streams, key=lambda r: self._streams[r].lru)
                del self._streams[victim]
            self._streams[region] = _Stream(line, self._clock)
            return []

        stream.lru = self._clock
        delta = line - stream.last_line
        if delta == 0:
            return []
        direction = 1 if delta > 0 else -1
        if stream.confidence < self.CONFIRM:
            if stream.direction == direction:
                stream.confidence += 1
            else:
                stream.direction = direction
                stream.confidence = 1
            stream.last_line = line
            stream.next_prefetch = line + direction
            if stream.confidence < self.CONFIRM:
                return []

        if direction != stream.direction:
            # Direction flipped: retrain.
            stream.direction = direction
            stream.confidence = 1
            stream.last_line = line
            stream.next_prefetch = line + direction
            return []

        stream.last_line = line
        limit = line + direction * self.config.distance
        prefetches = []
        for _ in range(self.config.degree):
            nxt = stream.next_prefetch
            if direction > 0 and (nxt <= line or nxt > limit):
                nxt = line + 1 if nxt <= line else None
            elif direction < 0 and (nxt >= line or nxt < limit):
                nxt = line - 1 if nxt >= line else None
            if nxt is None:
                break
            prefetches.append(nxt * self.line_bytes)
            stream.next_prefetch = nxt + direction
        self.issued += len(prefetches)
        return prefetches

    def active_streams(self) -> int:
        return len(self._streams)
