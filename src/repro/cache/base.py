"""Set-associative cache array with true-LRU replacement."""

from __future__ import annotations

from repro.config import CacheConfig


class CacheLine:
    """One resident line: coherence state, dirtiness, recency.

    ``state`` and ``dirty`` feed the owning cache's incrementally
    maintained det-state words; mutate them through
    :meth:`SetAssociativeCache.set_line_state` /
    :meth:`SetAssociativeCache.set_line_dirty`, never directly.
    """

    __slots__ = ("state", "dirty", "lru")

    def __init__(self, state: str = "S", dirty: bool = False, lru: int = 0):
        self.state = state
        self.dirty = dirty
        self.lru = lru


class SetAssociativeCache:
    """Tag array + LRU state.  Addresses are byte addresses; the cache
    computes its own line/set decomposition from its configuration.

    The determinism-chain words (resident count, dirty count, per-line
    checksum) are maintained incrementally on every mutation instead of
    being recomputed by walking every set at each chain sample — the
    walk was the single hottest function in whole-run profiles.  The
    slow full scan survives as :meth:`det_state_scan` and is asserted
    equal to the incremental words in the test suite.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.line_bytes = config.line_bytes
        self.ways = config.ways
        self.num_sets = config.sets
        if self.num_sets <= 0:
            raise ValueError(f"degenerate cache geometry: {config}")
        self._sets: list[dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0
        # Incremental det-state words (see det_state).
        self._resident = 0
        self._dirty = 0
        self._checksum = 0

    # -- address helpers -----------------------------------------------------

    def line_addr(self, address: int) -> int:
        return address - (address % self.line_bytes)

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.num_sets

    # -- operations ------------------------------------------------------------

    def lookup(self, address: int, touch: bool = True) -> CacheLine | None:
        """Return the resident line covering ``address``, if any."""
        line_addr = self.line_addr(address)
        line = self._sets[self._set_index(line_addr)].get(line_addr)
        if line is None:
            self.misses += 1
            return None
        if touch:
            self._clock += 1
            self._checksum += 131 * (self._clock - line.lru)
            line.lru = self._clock
        self.hits += 1
        return line

    def peek(self, address: int) -> CacheLine | None:
        """Lookup without touching LRU or hit/miss counters."""
        line_addr = self.line_addr(address)
        return self._sets[self._set_index(line_addr)].get(line_addr)

    def insert(
        self, address: int, state: str = "S", dirty: bool = False
    ) -> tuple[int, CacheLine] | None:
        """Install the line covering ``address``.

        Returns the evicted ``(line_addr, CacheLine)`` pair if a victim had
        to make room, else None.  Inserting an already-resident line just
        refreshes it.
        """
        line_addr = self.line_addr(address)
        cache_set = self._sets[self._set_index(line_addr)]
        self._clock += 1
        existing = cache_set.get(line_addr)
        if existing is not None:
            self._checksum += 7 * (ord(state[0]) - ord(existing.state[0]))
            existing.state = state
            if dirty and not existing.dirty:
                self._dirty += 1
                existing.dirty = True
            self._checksum += 131 * (self._clock - existing.lru)
            existing.lru = self._clock
            return None
        victim = None
        if len(cache_set) >= self.ways:
            victim_addr = min(cache_set, key=lambda a: cache_set[a].lru)
            victim_line = cache_set.pop(victim_addr)
            self._drop_words(victim_addr, victim_line)
            victim = (victim_addr, victim_line)
        cache_set[line_addr] = CacheLine(state=state, dirty=dirty, lru=self._clock)
        self._resident += 1
        if dirty:
            self._dirty += 1
        self._checksum += line_addr + 131 * self._clock + 7 * ord(state[0])
        return victim

    def invalidate(self, address: int) -> CacheLine | None:
        """Remove the line covering ``address``; returns it if present."""
        line_addr = self.line_addr(address)
        line = self._sets[self._set_index(line_addr)].pop(line_addr, None)
        if line is not None:
            self._drop_words(line_addr, line)
        return line

    def _drop_words(self, line_addr: int, line: CacheLine) -> None:
        """Remove a departing line's contribution to the det-state words."""
        self._resident -= 1
        if line.dirty:
            self._dirty -= 1
        self._checksum -= line_addr + 131 * line.lru + 7 * ord(line.state[0])

    # -- mediated line mutation ----------------------------------------------

    def set_line_state(self, line: CacheLine, state: str) -> None:
        """Change a resident line's coherence state (keeps the checksum
        current; never assign ``line.state`` directly)."""
        self._checksum += 7 * (ord(state[0]) - ord(line.state[0]))
        line.state = state

    def set_line_dirty(self, line: CacheLine, dirty: bool = True) -> None:
        """Change a resident line's dirty bit (keeps the dirty count
        current; never assign ``line.dirty`` directly)."""
        if line.dirty != dirty:
            self._dirty += 1 if dirty else -1
            line.dirty = dirty

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def det_state(self) -> list[int]:
        """Architectural state words for the determinism hash-chain.

        Tag-array contents and LRU clocks only move inside lookup/insert/
        invalidate (and the mediated line mutators) — all driven from
        stepped cycles — so these words are constant across quiescent
        fast-forward windows.  The per-line checksum is a sum, making it
        independent of set/dict iteration order.  Hit/miss counters are
        statistics and stay excluded.
        """
        return [self._clock, self._resident, self._dirty, self._checksum]

    def det_state_scan(self) -> list[int]:
        """The same four words recomputed by a full tag-array walk.

        Reference implementation for the incremental bookkeeping; the
        equivalence test drives a workload and asserts
        ``det_state() == det_state_scan()`` for every cache.
        """
        resident = 0
        dirty = 0
        checksum = 0
        for cache_set in self._sets:
            resident += len(cache_set)
            for line_addr, line in cache_set.items():
                if line.dirty:
                    dirty += 1
                checksum += line_addr + 131 * line.lru + 7 * ord(line.state[0])
        return [self._clock, resident, dirty, checksum]
