"""Cache hierarchy: private L1Ds, shared L2, MSI coherence, stream prefetch."""

from repro.cache.base import CacheLine, SetAssociativeCache
from repro.cache.hierarchy import HierarchyStats, MemoryHierarchy
from repro.cache.mshr import MshrFile
from repro.cache.prefetcher import StreamPrefetcher

__all__ = [
    "CacheLine",
    "HierarchyStats",
    "MemoryHierarchy",
    "MshrFile",
    "SetAssociativeCache",
    "StreamPrefetcher",
]
