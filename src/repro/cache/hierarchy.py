"""Two-level cache hierarchy with MSI coherence, feeding the DRAM model.

Timing model (CPU cycles), chosen to reproduce the paper's uncontended
round trips (Table 1/3: dL1 3 cycles, L2 32 cycles):

* L1 hit: ``l1.round_trip_latency``.
* L1 miss -> L2 hit: L1 latency + request traversal + response traversal =
  ``l1_rt + l2_rt`` total.
* L2 miss: adds DRAM queueing/service plus the L2 response traversal.

Coherence is MSI with an inclusive shared L2 and a full-map directory at
L1-line granularity: loads fetch Shared copies; stores upgrade or
read-for-ownership, invalidating remote sharers; a remote Modified copy is
written back to the L2 (with an intervention penalty) before a new sharer
is granted.  Dirty L2 victims become DRAM write transactions.

Criticality flows through this module untouched: the annotation attached at
load issue is copied onto the DRAM transaction (Section 3.2's widened
on-chip address bus), and merged MSHR requests take the maximum magnitude.
"""

from __future__ import annotations

from repro.cache.base import SetAssociativeCache
from repro.cache.mshr import MshrFile
from repro.cache.prefetcher import StreamPrefetcher
from repro.config import SystemConfig
from repro.dram.transaction import Transaction
from repro.telemetry.registry import LatencyHistogram

#: Extra CPU cycles when a remote L1 holds the line Modified.
INTERVENTION_PENALTY = 12
#: Retry interval for structural hazards (full MSHR / full DRAM queue).
RETRY_INTERVAL = 4


class LoadAccess:
    """Handle returned to the core for each accepted load.

    ``txn`` is filled in if/when the load reaches the DRAM queue, letting
    the naive forwarding mechanism (Section 5.1) promote it in place.
    """

    __slots__ = ("core", "pc", "address", "issue_cycle", "critical", "magnitude",
                 "txn", "went_to_dram")

    def __init__(self, core, pc, address, issue_cycle, critical, magnitude):
        self.core = core
        self.pc = pc
        self.address = address
        self.issue_cycle = issue_cycle
        self.critical = critical
        self.magnitude = magnitude
        self.txn = None
        self.went_to_dram = False


class HierarchyStats:
    """Aggregate counters the experiments consume."""

    def __init__(self):
        self.loads = 0
        self.l1_load_hits = 0
        self.l2_load_hits = 0
        self.dram_loads = 0
        self.stores = 0
        self.writebacks = 0
        self.interventions = 0
        self.invalidations = 0
        self.prefetches_issued = 0
        self.prefetches_useful = 0
        # L2-miss (DRAM-serviced) load latency distributions, split by
        # issue-time criticality — Figure 6's quantity plus its tails.
        # `total`/`count` are exact, so means are bit-identical to the
        # sum/count pairs these replace.
        self.crit_latency = LatencyHistogram()
        self.noncrit_latency = LatencyHistogram()
        # Per-static-PC DRAM-load latency distribution.
        self.pc_latency: dict[int, LatencyHistogram] = {}

    def mean_latency(self, critical: bool) -> float:
        return (self.crit_latency if critical else self.noncrit_latency).mean

    @property
    def l2_demand_accesses(self) -> int:
        return self.l2_load_hits + self.dram_loads

    @property
    def l2_hit_rate(self) -> float:
        total = self.l2_demand_accesses
        return self.l2_load_hits / total if total else 0.0


class MemoryHierarchy:
    """Private L1Ds + shared L2 + directory, bridging cores to DRAM."""

    def __init__(self, config: SystemConfig, memsys, events):
        self.config = config
        self.memsys = memsys
        self.events = events
        self.l1 = [SetAssociativeCache(config.l1d) for _ in range(config.cores)]
        self.l1_mshr = [MshrFile(config.l1d.mshr_entries) for _ in range(config.cores)]
        self.l2 = SetAssociativeCache(config.l2)
        self.l2_mshr = MshrFile(config.l2.mshr_entries)
        self.prefetcher = StreamPrefetcher(config.prefetcher, config.l2.line_bytes)
        self._prefetched_lines: set[int] = set()
        # Directory: L1-line address -> set of core ids holding a copy.
        self._dir: dict[int, set[int]] = {}
        self.stats = HierarchyStats()
        self._l1_hit_lat = config.l1d.round_trip_latency
        self._l2_half = config.l2.round_trip_latency // 2
        # Per-core count of stores awaiting an L1 MSHR (the post-commit
        # store buffer).  When it fills, the core must stall commit.
        self._store_backlog = [0] * config.cores
        self.store_buffer_entries = 12
        # Installed by System: wakes a core whose quiescent state this
        # module invalidates from the event domain (store-buffer drains,
        # an outstanding load turning out to be DRAM-bound).  See
        # OutOfOrderCore.skip_plan.
        self._wake_core = lambda core: None
        # Event-trace recorder (attached by System under REPRO_TRACE=1);
        # None during construction/prewarm, so those never record.
        self.trace = None

    def _trace_cache(self, kind: str, core: int, line_addr: int, now=None) -> None:
        # Core-phase callers must pass their explicit ``now``: the engine
        # clock behind _now() only advances at the engine loop tail, so it
        # is stale inside a windowed core step.  Event-phase callers may
        # rely on the fallback.
        if self.trace is not None:
            self.trace.cache_event(
                self._now() if now is None else now, kind, core, line_addr
            )

    # ------------------------------------------------------------------ loads

    def load(self, core, pc, address, critical, magnitude, callback, now):
        """Issue a load.  Returns a :class:`LoadAccess`, or None if the L1
        MSHR file is full (the core must replay the load)."""
        stats = self.stats
        l1 = self.l1[core]
        line = l1.lookup(address)
        handle = LoadAccess(core, pc, address, now, critical, magnitude)
        if line is not None:
            stats.loads += 1
            stats.l1_load_hits += 1
            done = now + self._l1_hit_lat
            self.events.schedule(done, lambda: callback(done))
            return handle

        line32 = l1.line_addr(address)
        mshr = self.l1_mshr[core]
        entry = mshr.get(line32)
        if entry is not None:
            stats.loads += 1
            entry.waiters.append((handle, callback))
            l2_entry = self.l2_mshr.get(self.l2.line_addr(line32))
            if l2_entry is not None and l2_entry.txn is not None:
                handle.txn = l2_entry.txn
                handle.went_to_dram = True
            if critical:
                self._bump_criticality(core, line32, magnitude, now)
            return handle
        entry = mshr.allocate(line32)
        if entry is None:
            return None
        stats.loads += 1
        entry.waiters.append((handle, callback))
        t_l2 = now + self._l1_hit_lat + max(0, self._l2_half - self._l1_hit_lat)
        self.events.schedule(
            t_l2,
            lambda: self._access_l2(core, line32, critical, magnitude,
                                    is_rfo=False, pc=pc),
        )
        return handle

    # ------------------------------------------------------------------ stores

    def can_accept_store(self, core) -> bool:
        """False when the core's store buffer is full (commit must stall)."""
        return self._store_backlog[core] < self.store_buffer_entries

    def store(self, core, address, now, _retry=False) -> None:
        """Retire a store (called at commit; buffered, non-blocking)."""
        stats = self.stats
        if not _retry:
            stats.stores += 1
        l1 = self.l1[core]
        line = l1.lookup(address)
        line32 = l1.line_addr(address)
        if line is not None:
            if _retry:
                self._store_backlog[core] -= 1
                self._wake_core(core)
            if line.state == "M":
                l1.set_line_dirty(line)
                return
            # Upgrade S -> M: invalidate remote sharers.
            self._invalidate_remote(core, line32, now)
            l1.set_line_state(line, "M")
            l1.set_line_dirty(line)
            return
        # Write-allocate: read-for-ownership through the miss path.
        mshr = self.l1_mshr[core]
        entry = mshr.get(line32)
        if entry is not None:
            if _retry:
                self._store_backlog[core] -= 1
                self._wake_core(core)
            entry.rfo = True
            return
        entry = mshr.allocate(line32)
        if entry is None:
            # Hold the store in the core's store buffer and retry; the
            # buffer's occupancy gates commit via can_accept_store().
            if not _retry:
                self._store_backlog[core] += 1
            self.events.schedule(
                now + RETRY_INTERVAL,
                lambda: self.store(core, address, now + RETRY_INTERVAL, _retry=True),
            )
            return
        if _retry:
            self._store_backlog[core] -= 1
            self._wake_core(core)
        entry.rfo = True
        t_l2 = now + self._l1_hit_lat + max(0, self._l2_half - self._l1_hit_lat)
        self.events.schedule(
            t_l2, lambda: self._access_l2(core, line32, False, 0, is_rfo=True)
        )

    # -------------------------------------------------------------- L2 access

    def _access_l2(self, core, line32, critical, magnitude, is_rfo, pc=0) -> None:
        now = self._now()
        l2 = self.l2
        line64 = l2.line_addr(line32)
        l2line = l2.lookup(line64)
        hit = l2line is not None
        self._train_prefetcher(line64, is_miss=not hit)
        if hit:
            if line64 in self._prefetched_lines:
                self._prefetched_lines.discard(line64)
                self.stats.prefetches_useful += 1
            penalty = self._resolve_remote_copies(core, line64, is_rfo)
            if not is_rfo:
                self.stats.l2_load_hits += 1
            done = now + self._l2_half + penalty
            self.events.schedule(
                done, lambda: self._fill_l1_and_respond(core, line32, is_rfo, done, None)
            )
            return
        # L2 miss -> DRAM.
        entry = self.l2_mshr.get(line64)
        if entry is not None:
            entry.waiters.append((core, line32, is_rfo))
            if critical and entry.txn is not None:
                txn = entry.txn
                if not txn.critical:
                    # Batched engine: settle the channel's open gap before
                    # the flag flips (no-op in the per-cycle engines).
                    self.memsys.presettle(txn, now, event_phase=True)
                txn.critical = True
                if magnitude > txn.magnitude:
                    txn.magnitude = magnitude
            return
        entry = self.l2_mshr.allocate(line64)
        if entry is None:
            self.events.schedule(
                now + RETRY_INTERVAL,
                lambda: self._access_l2(core, line32, critical, magnitude, is_rfo),
            )
            return
        entry.waiters.append((core, line32, is_rfo))
        txn = self.memsys.make_transaction(
            line64,
            is_write=False,
            core=core,
            pc=pc,
            critical=critical,
            magnitude=magnitude,
            callback=lambda dram_done: self._dram_fill(line64, dram_done),
        )
        entry.txn = txn
        self._mark_handles_dram(core, line32, txn)
        self._enqueue_with_retry(txn)

    def _bump_criticality(self, core, line32, magnitude, now) -> None:
        """A critical load merged into an outstanding miss: raise urgency.

        Reached only from :meth:`load`, i.e. from the core phase of the
        cycle (after the memory phase already ran).  ``now`` is the
        caller's explicit cycle — the engine clock is stale here when the
        core is stepping inside a window.
        """
        line64 = self.l2.line_addr(line32)
        entry = self.l2_mshr.get(line64)
        if entry is not None and entry.txn is not None:
            txn = entry.txn
            if not txn.critical:
                # Batched engine: settle the channel's open gap before the
                # flag flips (no-op in the per-cycle engines).
                self.memsys.presettle(txn, now, event_phase=False)
            txn.critical = True
            if magnitude > txn.magnitude:
                txn.magnitude = magnitude

    def _mark_handles_dram(self, core, line32, txn) -> None:
        entry = self.l1_mshr[core].get(line32)
        if entry is None:
            return
        for handle, _cb in entry.waiters:
            handle.txn = txn
            handle.went_to_dram = True
        self._wake_core(core)

    def _enqueue_with_retry(self, txn) -> None:
        if not self.memsys.try_enqueue(txn, self._now()):
            self.events.schedule(
                self._now() + RETRY_INTERVAL, lambda: self._enqueue_with_retry(txn)
            )

    # ----------------------------------------------------------- DRAM return

    def _dram_fill(self, line64, dram_done) -> None:
        cpu_done = self.memsys.dram_to_cpu(dram_done)
        self.events.schedule(cpu_done, lambda: self._install_l2_fill(line64, cpu_done))

    def _install_l2_fill(self, line64, now) -> None:
        entry = self.l2_mshr.release(line64)
        self._trace_cache("l2_fill", -1, line64)
        victim = self.l2.insert(line64, state="S", dirty=False)
        if victim is not None:
            self._evict_l2_line(*victim)
        respond_at = now + self._l2_half
        for core, line32, is_rfo in entry.waiters:
            self.events.schedule(
                respond_at,
                lambda c=core, l=line32, r=is_rfo: self._fill_l1_and_respond(
                    c, l, r, respond_at, line64
                ),
            )
        if entry.waiters:
            self.stats.dram_loads += 1

    def _fill_l1_and_respond(self, core, line32, is_rfo, now, from_dram_line) -> None:
        mshr = self.l1_mshr[core]
        entry = mshr.get(line32)
        rfo = is_rfo or (entry is not None and getattr(entry, "rfo", False))
        if rfo:
            self._invalidate_remote(core, line32)
        state = "M" if rfo else "S"
        victim = self.l1[core].insert(line32, state=state, dirty=rfo)
        if victim is not None:
            self._evict_l1_line(core, *victim)
        self._dir.setdefault(line32, set()).add(core)
        if entry is not None:
            released = mshr.release(line32)
            for handle, callback in released.waiters:
                if callback is None:
                    continue
                if handle.went_to_dram:
                    latency = now - handle.issue_cycle
                    stats = self.stats
                    if handle.critical:
                        stats.crit_latency.record(latency)
                    else:
                        stats.noncrit_latency.record(latency)
                    hist = stats.pc_latency.get(handle.pc)
                    if hist is None:
                        hist = stats.pc_latency[handle.pc] = LatencyHistogram()
                    hist.record(latency)
                callback(now)

    # ----------------------------------------------------------- coherence

    def _resolve_remote_copies(self, core, line64, is_rfo) -> int:
        """Handle remote L1 copies on an L2 hit; returns extra latency."""
        penalty = 0
        for line32 in self._covered_l1_lines(line64):
            sharers = self._dir.get(line32)
            if not sharers:
                continue
            for other in list(sharers):
                if other == core:
                    continue
                other_line = self.l1[other].peek(line32)
                if other_line is None:
                    sharers.discard(other)
                    continue
                if other_line.state == "M":
                    # Writeback to L2, downgrade (or invalidate on RFO).
                    l2line = self.l2.peek(line64)
                    if l2line is not None:
                        self.l2.set_line_dirty(l2line)
                    penalty = INTERVENTION_PENALTY
                    self.stats.interventions += 1
                    if is_rfo:
                        self.l1[other].invalidate(line32)
                        sharers.discard(other)
                        self.stats.invalidations += 1
                        self._trace_cache("inval", other, line32)
                    else:
                        self.l1[other].set_line_state(other_line, "S")
                        self.l1[other].set_line_dirty(other_line, False)
                elif is_rfo:
                    self.l1[other].invalidate(line32)
                    sharers.discard(other)
                    self.stats.invalidations += 1
                    self._trace_cache("inval", other, line32)
        return penalty

    def _invalidate_remote(self, core, line32, now=None) -> None:
        sharers = self._dir.get(line32)
        if not sharers:
            return
        for other in list(sharers):
            if other == core:
                continue
            other_line = self.l1[other].invalidate(line32)
            if other_line is not None:
                if other_line.state == "M":
                    l2line = self.l2.peek(self.l2.line_addr(line32))
                    if l2line is not None:
                        self.l2.set_line_dirty(l2line)
                self.stats.invalidations += 1
                self._trace_cache("inval", other, line32, now)
            sharers.discard(other)

    # ------------------------------------------------------------- evictions

    def _evict_l1_line(self, core, line_addr, line) -> None:
        sharers = self._dir.get(line_addr)
        if sharers is not None:
            sharers.discard(core)
            if not sharers:
                del self._dir[line_addr]
        if line.dirty or line.state == "M":
            l2line = self.l2.peek(self.l2.line_addr(line_addr))
            if l2line is not None:
                self.l2.set_line_dirty(l2line)

    def _evict_l2_line(self, line64, line) -> None:
        dirty = line.dirty
        # Inclusive L2: back-invalidate every covered L1 line everywhere.
        for line32 in self._covered_l1_lines(line64):
            sharers = self._dir.pop(line32, None)
            if not sharers:
                continue
            for core in sharers:
                l1line = self.l1[core].invalidate(line32)
                if l1line is not None:
                    if l1line.state == "M" or l1line.dirty:
                        dirty = True
                    self.stats.invalidations += 1
                    self._trace_cache("inval", core, line32)
        self._prefetched_lines.discard(line64)
        if dirty:
            self._trace_cache("dirty_evict", -1, line64)
            self._writeback(line64)

    def _writeback(self, line64) -> None:
        self.stats.writebacks += 1
        txn = self.memsys.make_transaction(line64, is_write=True)
        self._enqueue_with_retry(txn)

    # ------------------------------------------------------------ prefetching

    def _train_prefetcher(self, line64, is_miss) -> None:
        for address in self.prefetcher.observe(line64, is_miss):
            target = self.l2.line_addr(address)
            if self.l2.peek(target) is not None or self.l2_mshr.get(target) is not None:
                continue
            entry = self.l2_mshr.allocate(target)
            if entry is None:
                return
            txn = self.memsys.make_transaction(
                target,
                is_write=False,
                core=-1,
                is_prefetch=True,
                callback=lambda dram_done, t=target: self._dram_fill(t, dram_done),
            )
            entry.txn = txn
            self._prefetched_lines.add(target)
            self.stats.prefetches_issued += 1
            self._enqueue_with_retry(txn)

    def prewarm(self, core: int, ranges) -> None:
        """Pre-populate caches per a trace's ``prewarm`` hints.

        Models the paper's fast-forward warmup: level-1 ranges are installed
        in the owning core's L1 (Shared) and in the L2; level-2 ranges go to
        the L2 only.  Insertion respects capacity (LRU evicts as usual), and
        the directory is kept consistent.
        """
        for base, nbytes, level in ranges:
            for line64 in range(
                self.l2.line_addr(base), base + nbytes, self.config.l2.line_bytes
            ):
                victim = self.l2.insert(line64, state="S", dirty=False)
                if victim is not None:
                    self._evict_l2_line(*victim)
            if level <= 1:
                l1 = self.l1[core]
                for line32 in range(
                    l1.line_addr(base), base + nbytes, self.config.l1d.line_bytes
                ):
                    victim = l1.insert(line32, state="S", dirty=False)
                    if victim is not None:
                        self._evict_l1_line(core, *victim)
                    self._dir.setdefault(line32, set()).add(core)

    def _covered_l1_lines(self, line64: int):
        return range(
            line64, line64 + self.config.l2.line_bytes, self.config.l1d.line_bytes
        )

    # -------------------------------------------------------------- telemetry

    def register_metrics(self, registry, prefix: str = "hier") -> None:
        """Register this hierarchy's instruments under ``prefix``.

        The latency histograms are the live stats objects, so recording
        stays a single method call; everything marked ``sampled`` is
        event-driven (updated only at stepped cycles) and therefore
        window-constant, as the interval sampler requires.
        """
        stats = self.stats
        registry.histogram(f"{prefix}.crit_latency", stats.crit_latency)
        registry.histogram(f"{prefix}.noncrit_latency", stats.noncrit_latency)
        registry.gauge(f"{prefix}.loads", lambda: stats.loads, sampled=True)
        registry.gauge(f"{prefix}.dram_loads",
                       lambda: stats.dram_loads, sampled=True)
        registry.gauge(f"{prefix}.l1_load_hits", lambda: stats.l1_load_hits)
        registry.gauge(f"{prefix}.l2_load_hits", lambda: stats.l2_load_hits)
        registry.gauge(f"{prefix}.writebacks", lambda: stats.writebacks)
        registry.gauge(f"{prefix}.prefetches_issued",
                       lambda: stats.prefetches_issued)
        registry.gauge(f"{prefix}.l2_mshr_occupancy",
                       lambda: len(self.l2_mshr), sampled=True)
        # Epoch-resolved criticality latency: sampling cumulative
        # count/total lets consumers difference adjacent samples into
        # per-epoch means (histograms themselves are never sampled).
        registry.gauge(f"{prefix}.crit_latency_count",
                       lambda: stats.crit_latency.count, sampled=True)
        registry.gauge(f"{prefix}.crit_latency_total",
                       lambda: stats.crit_latency.total, sampled=True)
        registry.gauge(f"{prefix}.noncrit_latency_count",
                       lambda: stats.noncrit_latency.count, sampled=True)
        registry.gauge(f"{prefix}.noncrit_latency_total",
                       lambda: stats.noncrit_latency.total, sampled=True)

    def det_state(self) -> list[int]:
        """Architectural state words for the determinism hash-chain.

        Directory, prefetch bookkeeping, store backlogs, and MSHR files
        change only inside load/store/event handlers — all of which run
        at stepped cycles — so everything here is constant during
        quiescent fast-forward windows.  Set contents are reduced to
        order-insensitive aggregates (sizes); dict iteration in the MSHR
        views is insertion-ordered and hence deterministic.
        """
        values = [
            len(self._dir),
            len(self._prefetched_lines),
            sum(self._store_backlog),
        ]
        for mshr in self.l1_mshr:
            values.extend(mshr.det_state())
        values.extend(self.l2_mshr.det_state())
        for cache in self.l1:
            values.extend(cache.det_state())
        values.extend(self.l2.det_state())
        return values

    # ------------------------------------------------------------------ clock

    def bind_clock(self, clock_fn) -> None:
        """Install the closure returning the current CPU cycle."""
        self._now = clock_fn

    def bind_core_waker(self, wake_fn) -> None:
        """Install the per-core wake callback used by cycle skipping."""
        self._wake_core = wake_fn
