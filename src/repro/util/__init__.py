"""Host-side utilities shared across the simulator's observability layers."""
