"""The single sanctioned atomic-persistence API for shared on-disk artifacts.

Several processes share rendezvous files: the engine result cache
(``run_many`` workers and concurrent sweeps race the same content hash),
stream ``MANIFEST.json`` files, the fleet ``.registry/`` entries and
``INDEX.json`` materialized view, ``BENCH_<n>.json`` records, the
incremental-analysis cache shards, and the ``REPRO_RUN_LOG`` metrics
log.  Every guarantee the repo sells — parse-clean artifacts after a
SIGKILL, identical cache bytes whichever racing writer wins, a fleet
index that is at worst one registration behind — reduces to two idioms:

* **replace**: write the full payload to a uniquely named temporary in
  the destination directory, flush, ``fsync``, then ``os.replace`` it
  over the target.  POSIX rename is atomic within a filesystem, so a
  reader (or a crash) sees either the old complete content or the new
  complete content, never a prefix.
* **append**: open with ``O_APPEND`` and emit each record as a *single*
  ``os.write`` of one complete line.  The kernel serializes ``O_APPEND``
  writes, so concurrent appenders cannot interleave partial records the
  way buffered ``open(path, "a")`` writes can.

This module is the one place those idioms are allowed to live: the
CONC003 analyzer rule (:mod:`repro.analysis.semantic.concurrency`)
flags any raw ``os.replace`` — and any write-mode open of a shared
artifact — outside this file, exactly as DET002 allowlists
:mod:`repro.util.hostclock` for the host clock.  Keeping the idiom in
one audited helper is what makes the contract checkable.

Durability note: ``os.replace`` guarantees atomicity; making the new
*name* survive a power failure would additionally need an fsync of the
directory.  The artifacts here are all reconstructible (caches, derived
indexes, observability logs), so we match the repo's long-standing
choice: file contents are fsync'd, directory entries are not.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path

#: Process-local uniquifier so two writers in one process (threads, or a
#: re-entrant caller) never share a temporary name.  Cross-process
#: uniqueness comes from the pid component.
_counter = itertools.count()


def _tmp_path(target: Path) -> Path:
    """A uniquely named sibling of ``target`` for the replace idiom.

    The temporary must live in the destination directory: ``os.replace``
    is only atomic within one filesystem.
    """
    return target.with_name(
        f".{target.name}.{os.getpid()}.{next(_counter)}.tmp"
    )


def write_bytes(path: str | os.PathLike, payload: bytes) -> None:
    """Atomically replace ``path`` with ``payload`` (tmp + fsync + rename)."""
    target = Path(path)
    tmp = _tmp_path(target)
    try:
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        # Never leave a half-written temporary behind: the artifact
        # either transitions atomically or not at all.
        try:
            os.unlink(tmp)
        # the tmp may never have been created, or the rename already won
        # repro-lint: disable=EXC002 best-effort failure cleanup
        except OSError:
            pass
        raise


def write_text(path: str | os.PathLike, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    write_bytes(path, text.encode("utf-8"))


def write_json(path: str | os.PathLike, obj, indent: int | None = 1) -> None:
    """Atomically replace ``path`` with deterministic JSON.

    Keys are always sorted so that two processes serializing the same
    object race with *identical bytes* — whichever writer's rename wins,
    the artifact content is the same.
    """
    text = json.dumps(obj, sort_keys=True, indent=indent) + "\n"
    write_bytes(path, text.encode("utf-8"))


def append_line(path: str | os.PathLike, line: str) -> None:
    """Append one complete line as a single ``O_APPEND`` write.

    ``line`` must not contain interior newlines; the trailing newline is
    added here so the record on disk is exactly one write — concurrent
    appenders from other processes cannot tear it.
    """
    if "\n" in line:
        raise ValueError("append_line takes one record without newlines")
    append_records(path, [line])


def append_records(path: str | os.PathLike, lines: list[str]) -> None:
    """Append records to a shared log, one ``O_APPEND`` write per record.

    Each element becomes one line; each line is emitted with a single
    ``os.write`` so a reader (or a concurrent appender) never observes a
    partial record.  A batch is *not* atomic as a whole — records from
    other processes may interleave between lines — but every individual
    line parses.
    """
    fd = os.open(
        os.fspath(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
    )
    try:
        for line in lines:
            if "\n" in line:
                raise ValueError(
                    "append_records takes records without interior newlines"
                )
            payload = (line + "\n").encode("utf-8")
            written = os.write(fd, payload)
            if written != len(payload):
                # A short write on a regular O_APPEND file is effectively
                # impossible on local filesystems; if it ever happens the
                # log is torn and hiding that would defeat the contract.
                raise OSError(
                    f"short O_APPEND write to {path}: "
                    f"{written}/{len(payload)} bytes"
                )
    finally:
        os.close(fd)


def append_jsonl(path: str | os.PathLike, records: list) -> None:
    """Append JSON records to a shared log, one atomic line each."""
    append_records(
        path,
        [json.dumps(record, sort_keys=True) for record in records],
    )
