"""The single sanctioned host-clock API for simulator code.

Host time must never reach simulated state: every architectural decision
flows from the virtual cycle counter, and the DET002 lint rule flags any
raw ``time.*`` clock read inside ``src/repro``.  Legitimate *host-side*
observability — ``SimResult.wall_seconds``, the ``repro profile``
reports, the ``REPRO_PERF=1`` counters, ``repro bench`` timing, fleet
registry timestamps — still needs a clock, and routing every such read
through this module keeps the boundary auditable in one place:

* this file is the only module allowlisted by DET002, so a raw
  ``time.perf_counter()`` anywhere else in the tree still fires;
* nothing returned here may be folded into ``SimResult.metrics``, the
  determinism chain, ``result_fingerprint``, streamed telemetry bytes,
  or an engine cache key — the perf-counter identity tests enforce that
  for every consumer (see DESIGN.md §5.6).

``now()``/``now_ns()`` are monotonic (interval measurement);
``walltime()`` is the epoch clock, for *metadata* timestamps only
(bench records, fleet registry entries), never for measuring anything.
"""

from __future__ import annotations

import time as _time


def now() -> float:
    """Monotonic host seconds; for measuring host-side intervals."""
    return _time.perf_counter()


def now_ns() -> int:
    """Monotonic host nanoseconds; for hot-path interval accumulation."""
    return _time.perf_counter_ns()


def walltime() -> float:
    """Epoch seconds; for metadata timestamps, never for measurement."""
    return _time.time()
