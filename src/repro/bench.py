"""``repro bench``: a declarative host-performance regression harness.

The engine work (skip windows, the wake-driven loop, batchability) is
justified by wall clock, and wall clock regresses silently: a refactor
that doubles event-queue churn still passes every correctness test.
This module pins it the same way determinism is pinned — measure,
record, compare:

* a **suite** of paper-like cells (workload x scheduler x engine), each
  run ``repeats`` times in-process with ``REPRO_PERF=1``;
* each cell records its wall-clock samples, cycles/second, the
  perf-counter snapshot (:mod:`repro.telemetry.perfcounters`), and a
  digest of the result fingerprint — so a bench record doubles as a
  cross-engine identity check;
* records are schema-versioned ``BENCH_<n>.json`` files carrying
  machine/python/git metadata, and ``repro bench --compare OLD NEW``
  flags per-cell slowdowns beyond a noise threshold with exit code 1.

Comparison uses the **min** of the repeats (the least-noisy location
statistic for wall clock: noise on a quiet machine is one-sided), a
relative threshold, and a small absolute floor so microsecond jitter on
tiny cells never pages anyone.

Everything here is host-side observability: bench runs go through the
ordinary runner (fingerprints and det-chains are untouched), timestamps
come from :mod:`repro.util.hostclock`, and nothing feeds back into
simulated state.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.util import atomicio, hostclock

SCHEMA_VERSION = 1

#: Default noise threshold: a cell must be >25% slower to regress.
DEFAULT_THRESHOLD = 0.25

#: Absolute floor (seconds): deltas under this are never regressions.
ABSOLUTE_FLOOR_SECONDS = 0.02

#: ``BENCH_<n>.json`` numbering starts here (earlier numbers belong to
#: the repo's other artifact series).
FIRST_INDEX = 8


@dataclass(frozen=True)
class BenchCell:
    """One benchmarked configuration."""

    name: str
    workload: str  # parallel app, or bundle name for kind="alone"
    scheduler: str
    engine: str
    cbp: int = 0  # CBP criticality-provider entries (0 = no provider)
    quick: bool = False  # part of the --quick subset
    kind: str = "parallel"  # "parallel" (8-thread app) or "alone"
    slot: int = 0  # bundle slot for kind="alone"


#: The default suite: the engines on the same baseline cell (the
#: engine-speedup story), paper-relevant scheduler cells on the default
#: engine, and single-application alone cells (the weighted-speedup
#: denominators) where the batched engine's single-active-core windows
#: engage — the memory-intensive mcf slot of the RFGI bundle is where
#: the windowed models earn their wall-clock claim.  ``quick`` marks
#: the CI smoke subset.
SUITE = (
    BenchCell("fft/fr-fcfs/naive", "fft", "fr-fcfs", "naive", quick=True),
    BenchCell("fft/fr-fcfs/fast", "fft", "fr-fcfs", "fast"),
    BenchCell("fft/fr-fcfs/event", "fft", "fr-fcfs", "event", quick=True),
    BenchCell("fft/fr-fcfs/batched", "fft", "fr-fcfs", "batched"),
    BenchCell("radix/par-bs/event", "radix", "par-bs", "event", quick=True),
    BenchCell(
        "radix/casras-crit/event", "radix", "casras-crit", "event",
        cbp=64, quick=True,
    ),
    BenchCell("ocean/tcm/event", "ocean", "tcm", "event"),
    BenchCell("mg/crit-casras/event", "mg", "crit-casras", "event", cbp=64),
    BenchCell(
        "RFGI.mcf-alone/par-bs/naive", "RFGI", "par-bs", "naive",
        kind="alone", slot=1, quick=True,
    ),
    BenchCell(
        "RFGI.mcf-alone/par-bs/event", "RFGI", "par-bs", "event",
        kind="alone", slot=1,
    ),
    BenchCell(
        "RFGI.mcf-alone/par-bs/batched", "RFGI", "par-bs", "batched",
        kind="alone", slot=1, quick=True,
    ),
)


def _cells(names: str | None, quick: bool) -> list[BenchCell]:
    if names:
        wanted = {n.strip() for n in names.split(",") if n.strip()}
        chosen = [c for c in SUITE if c.name in wanted]
        unknown = wanted - {c.name for c in chosen}
        if unknown:
            known = ", ".join(c.name for c in SUITE)
            raise ValueError(
                f"unknown bench cells {sorted(unknown)}; known: {known}"
            )
        return chosen
    if quick:
        return [c for c in SUITE if c.quick]
    return list(SUITE)


# ------------------------------------------------------------------ running


def _run_cell_once(cell: BenchCell, instructions: int, seed: int):
    from repro.config import SimScale
    from repro.sim.runner import run_application_alone, run_parallel_workload

    scale = SimScale(
        instructions_per_core=instructions,
        warmup_instructions=max(200, instructions // 10),
        seed=seed,
    )
    spec = ("cbp", {"entries": cell.cbp}) if cell.cbp else None
    if cell.kind == "alone":
        return run_application_alone(
            cell.workload,
            cell.slot,
            scheduler=cell.scheduler,
            provider_spec=spec,
            scale=scale,
        )
    return run_parallel_workload(
        cell.workload,
        scheduler=cell.scheduler,
        provider_spec=spec,
        scale=scale,
    )


def _fingerprint_digest(result) -> str:
    from repro.sim.stats import result_fingerprint

    return hashlib.sha256(
        repr(result_fingerprint(result)).encode()
    ).hexdigest()[:16]


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    # bench records must not require a git checkout to exist
    # repro-lint: disable=EXC002 metadata is best-effort
    except OSError:
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def _metadata() -> dict:
    return {
        "created_unix": hostclock.walltime(),
        "machine": platform.platform(),
        "processor": platform.processor() or None,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "git_commit": _git_commit(),
    }


def run_suite(
    repeats: int = 3,
    instructions: int = 8_000,
    seed: int = 1,
    quick: bool = False,
    cells: str | None = None,
    progress=None,
) -> dict:
    """Run the suite and return a schema-versioned bench record."""
    chosen = _cells(cells, quick)
    saved = {
        name: os.environ.get(name)
        for name in ("REPRO_ENGINE", "REPRO_PERF", "REPRO_STREAM_DIR",
                     "REPRO_FLEET_DIR", "REPRO_VERIFY_SKIP")
    }
    record_cells = []
    try:
        # Bench runs are timing measurements: no streaming, no fleet
        # registration, no verify double-runs — just the engine under
        # test with the perf counters on.
        os.environ["REPRO_PERF"] = "1"
        for name in ("REPRO_STREAM_DIR", "REPRO_FLEET_DIR",
                     "REPRO_VERIFY_SKIP"):
            os.environ.pop(name, None)
        for cell in chosen:
            os.environ["REPRO_ENGINE"] = cell.engine
            walls = []
            result = None
            for _ in range(max(1, repeats)):
                result = _run_cell_once(cell, instructions, seed)
                walls.append(result.wall_seconds)
            best = min(walls)
            record_cells.append({
                "name": cell.name,
                "workload": cell.workload,
                "scheduler": cell.scheduler,
                "engine": cell.engine,
                "kind": cell.kind,
                "slot": cell.slot,
                "cbp": cell.cbp,
                "cycles": result.cycles,
                "wall_seconds": [round(w, 6) for w in walls],
                "best_wall_seconds": round(best, 6),
                "cycles_per_second": round(
                    result.cycles / best if best else 0.0, 1
                ),
                "fingerprint": _fingerprint_digest(result),
                "host_perf": result.host_perf,
            })
            if progress is not None:
                progress(record_cells[-1])
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    return {
        "schema": "repro-bench",
        "version": SCHEMA_VERSION,
        "repeats": max(1, repeats),
        "instructions": instructions,
        "seed": seed,
        "quick": quick,
        "metadata": _metadata(),
        "cells": record_cells,
    }


# ------------------------------------------------------------ record files


def next_record_path(directory: str | os.PathLike = ".") -> Path:
    """The next free ``BENCH_<n>.json`` path (numbering from 8)."""
    directory = Path(directory)
    taken = []
    for path in directory.glob("BENCH_*.json"):
        stem = path.stem.split("_", 1)[1]
        if stem.isdigit():
            taken.append(int(stem))
    index = max(taken, default=FIRST_INDEX - 1) + 1
    return directory / f"BENCH_{max(index, FIRST_INDEX)}.json"


def save_record(record: dict, path: str | os.PathLike) -> None:
    """Write a bench record atomically (tmp + fsync + replace)."""
    atomicio.write_json(path, record)


def load_record(path: str | os.PathLike) -> dict:
    with open(path) as fh:
        record = json.load(fh)
    problems = validate_record(record)
    if problems:
        raise ValueError(
            f"{path} is not a valid bench record: " + "; ".join(problems)
        )
    return record


def validate_record(record) -> list[str]:
    """Schema problems in a parsed record ([] = valid)."""
    problems = []
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    if record.get("schema") != "repro-bench":
        problems.append(f"schema is {record.get('schema')!r},"
                        f" expected 'repro-bench'")
    if record.get("version") != SCHEMA_VERSION:
        problems.append(f"version is {record.get('version')!r}, "
                        f"expected {SCHEMA_VERSION}")
    metadata = record.get("metadata")
    if not isinstance(metadata, dict):
        problems.append("missing metadata object")
    else:
        for key in ("machine", "python", "created_unix"):
            if key not in metadata:
                problems.append(f"metadata.{key} missing")
    cells = record.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("cells must be a non-empty list")
        return problems
    for i, cell in enumerate(cells):
        if not isinstance(cell, dict):
            problems.append(f"cells[{i}] is not an object")
            continue
        for key in ("name", "engine", "wall_seconds",
                    "best_wall_seconds", "cycles", "fingerprint"):
            if key not in cell:
                problems.append(f"cells[{i}].{key} missing")
        walls = cell.get("wall_seconds")
        if isinstance(walls, list) and not walls:
            problems.append(f"cells[{i}].wall_seconds is empty")
    return problems


# --------------------------------------------------------------- comparing


def compare_records(
    old: dict, new: dict, threshold: float = DEFAULT_THRESHOLD
) -> dict:
    """Per-cell regression report between two bench records.

    A cell regresses when its best (min) wall clock grows by more than
    ``threshold`` relatively *and* :data:`ABSOLUTE_FLOOR_SECONDS`
    absolutely.  Fingerprint changes and cells present on only one side
    are warnings, not regressions — they mean the suites measured
    different things, which the caller should know but which is not a
    slowdown.
    """
    old_cells = {c["name"]: c for c in old.get("cells", [])}
    new_cells = {c["name"]: c for c in new.get("cells", [])}
    rows, warnings = [], []
    for name in old_cells.keys() - new_cells.keys():
        warnings.append(f"cell {name!r} is in OLD but not NEW")
    for name in new_cells.keys() - old_cells.keys():
        warnings.append(f"cell {name!r} is in NEW but not OLD")
    if (old.get("instructions"), old.get("seed")) != (
        new.get("instructions"), new.get("seed")
    ):
        warnings.append(
            "records were taken at different scales "
            f"(instructions/seed {old.get('instructions')}/{old.get('seed')}"
            f" vs {new.get('instructions')}/{new.get('seed')}); wall-clock"
            " comparison is not apples-to-apples"
        )
    for name in sorted(old_cells.keys() & new_cells.keys()):
        before = min(old_cells[name]["wall_seconds"])
        after = min(new_cells[name]["wall_seconds"])
        ratio = after / before if before else 0.0
        regressed = (
            after - before > ABSOLUTE_FLOOR_SECONDS
            and after > before * (1.0 + threshold)
        )
        if old_cells[name]["fingerprint"] != new_cells[name]["fingerprint"]:
            warnings.append(
                f"cell {name!r} changed its result fingerprint — the two "
                f"records did not simulate the same thing"
            )
        rows.append({
            "name": name,
            "old_seconds": round(before, 6),
            "new_seconds": round(after, 6),
            "ratio": round(ratio, 3),
            "regressed": regressed,
        })
    return {
        "threshold": threshold,
        "cells": rows,
        "warnings": warnings,
        "regressions": [r["name"] for r in rows if r["regressed"]],
        "ok": not any(r["regressed"] for r in rows),
    }


# --------------------------------------------------------------------- CLI


def _print_cell(cell: dict) -> None:
    walls = ", ".join(f"{w:.3f}" for w in cell["wall_seconds"])
    print(f"  {cell['name']:<26} {cell['best_wall_seconds']:>8.3f}s "
          f"({cell['cycles_per_second']:>12,.0f} cyc/s)  runs: [{walls}]")


def _print_comparison(report: dict) -> None:
    print(f"bench comparison (threshold {report['threshold']:.0%} "
          f"+ {ABSOLUTE_FLOOR_SECONDS:.2f}s floor):")
    for row in report["cells"]:
        verdict = "REGRESSED" if row["regressed"] else "ok"
        print(f"  {row['name']:<26} {row['old_seconds']:>8.3f}s -> "
              f"{row['new_seconds']:>8.3f}s  x{row['ratio']:<5} {verdict}")
    for warning in report["warnings"]:
        print(f"  warning: {warning}")
    if report["ok"]:
        print("no regressions.")
    else:
        names = ", ".join(report["regressions"])
        print(f"REGRESSION in: {names}")


def main(args) -> int:
    """Entry point for ``python -m repro bench``."""
    if args.compare:
        old_path, new_path = args.compare
        report = compare_records(
            load_record(old_path), load_record(new_path),
            threshold=args.threshold,
        )
        _print_comparison(report)
        return 0 if report["ok"] else 1

    repeats = args.repeats if args.repeats is not None else (
        2 if args.quick else 3
    )
    instructions = args.instructions if args.instructions is not None else (
        3_000 if args.quick else 8_000
    )
    mode = "quick suite" if args.quick else "suite"
    print(f"bench {mode}: {repeats} repeat(s) x "
          f"{instructions:,} instructions/core")
    record = run_suite(
        repeats=repeats,
        instructions=instructions,
        seed=args.seed,
        quick=args.quick,
        cells=args.cells,
        progress=_print_cell,
    )
    out = Path(args.out) if args.out else next_record_path()
    save_record(record, out)
    print(f"bench record -> {out}")
    return 0
