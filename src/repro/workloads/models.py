"""Statistical application models.

Each :class:`AppModel` captures the published character of one benchmark —
instruction mix, footprint, locality structure, dependency shape — at the
level of detail the memory-scheduling experiments are sensitive to:

* how many loads reach DRAM (``phase_duty`` / ``solo_rate`` and the
  hot/warm split for ordinary accesses);
* how row-buffer-friendly they are (stream vs. random bursts);
* how serialised they are (pointer-chase singletons and chase bursts:
  art's double-pointer neural nets are the paper's Section 5.3.1 anomaly);
* how many static loads exist (ocean's ~1,700 critical statics vs. art's
  ~156 drive the CBP table-size findings);
* how imbalanced the threads are (which threads hog bandwidth while
  others are latency-bound at any instant).

Values are chosen from the workload descriptions in the paper (Tables 2
and 4) and the general literature on these suites, then calibrated so the
simulated machine sits near the paper's reported operating point
(Figure 1's ~6% blocking loads / ~49% blocked cycles under FR-FCFS,
moderate queue contention).  EXPERIMENTS.md discusses remaining fidelity
gaps.
"""

from __future__ import annotations

from dataclasses import dataclass

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class AppModel:
    """Parameters consumed by :mod:`repro.workloads.synthetic`.

    Determinism contract: models are frozen (hashable) and carry no RNG
    state of their own.  Trace generation in :mod:`repro.workloads.synthetic`
    derives every random stream from ``(model, seed, thread_id)`` through a
    locally constructed ``random.Random``, and its trace cache is keyed on
    the *full* model value — two models that differ in any field never
    share traces, even if they share a ``name``.
    """

    name: str
    #: Instruction mix (fractions of the dynamic stream); DRAM-bound burst
    #: loads are planted on top of this base mix.
    load_frac: float = 0.11
    store_frac: float = 0.08
    branch_frac: float = 0.14
    #: Fraction of compute instructions that are floating-point.
    fp_frac: float = 0.30
    mispredict_rate: float = 0.04
    #: Total data footprint per thread (private + shared view).
    footprint_bytes: int = 32 * MB
    #: Small hot region (stack/locals) absorbing most accesses; L1-resident.
    hot_bytes: int = 16 * KB
    #: Fraction of ordinary loads hitting the hot region.
    hot_frac: float = 0.80
    #: Medium per-thread region that fits in the shared L2 but not in L1.
    warm_bytes: int = 192 * KB
    #: Of non-hot ordinary loads, fraction going to the warm region (used
    #: only when phase_duty/solo_rate are derived rather than explicit).
    warm_frac: float = 0.70
    #: Of DRAM-bound bursts, relative weight that streams sequentially.
    stream_frac: float = 0.55
    #: Of DRAM-bound bursts, relative weight forming serial pointer chases.
    pointer_chase_frac: float = 0.0
    #: Fraction of cold accesses that go to the thread-shared region.
    shared_frac: float = 0.15
    #: Static load population (drives CBP aliasing behaviour).
    static_loads: int = 300
    #: Loop structure.
    body_count: int = 12
    body_len: int = 96
    #: Mean direct consumers per load (CLPT's signal).
    consumer_mean: float = 1.15
    #: Probability that a loop visit runs as a memory phase (None derives
    #: it from hot/warm fractions so the cold-load rate matches them).
    phase_duty: float | None = 0.05
    #: Probability that each body iteration fires its singleton cold miss
    #: (None derives it from hot/warm fractions and ``solo_frac``).
    solo_rate: float | None = 0.50
    #: Per-thread load imbalance: thread i's phase_duty/solo_rate are
    #: scaled by a deterministic factor in [1-imbalance, 1+imbalance].
    #: Real SPMD programs are imbalanced (data-dependent partitioning,
    #: stencil boundaries, master-thread work), which is what makes some
    #: threads latency-bound while others hog bandwidth at any instant.
    thread_imbalance: float = 0.6
    #: Share of DRAM-bound loads that are isolated singleton misses when
    #: rates are derived (kept for the derived path; explicit
    #: ``solo_rate`` overrides it).
    solo_frac: float = 0.30
    #: Mean memory-level-parallelism burst size: DRAM-bound loads are
    #: emitted in spread clusters of independent loads (the first blocks
    #: the ROB head; the followers' latency is largely masked).
    #: Pointer-chase bursts serialise regardless of this value.
    mlp: float = 4.0
    #: Byte stride of ordinary streaming accesses (burst gathers walk
    #: whole cache lines regardless).
    stream_stride: int = 8
    #: Memory-sensitivity class for Table 4 ('P', 'C', or 'M'); parallel
    #: apps are all effectively 'M'.
    sensitivity: str = "M"


#: The nine parallel applications of Table 2 (run with 8 threads each).
PARALLEL_APPS: dict[str, AppModel] = {
    # SPEC-OMP art: self-organising map; two levels of dynamically
    # allocated pointers (serial chases); few static loads; the paper's
    # most reordering-sensitive app.
    "art": AppModel(
        name="art",
        footprint_bytes=96 * MB,
        pointer_chase_frac=0.6,
        static_loads=160,
        body_count=6,
        mlp=3.0,
        phase_duty=0.04,
        solo_rate=0.75,
        consumer_mean=1.1,
        mispredict_rate=0.03,
        thread_imbalance=0.5,
    ),
    # NAS cg: sparse conjugate gradient — indirect indexed gathers.
    "cg": AppModel(
        name="cg",
        footprint_bytes=28 * MB,
        stream_frac=0.35,
        pointer_chase_frac=0.10,
        static_loads=220,
        mlp=4.0,
        phase_duty=0.05,
        solo_rate=0.55,
        fp_frac=0.55,
        consumer_mean=1.3,
    ),
    # SPEC-OMP equake: unstructured-mesh earthquake model.
    "equake": AppModel(
        name="equake",
        footprint_bytes=36 * MB,
        stream_frac=0.50,
        pointer_chase_frac=0.08,
        static_loads=380,
        mlp=4.0,
        phase_duty=0.05,
        solo_rate=0.50,
        fp_frac=0.50,
    ),
    # SPLASH-2 fft: strided butterfly phases — streaming gathers.
    "fft": AppModel(
        name="fft",
        footprint_bytes=48 * MB,
        stream_frac=0.60,
        static_loads=140,
        mlp=5.0,
        phase_duty=0.06,
        solo_rate=0.55,
        fp_frac=0.60,
        stream_stride=16,
        mispredict_rate=0.02,
    ),
    # NAS mg: multigrid solver — regular stencil sweeps.
    "mg": AppModel(
        name="mg",
        footprint_bytes=56 * MB,
        stream_frac=0.62,
        static_loads=260,
        mlp=6.0,
        phase_duty=0.07,
        solo_rate=0.45,
        fp_frac=0.55,
        mispredict_rate=0.02,
    ),
    # SPLASH-2 ocean: many distinct stencil loops => large static load
    # population (the paper's ~1,700 critical statics per core).
    "ocean": AppModel(
        name="ocean",
        footprint_bytes=52 * MB,
        stream_frac=0.48,
        static_loads=2400,
        body_count=40,
        mlp=5.0,
        phase_duty=0.06,
        solo_rate=0.60,
        fp_frac=0.50,
    ),
    # SPLASH-2 radix: integer sort — scatter writes, random histogram reads.
    "radix": AppModel(
        name="radix",
        footprint_bytes=20 * MB,
        store_frac=0.10,
        stream_frac=0.25,
        static_loads=120,
        mlp=3.5,
        phase_duty=0.05,
        solo_rate=0.55,
        fp_frac=0.02,
        mispredict_rate=0.03,
    ),
    # NU-MineBench scalparc: decision-tree induction — irregular.
    "scalparc": AppModel(
        name="scalparc",
        footprint_bytes=40 * MB,
        stream_frac=0.28,
        pointer_chase_frac=0.20,
        static_loads=420,
        mlp=3.5,
        phase_duty=0.04,
        solo_rate=0.65,
        mispredict_rate=0.06,
        fp_frac=0.10,
    ),
    # SPEC-OMP swim: shallow-water stencils — highly regular streaming.
    "swim": AppModel(
        name="swim",
        footprint_bytes=60 * MB,
        stream_frac=0.72,
        static_loads=180,
        mlp=6.0,
        phase_duty=0.08,
        solo_rate=0.45,
        fp_frac=0.65,
        mispredict_rate=0.01,
    ),
}


def _spec(name, sensitivity, **kw) -> AppModel:
    kw.setdefault("thread_imbalance", 0.0)
    return AppModel(name=name, sensitivity=sensitivity, **kw)


#: SPEC 2000 / NAS single-threaded models for the Table 4 bundles.
#: P = processor-sensitive, C = cache-sensitive, M = memory-sensitive.
SPEC_APPS: dict[str, AppModel] = {
    "ammp": _spec("ammp", "C", footprint_bytes=6 * MB, warm_bytes=768 * KB,
                  phase_duty=0.10, solo_rate=0.30, fp_frac=0.60),
    "ep": _spec("ep", "P", footprint_bytes=1 * MB, phase_duty=0.01,
                solo_rate=0.03, fp_frac=0.70, mispredict_rate=0.01),
    "lu": _spec("lu", "C", footprint_bytes=5 * MB, warm_bytes=768 * KB,
                phase_duty=0.10, solo_rate=0.25, fp_frac=0.60),
    "vpr": _spec("vpr", "C", footprint_bytes=4 * MB, warm_bytes=512 * KB,
                 phase_duty=0.08, solo_rate=0.35, mispredict_rate=0.08),
    "crafty": _spec("crafty", "P", footprint_bytes=2 * MB, phase_duty=0.01,
                    solo_rate=0.05, fp_frac=0.02, mispredict_rate=0.07),
    "mesa": _spec("mesa", "P", footprint_bytes=2 * MB, phase_duty=0.02,
                  solo_rate=0.04, fp_frac=0.45, mispredict_rate=0.02),
    "is": _spec("is", "M", footprint_bytes=40 * MB, phase_duty=0.40,
                solo_rate=0.45, mlp=8.0, stream_frac=0.35, fp_frac=0.02),
    "mg": _spec("mg", "M", footprint_bytes=56 * MB, phase_duty=0.45,
                solo_rate=0.40, stream_frac=0.62, fp_frac=0.55, mlp=10.0),
    "mgrid": _spec("mgrid", "C", footprint_bytes=6 * MB, warm_bytes=768 * KB,
                   phase_duty=0.10, solo_rate=0.22, stream_frac=0.60,
                   fp_frac=0.60),
    "parser": _spec("parser", "C", footprint_bytes=5 * MB,
                    warm_bytes=512 * KB, phase_duty=0.06, solo_rate=0.40,
                    pointer_chase_frac=0.4, mispredict_rate=0.07,
                    fp_frac=0.02),
    "sp": _spec("sp", "C", footprint_bytes=6 * MB, warm_bytes=768 * KB,
                phase_duty=0.10, solo_rate=0.25, stream_frac=0.55,
                fp_frac=0.60),
    "art": _spec("art", "C", footprint_bytes=8 * MB, warm_bytes=768 * KB,
                 phase_duty=0.10, solo_rate=0.50, pointer_chase_frac=0.6,
                 static_loads=160, fp_frac=0.45, mlp=4.0),
    "mcf": _spec("mcf", "M", footprint_bytes=80 * MB, phase_duty=0.30,
                 solo_rate=0.70, pointer_chase_frac=0.6,
                 mispredict_rate=0.06, fp_frac=0.02, mlp=4.0),
    "twolf": _spec("twolf", "M", footprint_bytes=24 * MB, phase_duty=0.30,
                   solo_rate=0.55, mispredict_rate=0.08, fp_frac=0.05,
                   mlp=5.0),
}
