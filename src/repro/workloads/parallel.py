"""The nine parallel applications of paper Table 2, eight threads each."""

from __future__ import annotations

from repro.workloads.models import PARALLEL_APPS
from repro.workloads.synthetic import generate_trace

#: Paper Figure ordering: art, cg, equake, fft, mg, ocean, radix, scalparc,
#: swim (alphabetical, as the figures list them).
PARALLEL_APP_NAMES = tuple(sorted(PARALLEL_APPS))


def parallel_traces(app: str, threads: int, instructions: int, seed: int = 1):
    """Per-thread traces for one parallel application.

    All threads share static code (same PCs) and the shared data region;
    each gets a private footprint slice.
    """
    try:
        model = PARALLEL_APPS[app]
    except KeyError:
        raise ValueError(
            f"unknown parallel app {app!r}; choose from {PARALLEL_APP_NAMES}"
        ) from None
    return [
        generate_trace(
            model,
            instructions,
            thread_id=t,
            threads=threads,
            seed=seed,
        )
        for t in range(threads)
    ]
