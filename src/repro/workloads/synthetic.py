"""Synthetic trace engine.

Turns an :class:`~repro.workloads.models.AppModel` into a deterministic,
dependency-annotated dynamic instruction stream with loop structure:

* The *static* program is a set of loop bodies generated once per (app,
  seed) — every thread of a parallel app shares the same static code and
  PCs, as real SPMD programs do.
* Each static load belongs to an address class: **hot** (small private
  region, cache-resident), **stream** (sequential walk through a large
  region — row-buffer friendly, L2-missing), **random** (uniform over the
  footprint), or **chase** (random address *and* a serial dependence on the
  previous chase load — art's double-pointer traversals).
* Cold accesses may target the thread-shared region (coherence traffic and
  cross-thread row locality).
* The *dynamic* stream interleaves the bodies in weighted loops, so the
  same static PCs recur — which is precisely the behaviour a PC-indexed
  predictor exploits.

Generation is pure: the same arguments always produce the same trace, and
results are memoised because experiments re-run the same workload under
many scheduler configurations.
"""

from __future__ import annotations

import random

from repro.cpu.instruction import BRANCH, FP, INT, LOAD, STORE, Trace
from repro.workloads.models import AppModel

#: Address-class tags for static memory instructions.
_HOT, _WARM, _STREAM, _RANDOM, _CHASE = range(5)


class _StaticInstr:
    __slots__ = ("itype", "pc", "klass", "shared", "dep1", "dep2")

    def __init__(self, itype, pc, klass=_HOT, shared=False, dep1=0, dep2=0):
        self.itype = itype
        self.pc = pc
        self.klass = klass
        self.shared = shared
        self.dep1 = dep1
        self.dep2 = dep2


class _Body:
    """One loop body: its statics plus the positions of its cold burst.

    Every body carries a burst statically; whether an *iteration* actually
    goes to DRAM is decided at emission time (inactive iterations read the
    warm region instead), so the long-run cold-load rate is controlled
    without making the static program structurally random.
    """

    __slots__ = ("specs", "burst_positions", "burst_order", "body_id", "solo_position")

    def __init__(self, specs, burst_positions, body_id=0, solo_position=None):
        self.specs = specs
        self.burst_positions = burst_positions
        # Position -> index within the burst (0 = leader).
        self.burst_order = {
            pos: k for k, pos in enumerate(sorted(burst_positions))
        }
        self.body_id = body_id
        self.solo_position = solo_position

    def __len__(self):
        return len(self.specs)


def _build_static_program(model: AppModel, seed: int):
    """The loop bodies (lists of :class:`_StaticInstr`) for one app.

    Bodies come in two flavours, as real kernels do:

    * *memory bodies* carry one burst of DRAM-bound loads — ``~model.mlp``
      independent cold loads placed back to back (or a serial chain, for
      pointer-chase loads) — amid ordinary cache-resident work;
    * *compute bodies* touch only hot/warm data.

    The memory-body probability is derived so the long-run cold-load rate
    matches ``(1 - hot_frac) * (1 - warm_frac)`` of all loads.
    """
    rng = random.Random(f"static:{model.name}:{seed}")
    loads_per_body = max(1, round(model.body_len * model.load_frac))
    body_count = max(model.body_count, -(-model.static_loads // loads_per_body))

    bodies = []
    next_pc = 0
    for body_index in range(body_count):
        burst_size = max(1, round(rng.gauss(model.mlp, model.mlp / 3)))

        # --- phase 1: the instruction/class sequence -----------------------
        specs: list[_StaticInstr] = []
        for _ in range(model.body_len):
            r = rng.random()
            if r < model.load_frac:
                itype = LOAD
            elif r < model.load_frac + model.store_frac:
                itype = STORE
            elif r < model.load_frac + model.store_frac + model.branch_frac:
                itype = BRANCH
            else:
                itype = FP if rng.random() < model.fp_frac else INT
            instr = _StaticInstr(itype, next_pc)
            next_pc += 1
            if itype in (LOAD, STORE):
                instr.klass, instr.shared = _pick_warm_or_hot(model, rng, itype)
            specs.append(instr)

        # --- phase 2: plant the cold burst and the singleton miss ----------
        # Besides the gather burst (the body's memory phase), each body has
        # one *singleton* cold load: an isolated pointer/index lookup that
        # fires independently of the phase.  Singletons miss while the core
        # is otherwise cache-resident and latency-bound — the paper's most
        # critical loads.
        burst_positions: set[int] = set()
        solo_position = rng.randrange(model.body_len)
        if burst_size:
            shared = rng.random() < model.shared_frac
            chase = rng.random() < model.pointer_chase_frac
            klass = _CHASE if chase else (
                _STREAM if rng.random() < model.stream_frac else _RANDOM
            )
            # Spread the burst across the body: the out-of-order window
            # issues the members near-simultaneously (MLP), but the commit
            # stream needs each one only after the compute between them —
            # that compute is the followers' latency slack.
            spacing = max(1, model.body_len // burst_size)
            start = rng.randint(0, max(0, spacing - 1))
            for k in range(burst_size):
                pos = min(start + k * spacing, model.body_len - 1)
                instr = specs[pos]
                # Real kernels write a result stream alongside their
                # gathers (c[i] = f(a[i], b[i])): every third member is a
                # store, whose read-for-ownership and eventual write-back
                # are the slack DRAM traffic criticality defers.
                if klass != _CHASE and k % 3 == 2:
                    instr.itype = STORE
                else:
                    instr.itype = LOAD
                instr.klass = klass
                instr.shared = shared
                burst_positions.add(pos)
        if solo_position in burst_positions:
            solo_position = (max(burst_positions) + 1) % model.body_len
            if solo_position in burst_positions:
                solo_position = None
        if solo_position is not None:
            instr = specs[solo_position]
            instr.itype = LOAD
            instr.klass = _RANDOM
            instr.shared = rng.random() < model.shared_frac
            # Serialise successive singletons (a pointer walk): each one
            # blocks the ROB head for its full latency, making singleton
            # PCs the stably-most-critical loads, as in the paper's art.
            instr.dep1 = model.body_len
            instr.dep2 = 0

        # --- phase 3: dependencies ------------------------------------------
        pending_consumers: list[list[int]] = []  # [load position, remaining]
        prev_chase_pos = None
        for pos, instr in enumerate(specs):
            in_burst = pos in burst_positions
            if in_burst:
                # Burst members are mutually independent (that is the MLP),
                # except pointer chases, which serialise.
                if instr.klass == _CHASE:
                    if prev_chase_pos is not None:
                        instr.dep1 = pos - prev_chase_pos
                    else:
                        instr.dep1 = model.body_len  # loop-carried chain
                    prev_chase_pos = pos
                continue
            dep_assigned = False
            if pending_consumers and pending_consumers[0][0] < pos:
                chain = pending_consumers[0]
                instr.dep1 = pos - chain[0]
                dep_assigned = True
                chain[1] -= 1
                if chain[1] <= 0:
                    pending_consumers.pop(0)
            if not dep_assigned and pos > 0 and rng.random() < 0.75:
                dist = rng.randint(1, min(pos, 10))
                if (pos - dist) not in burst_positions:
                    instr.dep1 = dist
            if pos > 1 and rng.random() < 0.15:
                dist = rng.randint(1, min(pos, 16))
                if (pos - dist) not in burst_positions:
                    instr.dep2 = dist
            if instr.itype == LOAD:
                consumers = _poisson_at_least_zero(rng, model.consumer_mean)
                if consumers:
                    pending_consumers.append([pos, consumers])
        # Cold loads feed later work too: one consumer per burst leader.
        if burst_positions:
            first = min(burst_positions)
            last = max(burst_positions)
            for pos in range(last + 1, min(last + 3, model.body_len)):
                specs[pos].dep2 = pos - first
        # Loop-carried dependence: tie each iteration to the previous one.
        if specs[0].dep1 == 0 and 0 not in burst_positions:
            specs[0].dep1 = model.body_len
        bodies.append(
            _Body(specs, burst_positions, body_id=body_index,
                  solo_position=solo_position)
        )
    return bodies


def _pick_warm_or_hot(model: AppModel, rng: random.Random, itype: int):
    """(address class, shared?) for ordinary (non-burst) memory statics.

    Loads are hot or warm (DRAM-bound loads are planted by the burst
    machinery); stores additionally stream through DRAM with a small
    probability, generating write-back traffic.
    """
    if itype == STORE and rng.random() < 0.08:
        return _STREAM, False
    if rng.random() < model.hot_frac:
        return _HOT, False
    return _WARM, False


def _poisson_at_least_zero(rng: random.Random, mean: float) -> int:
    """Small-mean Poisson sample (inverse-CDF; mean <= ~4 in practice)."""
    import math

    u = rng.random()
    p = math.exp(-mean)
    cdf = p
    k = 0
    while u > cdf and k < 16:
        k += 1
        p *= mean / k
        cdf += p
    return k


_TRACE_CACHE: dict = {}


def clear_trace_cache() -> None:
    _TRACE_CACHE.clear()


def generate_trace(
    model: AppModel,
    instructions: int,
    thread_id: int = 0,
    threads: int = 1,
    seed: int = 1,
    pc_base: int = 0,
    address_base: int = 0,
) -> Trace:
    """One thread's dynamic trace.

    ``pc_base``/``address_base`` keep multiprogrammed bundles disjoint in
    PC and address space; threads of one parallel app share PCs and the
    shared data region but have private footprints.
    """
    # Key on the full frozen model, not just its name: a model derived via
    # dataclasses.replace (sensitivity sweeps) must never alias the cached
    # traces of the original or results silently desynchronise.
    key = (model, instructions, thread_id, threads, seed, pc_base, address_base)
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        return cached

    bodies = _build_static_program(model, seed)
    rng = random.Random(f"dyn:{model.name}:{seed}:{thread_id}")

    shared_bytes = max(64 * 1024, model.footprint_bytes // 4)
    private_bytes = model.footprint_bytes
    shared_base = address_base
    private_base = address_base + shared_bytes + thread_id * private_bytes
    hot_base = private_base
    hot_bytes = model.hot_bytes
    warm_base = private_base + hot_bytes
    warm_bytes = model.warm_bytes
    cold_base = warm_base + warm_bytes
    cold_bytes = max(64 * 1024, private_bytes - hot_bytes - warm_bytes)

    # Per-static-PC streaming positions.
    stream_pos: dict[int, int] = {}
    stride = model.stream_stride

    trace = Trace(name=f"{model.name}.t{thread_id}")
    trace.prewarm = [
        (hot_base, hot_bytes, 1),
        (warm_base, warm_bytes, 2),
    ]
    append = trace.append
    body_weights = [1.0 / (i + 1) for i in range(len(bodies))]
    total_w = sum(body_weights)
    body_weights = [w / total_w for w in body_weights]

    # Emission-time activation rates: calibrated so the long-run DRAM-bound
    # load rate is (1-hot_frac)(1-warm_frac) of all loads, split between
    # phase bursts and singleton misses per ``solo_frac``.
    loads_per_body = max(1, round(model.body_len * model.load_frac))
    cold_per_body = (1.0 - model.hot_frac) * (1.0 - model.warm_frac) * loads_per_body
    mean_burst = sum(len(b.burst_positions) for b in bodies) / len(bodies)
    activate_p = min(
        1.0, cold_per_body * (1.0 - model.solo_frac) / max(0.5, mean_burst)
    )
    solo_p = min(1.0, cold_per_body * model.solo_frac)
    if model.phase_duty is not None:
        activate_p = model.phase_duty
    if model.solo_rate is not None:
        solo_p = model.solo_rate
    # Per-thread load imbalance: spread threads evenly over the
    # [1-imbalance, 1+imbalance] intensity range (deterministic).
    if threads > 1 and model.thread_imbalance > 0:
        lo = 1.0 - model.thread_imbalance
        hi = 1.0 + model.thread_imbalance
        factor = lo + (hi - lo) * thread_id / (threads - 1)
        activate_p = min(1.0, activate_p * factor)
        solo_p = min(1.0, solo_p * factor)

    # Per-body gather stream positions (bursts walk consecutive lines).
    LINE = 64
    body_stream_pos: dict[int, int] = {}

    n = 0
    while n < instructions:
        body = bodies[_weighted_index(rng, body_weights)]
        specs = body.specs
        burst = body.burst_order
        burst_size = len(burst)
        iterations = rng.randint(6, 28)
        # Activation is per loop *visit*: a visit either sweeps DRAM-resident
        # data for all its iterations (a memory phase, hundreds of
        # instructions long) or runs entirely out of the caches.  Memory
        # phases from different threads overlap, producing the episodic
        # deep-queue contention real parallel apps exhibit between barriers.
        active = rng.random() < activate_p
        for _ in range(iterations):
            burst_base = None
            for pos, instr in enumerate(specs):
                itype = instr.itype
                addr = 0
                misp = False
                if itype == LOAD or itype == STORE:
                    k = burst.get(pos)
                    if k is None:
                        if pos == body.solo_position:
                            if rng.random() < solo_p:
                                base, span = (
                                    (shared_base, shared_bytes)
                                    if instr.shared
                                    else (cold_base, cold_bytes)
                                )
                                addr = base + (rng.randrange(span) & ~7)
                            else:
                                addr = warm_base + (rng.randrange(warm_bytes) & ~7)
                        else:
                            addr = _gen_address(
                                instr, rng, stream_pos,
                                hot_base, hot_bytes, warm_base, warm_bytes,
                                cold_base, cold_bytes,
                                shared_base, shared_bytes, stride,
                            )
                    elif not active:
                        # Inactive iteration: the burst reads cached data.
                        addr = warm_base + (rng.randrange(warm_bytes) & ~7)
                    elif instr.klass == _STREAM:
                        # Gather over two arrays (c[i] = f(a[i], b[i])):
                        # burst members alternate between two independent
                        # line streams, so the burst spreads over two
                        # channels and forms two concurrent row trains.
                        if burst_base is None:
                            base, span = (
                                (shared_base, shared_bytes)
                                if instr.shared
                                else (cold_base, cold_bytes)
                            )
                            half = span // 2
                            cursor = body_stream_pos.get(body.body_id)
                            if cursor is None:
                                cursor = rng.randrange(half) & ~(LINE - 1)
                            burst_base = (
                                base + cursor,
                                base + half + ((cursor * 7) % half & ~(LINE - 1)),
                            )
                            advance = (burst_size // 2 + 1) * LINE
                            limit = max(LINE, half - advance)
                            body_stream_pos[body.body_id] = (cursor + advance) % limit
                        addr = burst_base[k & 1] + (k >> 1) * LINE
                    else:
                        # Random / pointer-chase burst member.
                        base, span = (
                            (shared_base, shared_bytes)
                            if instr.shared
                            else (cold_base, cold_bytes)
                        )
                        addr = base + (rng.randrange(span) & ~7)
                elif itype == BRANCH:
                    misp = rng.random() < model.mispredict_rate
                append(itype, pc_base + instr.pc, addr, instr.dep1, instr.dep2, misp)
                n += 1
            if n >= instructions:
                break

    _truncate(trace, instructions)
    _TRACE_CACHE[key] = trace
    return trace


def _weighted_index(rng: random.Random, weights) -> int:
    u = rng.random()
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if u <= acc:
            return i
    return len(weights) - 1


def _gen_address(
    instr, rng, stream_pos,
    hot_base, hot_bytes, warm_base, warm_bytes,
    cold_base, cold_bytes,
    shared_base, shared_bytes, stride,
):
    klass = instr.klass
    if klass == _HOT:
        return hot_base + (rng.randrange(hot_bytes) & ~7)
    if klass == _WARM:
        return warm_base + (rng.randrange(warm_bytes) & ~7)
    if instr.shared:
        base, span = shared_base, shared_bytes
    else:
        base, span = cold_base, cold_bytes
    if klass == _STREAM:
        pos = stream_pos.get(instr.pc)
        if pos is None:
            pos = rng.randrange(span) & ~7
        addr = base + pos
        stream_pos[instr.pc] = (pos + stride) % span
        return addr
    # _RANDOM and _CHASE: uniform over the region (the chase's serialising
    # effect comes from its dependency, not its address).
    return base + (rng.randrange(span) & ~7)


def _truncate(trace: Trace, length: int) -> None:
    for field in ("itypes", "pcs", "addrs", "dep1", "dep2", "misp"):
        lst = getattr(trace, field)
        del lst[length:]
