"""Multiprogrammed four-application bundles (paper Table 4).

Each bundle mixes processor- (P), cache- (C), and memory-sensitive (M)
SPEC 2000 / NAS programs.  Bundle applications get disjoint PC and address
spaces — they share only the L2 and the memory system.
"""

from __future__ import annotations

from repro.workloads.models import SPEC_APPS
from repro.workloads.synthetic import generate_trace

#: Table 4: bundle name -> application list (order = core assignment).
BUNDLES: dict[str, tuple[str, ...]] = {
    "AELV": ("ammp", "ep", "lu", "vpr"),
    "CMLI": ("crafty", "mesa", "lu", "is"),
    "GAMV": ("mg", "ammp", "mesa", "vpr"),
    "GDPC": ("mg", "mgrid", "parser", "crafty"),
    "GSMV": ("mg", "sp", "mesa", "vpr"),
    "RFEV": ("art", "mcf", "ep", "vpr"),
    "RFGI": ("art", "mcf", "mg", "is"),
    "RGTM": ("art", "mg", "twolf", "mesa"),
}

#: Address-space stride between bundle slots (1 TiB: never overlaps).
_SLOT_SPAN = 1 << 40
#: PC-space stride between bundle slots.
_PC_SPAN = 1 << 20


def bundle_traces(bundle: str, instructions: int, seed: int = 1):
    """Per-core traces for one Table 4 bundle."""
    try:
        apps = BUNDLES[bundle]
    except KeyError:
        raise ValueError(
            f"unknown bundle {bundle!r}; choose from {sorted(BUNDLES)}"
        ) from None
    traces = []
    for slot, app in enumerate(apps):
        model = SPEC_APPS[app]
        traces.append(
            generate_trace(
                model,
                instructions,
                thread_id=0,
                threads=1,
                seed=seed + slot,
                pc_base=slot * _PC_SPAN,
                address_base=slot * _SLOT_SPAN,
            )
        )
    return traces


def bundle_app_names(bundle: str) -> tuple[str, ...]:
    return BUNDLES[bundle]
