"""Workload models: synthetic, statistically-shaped traces standing in for
the paper's SPLASH-2 / NAS / SPEC-OMP / NU-MineBench binaries (see
DESIGN.md, "Substitutions")."""

from repro.workloads.models import AppModel, PARALLEL_APPS, SPEC_APPS
from repro.workloads.multiprog import BUNDLES, bundle_traces
from repro.workloads.parallel import PARALLEL_APP_NAMES, parallel_traces
from repro.workloads.synthetic import generate_trace

__all__ = [
    "AppModel",
    "BUNDLES",
    "PARALLEL_APPS",
    "PARALLEL_APP_NAMES",
    "SPEC_APPS",
    "bundle_traces",
    "generate_trace",
    "parallel_traces",
]
