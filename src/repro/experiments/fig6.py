"""Figure 6: average L2-miss (DRAM-serviced) load latency, split into
critical and non-critical loads, under FR-FCFS / Binary / MaxStallTime.

The FR-FCFS bars annotate loads with the 64-entry CBP but do not act on
the annotation, exactly as the paper's figure requires.  Expected shape:
critical latency drops under the criticality schedulers; non-critical
latency holds or rises (the scheduler exploits slack).
"""

from __future__ import annotations

from repro.core.cbp import CbpMetric
from repro.experiments.common import (
    ExperimentResult,
    cached_run,
    default_apps,
    default_seeds,
    geo_or_mean,
)

CONFIGS = (
    ("FR-FCFS", "fr-fcfs", CbpMetric.MAX_STALL),
    ("Binary", "casras-crit", CbpMetric.BINARY),
    ("MaxStallTime", "casras-crit", CbpMetric.MAX_STALL),
)


def run(apps=None, seeds=None) -> ExperimentResult:
    apps = apps or default_apps()
    seeds = seeds or default_seeds()
    columns = ["app"]
    for label, _s, _m in CONFIGS:
        columns += [f"{label} crit", f"{label} noncrit"]
    rows = []
    for app in apps:
        row = {"app": app}
        for label, scheduler, metric in CONFIGS:
            crit_vals, noncrit_vals = [], []
            for seed in seeds:
                result = cached_run(
                    "parallel", app, scheduler,
                    ("cbp", {"entries": 64, "metric": metric}), seed=seed,
                )
                crit_vals.append(result.hierarchy.mean_latency(True))
                noncrit_vals.append(result.hierarchy.mean_latency(False))
            row[f"{label} crit"] = geo_or_mean(crit_vals)
            row[f"{label} noncrit"] = geo_or_mean(noncrit_vals)
        rows.append(row)
    avg = {"app": "Average"}
    for c in columns[1:]:
        avg[c] = geo_or_mean(r[c] for r in rows)
    rows.append(avg)
    return ExperimentResult(
        "fig6",
        "L2-miss load latency (CPU cycles), critical vs non-critical",
        columns,
        rows,
        notes=(
            "Paper shape: criticality schedulers cut critical-load latency; "
            "non-critical latency holds or rises (slack exploited)."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
