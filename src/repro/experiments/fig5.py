"""Figure 5: MaxStallTime table-size sweep (64/256/1024/unlimited).

Paper: the 64-entry table performs essentially identically to the
unlimited fully-associative table; fft and art slightly *prefer* small
tables (art by a large margin, via its memory-footprint anomaly).
"""

from __future__ import annotations

from repro.core.cbp import CbpMetric
from repro.experiments.common import (
    ExperimentResult,
    default_apps,
    default_seeds,
    geo_or_mean,
    mean_speedup,
)

TABLE_SIZES = (64, 256, 1024, None)


def run(apps=None, seeds=None) -> ExperimentResult:
    apps = apps or default_apps()
    seeds = seeds or default_seeds()
    columns = ["table"] + list(apps) + ["Average"]
    rows = []
    for entries in TABLE_SIZES:
        label = "unlimited" if entries is None else f"{entries}-entry"
        spec = ("cbp", {"entries": entries, "metric": CbpMetric.MAX_STALL})
        row = {"table": label}
        for app in apps:
            row[app] = mean_speedup(app, "casras-crit", spec, seeds=seeds)
        row["Average"] = geo_or_mean(row[a] for a in apps)
        rows.append(row)
    return ExperimentResult(
        "fig5",
        "MaxStallTime CBP table-size sweep (speedup vs FR-FCFS)",
        columns,
        rows,
        notes="Paper: 64-entry within noise of unlimited (~1.093 average).",
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
