"""Ablation studies (reproduction extensions, beyond the paper's figures).

1. **Counter modes** — the paper's Section 5.3 aside: saturating and
   probabilistic (Riley & Zilles) counters in place of full-width ones.
   Expectation: saturation at Table 5's widths is performance-neutral;
   probabilistic compression costs little.
2. **Excluded predictors** — the Section 2 exclusion of Fields-style
   long-latency criticality, reproduced quantitatively: the Fields-like
   predictor marks essentially *all* DRAM loads critical (no
   differentiation), so its speedup collapses toward FR-FCFS.
3. **Memory-side rankings** — ATLAS and Minimalist Open-page, the related
   work's controller-side notions of importance, on the same workloads.
"""

from __future__ import annotations

from repro.core.cbp import CbpMetric
from repro.experiments.common import (
    ExperimentResult,
    default_seeds,
    geo_or_mean,
    mean_speedup,
    SENSITIVITY_APPS,
)

CONFIGS = (
    ("MaxStall / full counters", "casras-crit",
     ("cbp", {"entries": 64, "metric": CbpMetric.MAX_STALL}), None),
    ("MaxStall / saturating", "casras-crit",
     ("cbp", {"entries": 64, "metric": CbpMetric.MAX_STALL,
              "counter": "saturating"}), None),
    ("MaxStall / probabilistic", "casras-crit",
     ("cbp", {"entries": 64, "metric": CbpMetric.MAX_STALL,
              "counter": "probabilistic"}), None),
    ("Fields-like (excluded)", "casras-crit", ("fields", {}), None),
    ("ATLAS", "atlas", None, None),
    ("Minimalist Open-page", "minimalist", None, None),
)


def run(apps=SENSITIVITY_APPS, seeds=None) -> ExperimentResult:
    seeds = seeds or default_seeds()
    rows = []
    for label, scheduler, spec, kwargs in CONFIGS:
        speeds = [
            mean_speedup(app, scheduler, spec, seeds=seeds,
                         scheduler_kwargs=kwargs)
            for app in apps
        ]
        rows.append({"config": label, "speedup": geo_or_mean(speeds)})
    return ExperimentResult(
        "ablation",
        "Counter modes, excluded predictors, memory-side rankings",
        ["config", "speedup"],
        rows,
        notes=(
            "Counter compression should be ~neutral; the Fields-like "
            "predictor should not beat FR-FCFS (the paper's exclusion)."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
