"""Section 5.3.2: periodic CBP table reset.

Sweeps reset intervals on the training set (fft, mg, radix), then applies
the best interval to the test set (the remaining six apps).  Paper: 100K
cycles is best for the 64-entry table; reset lifts Binary from 7.5% to
9.0% on the test set; unlimited tables are insensitive (criticality
information is useful long-term).
"""

from __future__ import annotations

from repro.core.cbp import CbpMetric
from repro.experiments.common import (
    ExperimentResult,
    default_seeds,
    geo_or_mean,
    mean_speedup,
)
from repro.workloads.parallel import PARALLEL_APP_NAMES

TRAIN_APPS = ("fft", "mg", "radix")
TEST_APPS = tuple(a for a in PARALLEL_APP_NAMES if a not in TRAIN_APPS)
INTERVALS = (None, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000)


def _speedup_over_apps(apps, interval, entries, metric, seeds):
    spec = ("cbp", {"entries": entries, "metric": metric,
                    "reset_interval": interval})
    return geo_or_mean(
        mean_speedup(app, "casras-crit", spec, seeds=seeds) for app in apps
    )


def run(seeds=None, metric=CbpMetric.BINARY) -> ExperimentResult:
    seeds = seeds or default_seeds()
    rows = []
    best_interval, best_value = None, -1.0
    for interval in INTERVALS:
        value = _speedup_over_apps(TRAIN_APPS, interval, 64, metric, seeds)
        rows.append(
            {
                "set": "train",
                "interval": "none" if interval is None else interval,
                "speedup_64": value,
                "speedup_unlimited": None,
            }
        )
        if interval is not None and value > best_value:
            best_interval, best_value = interval, value
    # Test set: no-reset vs best interval, finite and unlimited tables.
    for interval in (None, best_interval):
        rows.append(
            {
                "set": "test",
                "interval": "none" if interval is None else interval,
                "speedup_64": _speedup_over_apps(TEST_APPS, interval, 64, metric, seeds),
                "speedup_unlimited": _speedup_over_apps(
                    TEST_APPS, interval, None, metric, seeds
                ),
            }
        )
    return ExperimentResult(
        "reset",
        f"CBP table-reset interval study ({metric.value})",
        ["set", "interval", "speedup_64", "speedup_unlimited"],
        rows,
        notes=(
            "Paper: 100K-cycle reset best on the training set; lifts the "
            "64-entry Binary test-set speedup to the unlimited table's; "
            "resetting the unlimited table changes nothing."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
