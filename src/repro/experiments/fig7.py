"""Figure 7: criticality + an aggressive L2 stream prefetcher.

All configurations run with the Section 5.5 prefetcher (64 streams,
distance 64, degree 4); speedups are normalised to FR-FCFS *without*
prefetching.  Paper: FR-FCFS-Prefetch 1.084; adding the CBP still helps
(Binary +4.9% .. TotalStallTime +7.4% over the prefetching baseline).
"""

from __future__ import annotations


from repro.config import PrefetcherConfig, SystemConfig
from repro.core.cbp import CbpMetric
from repro.experiments.common import (
    ExperimentResult,
    default_apps,
    default_seeds,
    geo_or_mean,
    mean_speedup,
)

METRICS = (
    ("FR-FCFS-Prefetch", None, "fr-fcfs"),
    ("Binary", CbpMetric.BINARY, "casras-crit"),
    ("BlockCount", CbpMetric.BLOCK_COUNT, "casras-crit"),
    ("LastStallTime", CbpMetric.LAST_STALL, "casras-crit"),
    ("MaxStallTime", CbpMetric.MAX_STALL, "casras-crit"),
    ("TotalStallTime", CbpMetric.TOTAL_STALL, "casras-crit"),
)


def prefetch_config(streams: int = 64) -> SystemConfig:
    return SystemConfig(
        prefetcher=PrefetcherConfig(enabled=True, streams=streams)
    )


def run(apps=None, seeds=None) -> ExperimentResult:
    apps = apps or default_apps()
    seeds = seeds or default_seeds()
    pf = prefetch_config()
    columns = ["config"] + list(apps) + ["Average"]
    rows = []
    for label, metric, scheduler in METRICS:
        spec = None if metric is None else ("cbp", {"entries": 64, "metric": metric})
        row = {"config": label}
        for app in apps:
            row[app] = mean_speedup(
                app, scheduler, spec, config=pf, seeds=seeds,
                baseline_config=SystemConfig(),  # no prefetch baseline
            )
        row["Average"] = geo_or_mean(row[a] for a in apps)
        rows.append(row)
    return ExperimentResult(
        "fig7",
        "Speedups with an L2 stream prefetcher (vs FR-FCFS, no prefetch)",
        columns,
        rows,
        notes=(
            "Paper: FR-FCFS-Prefetch 1.084; CBP metrics stack a further "
            "+4.9%..+7.4% on top."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
