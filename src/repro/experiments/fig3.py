"""Figure 3: Binary criticality speedups over FR-FCFS.

Sweeps the CBP table size (64 / 256 / 1024 / unlimited) under both
priority arrangements (Crit-CASRAS on top, CASRAS-Crit below) and includes
CLPT-Binary.  Paper: ~6.5% average for a 64-entry table under either
arrangement; 7.4% unlimited; CLPT-Binary ~0; the two arrangements match.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    default_apps,
    default_seeds,
    geo_or_mean,
    mean_speedup,
    prefetch_runs,
)

TABLE_SIZES = (64, 256, 1024, None)


def _size_label(entries):
    return "unlimited" if entries is None else str(entries)


def _configs():
    configs = [("CLPT-Binary", ("clpt", {"ranked": False}))]
    configs += [
        (f"Binary CBP {_size_label(s)}", ("cbp", {"entries": s, "metric": "BINARY"}))
        for s in TABLE_SIZES
    ]
    return configs


def run(apps=None, seeds=None, algorithms=("crit-casras", "casras-crit")) -> ExperimentResult:
    apps = apps or default_apps()
    seeds = seeds or default_seeds()
    prefetch_runs(
        [
            {"kind": "parallel", "workload": app, "seed": seed}
            for seed in seeds
            for app in apps
        ]
        + [
            {
                "kind": "parallel",
                "workload": app,
                "scheduler": algorithm,
                "provider_spec": _normalise(spec),
                "seed": seed,
            }
            for seed in seeds
            for app in apps
            for algorithm in algorithms
            for _, spec in _configs()
        ]
    )
    columns = ["algorithm", "config"] + list(apps) + ["Average"]
    rows = []
    for algorithm in algorithms:
        for label, spec in _configs():
            spec = _normalise(spec)
            row = {"algorithm": algorithm, "config": label}
            for app in apps:
                row[app] = mean_speedup(app, algorithm, spec, seeds=seeds)
            row["Average"] = geo_or_mean(row[a] for a in apps)
            rows.append(row)
    return ExperimentResult(
        "fig3",
        "Binary criticality speedup vs FR-FCFS (CBP size sweep + CLPT)",
        columns,
        rows,
        notes=(
            "Paper: 64-entry Binary CBP ~1.065 average under both "
            "arrangements; unlimited ~1.074; CLPT-Binary ~1.00."
        ),
    )


def _normalise(spec):
    kind, kwargs = spec
    if kind == "cbp" and isinstance(kwargs.get("metric"), str):
        from repro.core.cbp import CbpMetric

        kwargs = dict(kwargs, metric=CbpMetric[kwargs["metric"]])
    return (kind, kwargs)


def main():
    print(run().table())


if __name__ == "__main__":
    main()
