"""Table 5: criticality counter widths.

Runs every CBP metric with an unlimited table, records the maximum value
ever written, and derives the counter width in bits.  Paper: Binary 1 b,
BlockCount 21 b, Last/MaxStallTime 14 b, TotalStallTime 27 b (at 500M
instructions per core; widths shrink with trace length, which the notes
call out).
"""

from __future__ import annotations

from repro.core.cbp import CbpMetric, CommitBlockPredictor
from repro.experiments.common import (
    ExperimentResult,
    cached_run,
    default_apps,
    default_seeds,
)

PAPER_WIDTHS = {
    "Binary": 1,
    "BlockCount": 21,
    "LastStallTime": 14,
    "MaxStallTime": 14,
    "TotalStallTime": 27,
}


def run(apps=None, seeds=None) -> ExperimentResult:
    apps = apps or default_apps()
    seeds = seeds or default_seeds()
    rows = []
    for metric in CbpMetric:
        max_observed = 0
        for app in apps:
            for seed in seeds:
                result = cached_run(
                    "parallel", app, "casras-crit",
                    ("cbp", {"entries": None, "metric": metric}), seed=seed,
                )
                for provider in result.providers:
                    max_observed = max(max_observed, provider.cbp.max_observed)
        rows.append(
            {
                "metric": metric.value,
                "max_observed": max_observed,
                "width_bits": CommitBlockPredictor.counter_width(max_observed),
                "paper_width_bits": PAPER_WIDTHS[metric.value],
            }
        )
    return ExperimentResult(
        "table5",
        "Criticality counter widths (worst observed value per metric)",
        ["metric", "max_observed", "width_bits", "paper_width_bits"],
        rows,
        notes=(
            "Widths scale with simulated instruction count; the paper runs "
            "500M instructions per core, so absolute widths differ while "
            "the ordering (Binary < Last/Max < BlockCount/Total) holds."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
