"""Figure 1: ROB-head blocking under FR-FCFS.

Left panel: percentage of dynamic (long-latency) loads that block at the
ROB head.  Right panel: percentage of processor cycles those loads spend
blocking the head.  Paper averages: 6.1% of loads, 48.6% of cycles.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    cached_run,
    default_apps,
    default_seeds,
    geo_or_mean,
)


def run(apps=None, seeds=None) -> ExperimentResult:
    apps = apps or default_apps()
    seeds = seeds or default_seeds()
    rows = []
    for app in apps:
        load_fracs, cycle_fracs = [], []
        for seed in seeds:
            result = cached_run("parallel", app, "fr-fcfs", seed=seed)
            load_fracs.append(result.blocking_load_fraction())
            cycle_fracs.append(result.blocked_cycle_fraction())
        rows.append(
            {
                "app": app,
                "blocking_loads_pct": 100 * geo_or_mean(load_fracs),
                "blocked_cycles_pct": 100 * geo_or_mean(cycle_fracs),
            }
        )
    rows.append(
        {
            "app": "Average",
            "blocking_loads_pct": geo_or_mean(r["blocking_loads_pct"] for r in rows),
            "blocked_cycles_pct": geo_or_mean(r["blocked_cycles_pct"] for r in rows),
        }
    )
    return ExperimentResult(
        "fig1",
        "Dynamic loads blocking the ROB head / cycles blocked (FR-FCFS)",
        ["app", "blocking_loads_pct", "blocked_cycles_pct"],
        rows,
        notes="Paper averages: 6.1% of dynamic loads, 48.6% of cycles.",
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
