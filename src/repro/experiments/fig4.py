"""Figure 4: ranked criticality speedups (CASRAS-Crit, 64-entry tables).

Compares Binary, CLPT-Consumers, BlockCount, LastStallTime, MaxStallTime
and TotalStallTime.  Paper averages over FR-FCFS: Binary 6.5%, BlockCount
8.7%, LastStallTime ~Binary, MaxStallTime 9.3%, TotalStallTime best by a
hair, CLPT-Consumers ~0.
"""

from __future__ import annotations

from repro.core.cbp import CbpMetric
from repro.experiments.common import (
    ExperimentResult,
    default_apps,
    default_seeds,
    geo_or_mean,
    mean_speedup,
    prefetch_runs,
)

PREDICTORS = (
    ("Binary", ("cbp", {"entries": 64, "metric": CbpMetric.BINARY})),
    ("CLPT-Consumers", ("clpt", {"ranked": True})),
    ("BlockCount", ("cbp", {"entries": 64, "metric": CbpMetric.BLOCK_COUNT})),
    ("LastStallTime", ("cbp", {"entries": 64, "metric": CbpMetric.LAST_STALL})),
    ("MaxStallTime", ("cbp", {"entries": 64, "metric": CbpMetric.MAX_STALL})),
    ("TotalStallTime", ("cbp", {"entries": 64, "metric": CbpMetric.TOTAL_STALL})),
)


def run(apps=None, seeds=None, scheduler="casras-crit") -> ExperimentResult:
    apps = apps or default_apps()
    seeds = seeds or default_seeds()
    prefetch_runs(
        [
            {"kind": "parallel", "workload": app, "seed": seed}
            for seed in seeds
            for app in apps
        ]
        + [
            {
                "kind": "parallel",
                "workload": app,
                "scheduler": scheduler,
                "provider_spec": spec,
                "seed": seed,
            }
            for seed in seeds
            for app in apps
            for _, spec in PREDICTORS
        ]
    )
    columns = ["predictor"] + list(apps) + ["Average"]
    rows = []
    for label, spec in PREDICTORS:
        row = {"predictor": label}
        for app in apps:
            row[app] = mean_speedup(app, scheduler, spec, seeds=seeds)
        row["Average"] = geo_or_mean(row[a] for a in apps)
        rows.append(row)
    return ExperimentResult(
        "fig4",
        "Ranked criticality speedups vs FR-FCFS (CASRAS-Crit, 64 entries)",
        columns,
        rows,
        notes=(
            "Paper averages: Binary 1.065, BlockCount 1.087, LastStallTime "
            "~Binary, MaxStallTime 1.093, TotalStallTime best, CLPT ~1.00."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
