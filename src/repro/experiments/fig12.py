"""Figure 12: multiprogrammed weighted speedups over PAR-BS.

Four-application Table 4 bundles on the 4-core / 2-channel machine.
Weighted speedup normalises each application's IPC to its alone-run IPC
under baseline PAR-BS.  Paper: FR-FCFS ~1.00-1.02, TCM +1.9%,
MaxStallTime +6.0%, TCM+MaxStallTime ~ TCM-or-better but not above
MaxStallTime; MaxStallTime also cuts maximum slowdown ~11.6% vs TCM.
"""

from __future__ import annotations

from repro.core.cbp import CbpMetric
from repro.experiments.common import (
    ExperimentResult,
    cached_run,
    default_seeds,
    geo_or_mean,
)
from repro.sim.stats import maximum_slowdown, weighted_speedup
from repro.workloads.multiprog import BUNDLES

SCHEDULERS = (
    ("FR-FCFS", "fr-fcfs", None, None),
    ("TCM", "tcm", None, {"threads": 4}),
    ("MaxStallTime", "casras-crit",
     ("cbp", {"entries": 64, "metric": CbpMetric.MAX_STALL}), None),
    ("TCM+MaxStallTime", "tcm+crit",
     ("cbp", {"entries": 64, "metric": CbpMetric.MAX_STALL}), {"threads": 4}),
)


def _alone_ipcs(bundle: str, seed: int):
    ipcs = []
    for slot in range(len(BUNDLES[bundle])):
        result = cached_run("alone", bundle, "par-bs", seed=seed, slot=slot)
        ipcs.append(result.core_ipc(slot))
    return ipcs


def run(bundles=None, seeds=None) -> ExperimentResult:
    bundles = bundles or tuple(sorted(BUNDLES))
    seeds = seeds or default_seeds()
    columns = ["scheduler"] + list(bundles) + ["Average", "max_slowdown"]
    rows = []
    for label, scheduler, spec, kwargs in SCHEDULERS:
        row = {"scheduler": label}
        slowdowns = []
        for bundle in bundles:
            values = []
            for seed in seeds:
                alone = _alone_ipcs(bundle, seed)
                base = cached_run("bundle", bundle, "par-bs", seed=seed)
                conf = cached_run(
                    "bundle", bundle, scheduler, spec, seed=seed,
                    scheduler_kwargs=kwargs,
                )
                values.append(
                    weighted_speedup(conf, alone) / weighted_speedup(base, alone)
                )
                slowdowns.append(maximum_slowdown(conf, alone))
            row[bundle] = geo_or_mean(values)
        row["Average"] = geo_or_mean(row[b] for b in bundles)
        row["max_slowdown"] = geo_or_mean(slowdowns)
        rows.append(row)
    return ExperimentResult(
        "fig12",
        "Multiprogrammed weighted speedup over PAR-BS (Table 4 bundles)",
        columns,
        rows,
        notes=(
            "Paper: TCM +1.9%, MaxStallTime +6.0% weighted speedup over "
            "PAR-BS; MaxStallTime also improves maximum slowdown."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
