"""Figure 11: MORSE-P restricted to N oldest ready commands per cycle.

The paper sweeps N = 6..24 (each extra evaluated command costs replicated
CMAC ways in hardware); performance falls as fewer commands can be
examined.  Reported against FR-FCFS.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    default_seeds,
    geo_or_mean,
    mean_speedup,
    SENSITIVITY_APPS,
)

COMMAND_COUNTS = (6, 9, 12, 15, 18, 21, 24)


def run(apps=SENSITIVITY_APPS, seeds=None) -> ExperimentResult:
    seeds = seeds or default_seeds()
    rows = []
    for n in COMMAND_COUNTS:
        speeds = [
            mean_speedup(app, "morse-p", None, seeds=seeds,
                         scheduler_kwargs={"commands_checked": n})
            for app in apps
        ]
        rows.append({"commands_checked": n, "speedup": geo_or_mean(speeds)})
    return ExperimentResult(
        "fig11",
        "MORSE-P vs number of ready commands evaluated per DRAM cycle",
        ["commands_checked", "speedup"],
        rows,
        notes=(
            "Paper shape: monotone non-decreasing in N; matching "
            "MaxStallTime requires ~15 commands (80 kB of CMAC per "
            "controller)."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
