"""Experiment harness: one module per paper figure/table.

Every module exposes ``run(...) -> ExperimentResult`` plus a ``main()``
that prints the regenerated rows.  ``repro.experiments.registry`` maps
experiment ids ("fig3", "table5", ...) to their run functions.
"""

from repro.experiments.common import (
    ExperimentResult,
    cached_run,
    clear_run_cache,
    default_apps,
    default_seeds,
    experiment_scale,
)

__all__ = [
    "ExperimentResult",
    "cached_run",
    "clear_run_cache",
    "default_apps",
    "default_seeds",
    "experiment_scale",
]
