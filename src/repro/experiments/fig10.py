"""Figure 10: MaxStallTime vs the state-of-the-art schedulers.

Compares MaxStallTime CBP, AHB (Hur/Lin), MORSE-P (24 commands/cycle,
the paper's optimistic assumption) and Crit-RL (MORSE + CBP criticality
features, Table 6).  Paper averages over FR-FCFS: MaxStallTime 1.093,
AHB ~1.016, MORSE-P 1.112, Crit-RL ~ MORSE-P.
"""

from __future__ import annotations

from repro.core.cbp import CbpMetric
from repro.experiments.common import (
    ExperimentResult,
    default_apps,
    default_seeds,
    geo_or_mean,
    mean_speedup,
)

SCHEDULERS = (
    ("MaxStallTime", "casras-crit",
     ("cbp", {"entries": 64, "metric": CbpMetric.MAX_STALL}), None),
    ("AHB (Hur/Lin)", "ahb", None, None),
    ("MORSE-P", "morse-p", None, {"commands_checked": 24}),
    ("Crit-RL", "crit-rl",
     ("cbp", {"entries": 64, "metric": CbpMetric.MAX_STALL}),
     {"commands_checked": 24}),
)


def run(apps=None, seeds=None) -> ExperimentResult:
    apps = apps or default_apps()
    seeds = seeds or default_seeds()
    columns = ["scheduler"] + list(apps) + ["Average"]
    rows = []
    for label, scheduler, spec, kwargs in SCHEDULERS:
        row = {"scheduler": label}
        for app in apps:
            row[app] = mean_speedup(
                app, scheduler, spec, seeds=seeds, scheduler_kwargs=kwargs
            )
        row["Average"] = geo_or_mean(row[a] for a in apps)
        rows.append(row)
    return ExperimentResult(
        "fig10",
        "State-of-the-art scheduler comparison (speedup vs FR-FCFS)",
        columns,
        rows,
        notes=(
            "Paper: MaxStallTime 1.093, AHB ~1.016, MORSE-P 1.112, "
            "Crit-RL matches MORSE-P (criticality features are implicit)."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
