"""Section 5.7: storage-overhead arithmetic for the CASRAS-Crit design.

This is the paper's own accounting, reproduced analytically (it depends
only on structure sizes, not on simulation).  For each predictor it
reports the per-core bit range (lookup-at-decode vs PC-substring-in-LQ
implementations), the per-channel transaction-queue bits, and the system
total in bytes for the 8-core, quad-channel machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.common import ExperimentResult


@dataclass(frozen=True)
class OverheadModel:
    """Inputs to the Section 5.7 arithmetic."""

    cores: int = 8
    channels: int = 4
    rob_entries: int = 128
    load_queue_entries: int = 32
    table_entries: int = 64
    transaction_queue_entries: int = 64

    @property
    def seq_bits(self) -> int:
        return int(math.ceil(math.log2(self.rob_entries)))

    @property
    def index_bits(self) -> int:
        return int(math.ceil(math.log2(self.table_entries)))


def predictor_overhead(value_bits: int, model: OverheadModel | None = None) -> dict:
    """Bit/byte accounting for one CBP annotation width."""
    m = model or OverheadModel()
    table_bits = m.table_entries * value_bits
    # Per-core registers: saved sequence number + saved PC substring.
    registers = m.seq_bits + m.index_bits
    # Lookup alternatives (Section 3): storing the prediction in each load
    # queue entry (value_bits per entry) vs storing the PC substring.
    lq_low = m.load_queue_entries * min(value_bits, 1)
    lq_high = m.load_queue_entries * max(value_bits, m.index_bits)
    per_core_low = table_bits + registers + lq_low
    per_core_high = table_bits + registers + lq_high
    queue_bits = m.transaction_queue_entries * value_bits * m.channels
    total_low = m.cores * per_core_low + queue_bits
    total_high = m.cores * per_core_high + queue_bits
    return {
        "value_bits": value_bits,
        "per_core_bits_low": per_core_low,
        "per_core_bits_high": per_core_high,
        "queue_bits": queue_bits,
        "total_bytes_low": total_low // 8,
        "total_bytes_high": -(-total_high // 8),
    }


#: Counter widths from the paper's Table 5.
PAPER_WIDTHS = {
    "Binary": 1,
    "BlockCount": 21,
    "LastStallTime": 14,
    "MaxStallTime": 14,
    "TotalStallTime": 27,
}

#: Paper Section 5.7 system totals (bytes) for reference.
PAPER_TOTALS = {
    "Binary": (109, 301),
    "MaxStallTime": (1357, 1805),
    "TotalStallTime": (2605, 3469),
}


def run() -> ExperimentResult:
    rows = []
    for name, bits in PAPER_WIDTHS.items():
        o = predictor_overhead(bits)
        paper = PAPER_TOTALS.get(name)
        rows.append(
            {
                "predictor": name,
                "value_bits": bits,
                "per_core_bits": f"{o['per_core_bits_low']}-{o['per_core_bits_high']}",
                "total_bytes": f"{o['total_bytes_low']}-{o['total_bytes_high']}",
                "paper_bytes": f"{paper[0]}-{paper[1]}" if paper else "-",
            }
        )
    return ExperimentResult(
        "overhead",
        "Section 5.7 storage-overhead accounting (8 cores, 4 channels)",
        ["predictor", "value_bits", "per_core_bits", "total_bytes", "paper_bytes"],
        rows,
        notes="Hundreds of bytes to a few kilobytes of SRAM system-wide.",
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
