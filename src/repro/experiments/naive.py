"""Section 5.1: the naive predictor-less forwarding mechanism.

Criticality is forwarded over an optimistic side channel only when a load
is already blocking the ROB head — no table, no prediction.  Paper: 3.5%
average (within noise), motivating the predictor.
"""

from __future__ import annotations

from repro.core.cbp import CbpMetric
from repro.experiments.common import (
    ExperimentResult,
    default_apps,
    default_seeds,
    geo_or_mean,
    mean_speedup,
)


def run(apps=None, seeds=None) -> ExperimentResult:
    apps = apps or default_apps()
    seeds = seeds or default_seeds()
    rows = []
    for app in apps:
        naive = mean_speedup(app, "casras-crit", ("naive", {}), seeds=seeds)
        predicted = mean_speedup(
            app, "casras-crit",
            ("cbp", {"entries": 64, "metric": CbpMetric.MAX_STALL}),
            seeds=seeds,
        )
        rows.append({"app": app, "naive": naive, "MaxStallTime CBP": predicted})
    rows.append(
        {
            "app": "Average",
            "naive": geo_or_mean(r["naive"] for r in rows),
            "MaxStallTime CBP": geo_or_mean(r["MaxStallTime CBP"] for r in rows),
        }
    )
    return ExperimentResult(
        "naive",
        "Naive block-time forwarding vs predictor-based criticality",
        ["app", "naive", "MaxStallTime CBP"],
        rows,
        notes=(
            "Paper: naive forwarding gains only ~3.5% (no memory of past "
            "blocks); prediction at issue time is required."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
