"""Shared experiment machinery: run cache, seed averaging, result tables.

Simulation runs are memoised process-wide, so the FR-FCFS baseline an
experiment needs is computed once even when several figures share it.
Scales are environment-tunable for the benchmark harness:

* ``REPRO_INSTRUCTIONS`` — instructions per core (default 12,000);
* ``REPRO_SEEDS``        — seeds averaged per data point (default 1);
* ``REPRO_APPS``         — comma-separated subset of parallel apps.
"""

from __future__ import annotations

import os
import statistics

from repro.config import SimScale, SystemConfig
from repro.sim.engine import RunSpec, run_one_cached
from repro.workloads.parallel import PARALLEL_APP_NAMES


def experiment_scale(seed: int = 1) -> SimScale:
    instructions = int(os.environ.get("REPRO_INSTRUCTIONS", "12000"))
    warmup = max(500, instructions // 10)
    return SimScale(
        instructions_per_core=instructions, warmup_instructions=warmup, seed=seed
    )


def default_seeds() -> tuple[int, ...]:
    n = int(os.environ.get("REPRO_SEEDS", "1"))
    return tuple(range(1, n + 1))


def default_apps() -> tuple[str, ...]:
    env = os.environ.get("REPRO_APPS")
    if env:
        return tuple(a.strip() for a in env.split(",") if a.strip())
    return PARALLEL_APP_NAMES


#: Subset used by the sensitivity sweeps (Figures 8, 9, 11), which the
#: paper reports as averages only.
SENSITIVITY_APPS = ("art", "fft", "mg", "swim")

_RUN_CACHE: dict = {}


def clear_run_cache() -> None:
    _RUN_CACHE.clear()


def _config_key(config: SystemConfig | None):
    if config is None:
        return None
    d = config.dram
    return (
        config.cores,
        config.core.load_queue_entries,
        config.l1d.mshr_entries,
        config.l2.mshr_entries,
        config.prefetcher.enabled,
        config.prefetcher.streams,
        d.timings.name,
        d.channels,
        d.ranks_per_channel,
    )


def _provider_key(spec):
    if spec is None or spec == "null":
        return None
    kind, kwargs = spec
    return (kind, tuple(sorted((k, str(v)) for k, v in kwargs.items())))


def cached_run(
    kind: str,
    workload: str,
    scheduler: str = "fr-fcfs",
    provider_spec=None,
    config: SystemConfig | None = None,
    seed: int = 1,
    scheduler_kwargs: dict | None = None,
    slot: int | None = None,
):
    """Run (or fetch) one simulation.

    ``kind`` is "parallel", "bundle", or "alone".  Misses in the in-memory
    memo fall through to the engine's content-addressed disk cache before
    simulating (see :mod:`repro.sim.engine`).
    """
    key = (
        kind,
        workload,
        scheduler,
        _provider_key(provider_spec),
        _config_key(config),
        seed,
        tuple(sorted((scheduler_kwargs or {}).items())),
        slot,
        int(os.environ.get("REPRO_INSTRUCTIONS", "12000")),
    )
    result = _RUN_CACHE.get(key)
    if result is not None:
        return result
    result = run_one_cached(
        _spec_for(kind, workload, scheduler, provider_spec, config, seed,
                  scheduler_kwargs, slot)
    )
    _RUN_CACHE[key] = result
    return result


def _spec_for(kind, workload, scheduler, provider_spec, config, seed,
              scheduler_kwargs, slot) -> RunSpec:
    if kind not in ("parallel", "bundle", "alone"):
        raise ValueError(f"unknown run kind {kind!r}")
    return RunSpec(
        kind=kind,
        workload=workload,
        scheduler=scheduler,
        provider_spec=provider_spec,
        config=config,
        scale=experiment_scale(seed),
        scheduler_kwargs=scheduler_kwargs,
        slot=slot,
    )


def prefetch_runs(requests) -> None:
    """Warm the cache for a batch of upcoming :func:`cached_run` calls.

    ``requests`` are dicts of ``cached_run`` keyword arguments (``kind``
    and ``workload`` required).  Misses are simulated concurrently on the
    engine's worker pool and land in the disk cache, so the figure's
    subsequent serial ``cached_run`` calls all hit.  Purely an
    optimisation: results are identical with or without prefetching.
    """
    from repro.sim.engine import run_many

    if os.environ.get("REPRO_NO_CACHE", "") not in ("", "0"):
        return  # nowhere to park the results: prefetching would double work
    specs = [
        _spec_for(
            req["kind"],
            req["workload"],
            req.get("scheduler", "fr-fcfs"),
            req.get("provider_spec"),
            req.get("config"),
            req.get("seed", 1),
            req.get("scheduler_kwargs"),
            req.get("slot"),
        )
        for req in requests
    ]
    run_many(specs)


def mean_speedup(app, scheduler, provider_spec, config=None, seeds=None,
                 scheduler_kwargs=None, baseline_scheduler="fr-fcfs",
                 baseline_config=None, baseline_provider=None) -> float:
    """Seed-averaged speedup of a configuration over its baseline."""
    seeds = seeds or default_seeds()
    values = []
    for seed in seeds:
        base = cached_run(
            "parallel", app, baseline_scheduler,
            baseline_provider, baseline_config or config, seed,
        )
        conf = cached_run(
            "parallel", app, scheduler, provider_spec, config, seed,
            scheduler_kwargs=scheduler_kwargs,
        )
        values.append(base.cycles / conf.cycles)
    return statistics.mean(values)


class ExperimentResult:
    """Rows of one regenerated figure/table plus a plain-text renderer."""

    def __init__(self, experiment_id: str, title: str, columns, rows,
                 notes: str = ""):
        self.experiment_id = experiment_id
        self.title = title
        self.columns = list(columns)
        self.rows = [dict(r) for r in rows]
        self.notes = notes

    def table(self) -> str:
        widths = {
            c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in self.rows))
            if self.rows else len(str(c))
            for c in self.columns
        }
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(str(c).ljust(widths[c]) for c in self.columns))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in self.columns)
            )
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def column(self, name):
        return [row.get(name) for row in self.rows]

    def __repr__(self):
        return f"ExperimentResult({self.experiment_id}, rows={len(self.rows)})"


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def geo_or_mean(values) -> float:
    """Arithmetic mean, as the paper averages speedups."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0
