"""Figure 9: load-queue size sweep (32 / 48 / 64 entries).

Speedups relative to the 32-entry-LQ FR-FCFS machine.  Paper: 48 entries
removes most load-queue capacity stalls; criticality still gains 6.4%
(Binary) / 8.3% (MaxStallTime) there, and 64 entries changes little.
"""

from __future__ import annotations


from repro.config import SystemConfig
from repro.core.cbp import CbpMetric
from repro.experiments.common import (
    ExperimentResult,
    cached_run,
    default_seeds,
    geo_or_mean,
    SENSITIVITY_APPS,
)

LQ_SIZES = (32, 48, 64)
CONFIGS = (
    ("FR-FCFS", "fr-fcfs", None),
    ("Binary", "casras-crit", ("cbp", {"entries": 64, "metric": CbpMetric.BINARY})),
    ("MaxStallTime", "casras-crit",
     ("cbp", {"entries": 64, "metric": CbpMetric.MAX_STALL})),
)


def _system(lq: int) -> SystemConfig:
    base = SystemConfig()
    return base.scaled(core=base.core.scaled(load_queue_entries=lq))


def run(apps=SENSITIVITY_APPS, seeds=None) -> ExperimentResult:
    seeds = seeds or default_seeds()
    rows = []
    lq_full = {}
    for lq in LQ_SIZES:
        row = {"load_queue": lq}
        for label, scheduler, spec in CONFIGS:
            speeds = []
            for app in apps:
                for seed in seeds:
                    base = cached_run(
                        "parallel", app, "fr-fcfs", None, _system(32), seed
                    )
                    conf = cached_run(
                        "parallel", app, scheduler, spec, _system(lq), seed
                    )
                    speeds.append(base.cycles / conf.cycles)
                    if label == "FR-FCFS":
                        stats = conf.core_stats
                        lq_full.setdefault(lq, []).append(
                            sum(s.lq_full_cycles for s in stats)
                            / max(1, sum(conf.finish_cycles))
                        )
            row[label] = geo_or_mean(speeds)
        row["lq_full_frac"] = geo_or_mean(lq_full.get(lq, [0.0]))
        rows.append(row)
    return ExperimentResult(
        "fig9",
        "Load-queue size sweep (speedup vs 32-entry FR-FCFS)",
        ["load_queue", "FR-FCFS", "Binary", "MaxStallTime", "lq_full_frac"],
        rows,
        notes=(
            "Paper shape: capacity stalls mostly vanish by 48 entries; "
            "criticality gains persist (Binary 1.064, MaxStallTime 1.083)."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
