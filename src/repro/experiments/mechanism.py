"""Mechanism validation (reproduction extension, not a paper figure).

A controlled heterogeneous scenario that isolates the proposal's core
economics: latency-bound cores issuing sparse serial misses share the
memory system with bandwidth-bound cores streaming continuously.
Criticality-aware scheduling should accelerate the latency-bound cores
substantially while costing the bandwidth-bound cores almost nothing
(their finish time is total-bus-backlog-bound, not order-bound).

This is the regime in which the paper's 9-14% gains arise; at the scaled-
down synthetic-app operating point the effect is strongly attenuated (see
EXPERIMENTS.md), so this experiment demonstrates the machinery delivers
the full-size effect when the workload presents the required structure.
"""

from __future__ import annotations

import statistics

from repro.config import DramConfig, SystemConfig
from repro.cpu.instruction import INT, LOAD, STORE, Trace
from repro.experiments.common import ExperimentResult, experiment_scale
from repro.sim.system import System


def latency_bound_trace(n: int, gap: int = 120, core_id: int = 0) -> Trace:
    """Sparse independent misses, each gating ~gap instructions of work."""
    trace = Trace("latency-bound")
    base = (core_id + 1) << 36
    addr = base
    while len(trace) < n:
        for i in range(gap):
            trace.append(INT, 1000 + (i % 32), 0, 1 if i else 0)
        trace.append(LOAD, 2000, addr, 0)
        trace.append(INT, 2001, 0, 1)
        trace.append(INT, 2002, 0, 1)
        addr += (1 << 14) + 1024
    return trace


def bandwidth_bound_trace(n: int, core_id: int = 0) -> Trace:
    """A continuous line-granular store stream (memset/array-init-like).

    Stores retire through the store buffer and never block commit, so this
    core's DRAM traffic — read-for-ownership fetches plus eventual dirty
    write-backs — is exactly the *non-critical* population the scheduler
    should defer: the core is bandwidth-bound, and its finish time depends
    on aggregate service, not per-request latency.
    """
    trace = Trace("bandwidth-bound")
    addr = (core_id + 1) << 36 | (1 << 35)
    k = 0
    while len(trace) < n:
        trace.append(STORE, 3000 + (k % 8), addr, 0)
        for i in range(4):
            trace.append(INT, 4000 + i, 0, 1 if i else 0)
        addr += 64
        k += 1
    return trace


SCHEDULERS = ("fr-fcfs", "casras-crit", "crit-casras")


def run(latency_cores: int = 1, cores: int = 2, instructions: int | None = None,
        channels: int = 1) -> ExperimentResult:
    # This two-core scenario is cheap, and the predictor needs a few
    # thousand walker misses to stabilise: use a fixed floor rather than
    # the (possibly small) REPRO_INSTRUCTIONS experiment scale.
    scale = experiment_scale()
    n = instructions or max(24_000, scale.instructions_per_core)
    config = SystemConfig(cores=cores, dram=DramConfig(channels=channels))
    results = {}
    for scheduler in SCHEDULERS:
        traces = []
        for core in range(config.cores):
            if core < latency_cores:
                traces.append(latency_bound_trace(n, core_id=core))
            else:
                traces.append(bandwidth_bound_trace(n, core_id=core))
        system = System(
            config, traces, scheduler=scheduler,
            provider_spec=("cbp", {"entries": None}),
        )
        results[scheduler] = system.run(max_cycles=60 * n * 10)
    base = results["fr-fcfs"]
    lat = slice(0, latency_cores)
    bw = slice(latency_cores, config.cores)
    rows = []
    for scheduler in SCHEDULERS[1:]:
        res = results[scheduler]
        rows.append(
            {
                "scheduler": scheduler,
                "latency_core_speedup": statistics.mean(base.finish_cycles[lat])
                / statistics.mean(res.finish_cycles[lat]),
                "bandwidth_core_speedup": statistics.mean(base.finish_cycles[bw])
                / statistics.mean(res.finish_cycles[bw]),
            }
        )
    return ExperimentResult(
        "mechanism",
        "Controlled heterogeneous validation of criticality scheduling",
        ["scheduler", "latency_core_speedup", "bandwidth_core_speedup"],
        rows,
        notes=(
            "Crit-CASRAS preempts the hog's row-hit train (critical RAS > "
            "non-critical CAS) and accelerates the latency-bound core "
            "dramatically at small cost to the bandwidth hog; CASRAS-Crit "
            "cannot preempt an active train.  The two arrangements, equal "
            "at the paper's operating point, differ sharply here."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
