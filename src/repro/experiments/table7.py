"""Table 7: scheduler comparison summary.

Combines the parallel (Figure 10-style) and multiprogrammed (Figure 12-
style) averages with the analytical storage overheads and the Section
5.8.1 timing-feasibility argument (can the scheduler evaluate a command
within one DDR3-2133 command clock?).
"""

from __future__ import annotations

from repro.core.cbp import CbpMetric
from repro.experiments import fig12
from repro.experiments.common import (
    ExperimentResult,
    default_seeds,
    geo_or_mean,
    mean_speedup,
    SENSITIVITY_APPS,
)
from repro.experiments.overhead import predictor_overhead

#: Section 5.8.1 latency arithmetic, DDR3-2133: the command clock is
#: 937 ps; MORSE's CMAC access (~180 ps) + adder tree and comparator
#: (~700 ps) leave <60 ps for selection logic => infeasible.
DDR3_2133_CYCLE_PS = 937
MORSE_PIPELINE_PS = 180 + 700

SCHEDULERS = (
    ("AHB (Hur/Lin)", "ahb", None, None, "31 B", True),
    ("TCM", "tcm", None, None, "4816 B", True),
    ("MORSE-P", "morse-p", None, {"commands_checked": 24}, "128-512 kB", False),
    ("Binary CBP", "casras-crit",
     ("cbp", {"entries": 64, "metric": CbpMetric.BINARY}), None, None, True),
    ("MaxStallTime CBP", "casras-crit",
     ("cbp", {"entries": 64, "metric": CbpMetric.MAX_STALL}), None, None, True),
)

_CBP_BITS = {"Binary CBP": 1, "MaxStallTime CBP": 14}


def morse_feasible_at_2133() -> bool:
    """The Section 5.8.1 conclusion, derived from the same arithmetic."""
    return MORSE_PIPELINE_PS < DDR3_2133_CYCLE_PS - 60


def run(apps=SENSITIVITY_APPS, seeds=None, bundles=("AELV", "RFGI")) -> ExperimentResult:
    seeds = seeds or default_seeds()
    multi = fig12.run(bundles=bundles, seeds=seeds)
    multi_by_label = {
        row["scheduler"]: row["Average"] for row in multi.rows
    }
    rows = []
    for label, scheduler, spec, kwargs, storage, scales in SCHEDULERS:
        parallel = geo_or_mean(
            mean_speedup(app, scheduler, spec, seeds=seeds, scheduler_kwargs=kwargs)
            for app in apps
        )
        if storage is None:
            o = predictor_overhead(_CBP_BITS[label])
            storage = f"{o['total_bytes_low']}-{o['total_bytes_high']} B"
        multi_label = {
            "MaxStallTime CBP": "MaxStallTime",
            "Binary CBP": None,
            "TCM": "TCM",
        }.get(label)
        rows.append(
            {
                "scheduler": label,
                "parallel_speedup": parallel,
                "multiprog_wspeedup": multi_by_label.get(multi_label),
                "storage": storage,
                "processor_side_info": scheduler in (
                    "morse-p", "crit-rl", "casras-crit", "crit-casras"
                ),
                "scales_to_fast_dram": scales,
            }
        )
    return ExperimentResult(
        "table7",
        "Scheduler comparison summary (paper Table 7)",
        [
            "scheduler",
            "parallel_speedup",
            "multiprog_wspeedup",
            "storage",
            "processor_side_info",
            "scales_to_fast_dram",
        ],
        rows,
        notes=(
            "MORSE-P feasibility at DDR3-2133 per Section 5.8.1 arithmetic: "
            f"{morse_feasible_at_2133()} (pipeline {MORSE_PIPELINE_PS} ps vs "
            f"{DDR3_2133_CYCLE_PS} ps cycle)."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
