"""Figure 8: rank sweep for DDR3-1600 and DDR3-2133.

Speedups relative to a *single-rank* FR-FCFS system of the same device.
Paper: fewer ranks => more contention => larger criticality gains (e.g.
14.6% for MaxStallTime on single-rank DDR3-2133).
"""

from __future__ import annotations


from repro.config import DDR3_1600, DDR3_2133, DramConfig, SystemConfig
from repro.core.cbp import CbpMetric
from repro.experiments.common import (
    ExperimentResult,
    cached_run,
    default_seeds,
    geo_or_mean,
    SENSITIVITY_APPS,
)

RANKS = (1, 2, 4)
CONFIGS = (
    ("FR-FCFS", "fr-fcfs", None),
    ("Binary", "casras-crit", ("cbp", {"entries": 64, "metric": CbpMetric.BINARY})),
    ("MaxStallTime", "casras-crit",
     ("cbp", {"entries": 64, "metric": CbpMetric.MAX_STALL})),
)


def _system(timings, ranks) -> SystemConfig:
    return SystemConfig(dram=DramConfig(timings=timings, ranks_per_channel=ranks))


def run(apps=SENSITIVITY_APPS, seeds=None) -> ExperimentResult:
    seeds = seeds or default_seeds()
    rows = []
    for timings in (DDR3_1600, DDR3_2133):
        # Baseline: single-rank FR-FCFS on the same device.
        for ranks in RANKS:
            row = {"device": timings.name, "ranks": ranks}
            for label, scheduler, spec in CONFIGS:
                speeds = []
                for app in apps:
                    for seed in seeds:
                        base = cached_run(
                            "parallel", app, "fr-fcfs", None,
                            _system(timings, 1), seed,
                        )
                        conf = cached_run(
                            "parallel", app, scheduler, spec,
                            _system(timings, ranks), seed,
                        )
                        speeds.append(base.cycles / conf.cycles)
                row[label] = geo_or_mean(speeds)
            rows.append(row)
    return ExperimentResult(
        "fig8",
        "Rank sweep (speedup vs single-rank FR-FCFS, per device)",
        ["device", "ranks", "FR-FCFS", "Binary", "MaxStallTime"],
        rows,
        notes=(
            "Paper shape: criticality's edge over FR-FCFS grows as ranks "
            "shrink (single-rank DDR3-2133 MaxStallTime ~ +14.6%)."
        ),
    )


def main():
    print(run().table())


if __name__ == "__main__":
    main()
