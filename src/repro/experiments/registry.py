"""Experiment registry: id -> run callable."""

from __future__ import annotations

from repro.experiments import (
    ablation,
    fig1,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    mechanism,
    naive,
    overhead,
    reset,
    table5,
    table7,
)

EXPERIMENTS = {
    "fig1": fig1.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "table5": table5.run,
    "table7": table7.run,
    "naive": naive.run,
    "reset": reset.run,
    "overhead": overhead.run,
    "mechanism": mechanism.run,
    "ablation": ablation.run,
}


def run_experiment(experiment_id: str, **kwargs):
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; choose from "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    return fn(**kwargs)
