"""FR-FCFS (Rixner et al., ISCA 2000): the paper's baseline.

Column (CAS) commands to already-open rows are favoured over row (RAS)
commands; ties break oldest-first.  With the open-page row policy this
maximises row-buffer hit rate while bounding queueing delay by age.
"""

from __future__ import annotations

from repro.sched.base import Scheduler


class FrFcfsScheduler(Scheduler):
    """First-Ready, First-Come-First-Served."""

    name = "fr-fcfs"

    def select(self, candidates, controller, now):
        candidates = self.admissible(candidates, controller)
        best = None
        best_key = None
        for cand in candidates:
            # CAS (is_cas=True) sorts before RAS; then oldest (lowest seq).
            key = (not cand.is_cas, cand.txn.seq)
            if best is None or key < best_key:
                best = cand
                best_key = key
        return best
