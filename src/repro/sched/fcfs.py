"""Plain FCFS: strictly oldest-first, ignoring row-buffer state.

Not evaluated in the paper but kept as the canonical naive baseline for
tests and ablations (FR-FCFS must beat it on any row-local workload).
"""

from __future__ import annotations

from repro.sched.base import Scheduler


class FcfsScheduler(Scheduler):
    """First-Come-First-Served."""

    name = "fcfs"

    def select(self, candidates, controller, now):
        candidates = self.admissible(candidates, controller)
        if not candidates:
            return None
        return self.oldest(candidates)
