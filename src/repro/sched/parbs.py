"""PAR-BS: Parallelism-Aware Batch Scheduling (Mutlu & Moscibroda, ISCA'08).

Requests are grouped into *batches*: when no marked requests remain, the
oldest ``marking_cap`` requests per (thread, bank) are marked.  Marked
requests are strictly prioritised over unmarked ones (bounding intra-thread
unfairness), and within the batch threads are ranked shortest-job-first
(the "max-total" rule: a thread's job length is its maximum per-bank marked
count, then its total), so short threads finish and release their cores.

Priority order: marked > row-hit (CAS over RAS) > thread rank > age.
"""

from __future__ import annotations

from repro.sched.base import Scheduler


class ParBsScheduler(Scheduler):
    """Batch scheduler; the paper's multiprogrammed baseline."""

    name = "par-bs"

    def __init__(self, marking_cap: int = 5):
        if marking_cap < 1:
            raise ValueError(f"marking_cap must be >= 1, got {marking_cap}")
        self.marking_cap = marking_cap
        self._rank: dict[int, int] = {}
        self.batches_formed = 0

    # -- batching ------------------------------------------------------------

    def _form_batch(self, controller) -> None:
        """Mark up to ``marking_cap`` oldest reads per (thread, bank)."""
        per_thread_bank: dict[tuple, list] = {}
        for txn in controller.read_queue:
            per_thread_bank.setdefault(
                (txn.core, txn.loc.rank, txn.loc.bank), []
            ).append(txn)
        per_thread_counts: dict[int, list[int]] = {}
        for (core, _rank, _bank), txns in per_thread_bank.items():
            txns.sort(key=lambda t: t.seq)
            marked = txns[: self.marking_cap]
            for txn in marked:
                txn.marked = True
            per_thread_counts.setdefault(core, []).append(len(marked))
        # Shortest-job-first thread ranking: (max per-bank, total) ascending.
        ordering = sorted(
            per_thread_counts.items(),
            key=lambda item: (max(item[1]), sum(item[1]), item[0]),
        )
        self._rank = {core: i for i, (core, _c) in enumerate(ordering)}
        self.batches_formed += 1

    def _batch_active(self, controller) -> bool:
        return any(txn.marked for txn in controller.read_queue)

    def det_state(self):
        values = [self.batches_formed, len(self._rank)]
        for core in sorted(self._rank):
            values += (core, self._rank[core])
        return values

    # -- selection ------------------------------------------------------------

    def select(self, candidates, controller, now):
        candidates = self.admissible(candidates, controller)
        if controller.read_queue and not self._batch_active(controller):
            self._form_batch(controller)
        default_rank = len(self._rank)
        best = None
        best_key = None
        for cand in candidates:
            txn = cand.txn
            key = (
                not txn.marked,
                not cand.is_cas,
                self._rank.get(txn.core, default_rank),
                txn.seq,
            )
            if best is None or key < best_key:
                best = cand
                best_key = key
        return best
