"""Scheduler registry: name -> factory of per-channel scheduler instances.

``make_scheduler_factory(name, **kwargs)`` returns the callable the
:class:`~repro.dram.controller.MemorySystem` constructor expects (one fresh
scheduler per channel — schedulers needing cross-channel state receive it
via shared closures in their own modules; none of the implemented policies
require it).
"""

from __future__ import annotations

from repro.core.critsched import CasRasCritScheduler, CritCasRasScheduler
from repro.sched.ahb import AhbScheduler
from repro.sched.atlas import AtlasScheduler
from repro.sched.fcfs import FcfsScheduler
from repro.sched.frfcfs import FrFcfsScheduler
from repro.sched.minimalist import MinimalistScheduler
from repro.sched.morse import CritRlScheduler, MorseScheduler
from repro.sched.parbs import ParBsScheduler
from repro.sched.tcm import TcmScheduler
from repro.sched.tcm_crit import TcmCritScheduler

SCHEDULERS = {
    "fcfs": FcfsScheduler,
    "fr-fcfs": FrFcfsScheduler,
    "crit-casras": CritCasRasScheduler,
    "casras-crit": CasRasCritScheduler,
    "ahb": AhbScheduler,
    "atlas": AtlasScheduler,
    "minimalist": MinimalistScheduler,
    "par-bs": ParBsScheduler,
    "tcm": TcmScheduler,
    "tcm+crit": TcmCritScheduler,
    "morse-p": MorseScheduler,
    "crit-rl": CritRlScheduler,
}


def make_scheduler_factory(name: str, **kwargs):
    """Factory of per-channel scheduler instances for ``MemorySystem``."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None

    def factory(channel_id: int):
        return cls(**kwargs)

    return factory
