"""MORSE-P: self-optimising (reinforcement-learning) memory scheduler
(Ipek et al., ISCA 2008; Mukundan & Martínez, HPCA 2012).

Each DRAM cycle the scheduler examines up to ``commands_checked`` of the
oldest *ready* commands (the Figure 11 hardware restriction: each
additional evaluated command costs a replicated CMAC way), computes a
long-term value Q(s, a) for issuing each, and picks the best (epsilon-
greedy).  Q is a CMAC-style linear approximator over quantised features of
the command and queue state — our feature set follows the paper's Table 6,
including the "ROB position relative to other commands from the same core"
processor-side attribute, with the criticality attributes enabled for the
Crit-RL variant.

The paper's MORSE runs continuously trained over hundreds of millions of
instructions.  At reproduction scale we model a *trained* controller as an
informed prior (bus-utilisation-driven preferences: CAS over RAS, oldest
first, same-core head requests first) plus online SARSA refinement of the
CMAC weights — see DESIGN.md, "Substitutions".

Reward follows MORSE: +1 for every READ/WRITE issued (data-bus
utilisation), 0 for row commands.
"""

from __future__ import annotations

import random

from repro.dram.command import CommandKind
from repro.sched.base import Scheduler


class MorseScheduler(Scheduler):
    """SARSA + CMAC command scheduler (MORSE-P)."""

    name = "morse-p"

    def __init__(
        self,
        commands_checked: int = 24,
        tilings: int = 4,
        alpha: float = 0.08,
        gamma: float = 0.95,
        epsilon: float = 0.02,
        use_criticality: bool = False,
        seed: int = 7,
        rng: random.Random | None = None,
    ):
        if commands_checked < 1:
            raise ValueError(
                f"commands_checked must be >= 1, got {commands_checked}"
            )
        self.commands_checked = commands_checked
        self.tilings = tilings
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.use_criticality = use_criticality
        # Determinism contract: all exploration randomness flows through one
        # injectable, seeded stream — never the random module's global state.
        self._rng = rng if rng is not None else random.Random(seed)
        self._weights: dict = {}
        self._prev_keys = None
        self._prev_q = 0.0
        self._prev_reward = 0.0
        self.decisions = 0
        self.exploration_moves = 0

    # -- feature extraction ----------------------------------------------------

    def _features(self, cand, controller, now):
        txn = cand.txn
        reads = controller.read_queue
        n_reads = len(reads)
        same_rank = 0
        same_core_older = 0
        for other in reads:
            if other.loc.rank == cand.rank:
                same_rank += 1
            if other.core == txn.core and other.seq < txn.seq:
                same_core_older += 1
        open_row_writes = 0
        banks = controller.banks
        for w in controller.write_queue:
            bank = banks[w.loc.rank][w.loc.bank]
            if bank.open_row == w.loc.row:
                open_row_writes += 1
        age = now - txn.arrival
        features = (
            int(cand.kind),
            min(n_reads // 8, 7),
            min(same_rank // 4, 7),
            min(open_row_writes // 2, 7),
            min(same_core_older, 7),
            min(age // 64, 7),
        )
        if self.use_criticality:
            features += (1 if txn.critical else 0, min(txn.magnitude // 256, 7))
        return features

    def _q_learned(self, keys) -> float:
        weights = self._weights
        return sum(weights.get(k, 0.0) for k in keys)

    def _tile_keys(self, features):
        return [(t,) + features for t in range(self.tilings)]

    def _prior(self, cand, controller, now, same_core_older) -> float:
        """Trained-controller initialisation (see module docstring)."""
        txn = cand.txn
        value = 0.0
        if cand.is_cas:
            value += 8.0
        age = now - txn.arrival
        value += min(age, 2048) / 2048.0
        if same_core_older == 0:
            # The oldest request of a core: likely the one its ROB head is
            # waiting on (Table 6's ROB-position attribute).
            value += 1.5
        if self.use_criticality and txn.critical:
            value += 2.0 + min(txn.magnitude, 4096) / 4096.0
        return value

    # -- decision ----------------------------------------------------------------

    # Epsilon-greedy exploration is the policy itself: the draws come from
    # the seeded per-instance stream (``_rng``, DET001-clean) and every
    # divergence is caught by the det_state decision words.
    # repro-lint: disable=SEM031 seeded exploration stream is the policy
    def select(self, candidates, controller, now):
        candidates = self.admissible(candidates, controller)
        if not candidates:
            return None
        # Hardware restriction: only the N oldest ready commands compete.
        if len(candidates) > self.commands_checked:
            candidates = sorted(candidates, key=lambda c: c.txn.seq)
            candidates = candidates[: self.commands_checked]

        scored = []
        for cand in candidates:
            features = self._features(cand, controller, now)
            keys = self._tile_keys(features)
            q = self._q_learned(keys) + self._prior(
                cand, controller, now, features[4]
            )
            scored.append((q, cand, keys))

        if self._rng.random() < self.epsilon:
            chosen_q, chosen, chosen_keys = self._rng.choice(scored)
            self.exploration_moves += 1
        else:
            chosen_q, chosen, chosen_keys = max(scored, key=lambda s: s[0])

        self._sarsa_update(chosen_q)
        self._prev_keys = chosen_keys
        self._prev_q = chosen_q
        self._prev_reward = 1.0 if chosen.is_cas else 0.0
        self.decisions += 1
        return chosen

    def det_state(self):
        # The CMAC weight table and SARSA bootstrap floats are allowlisted
        # in the coverage audit: a divergence there changes the next
        # decision, which these words (and command order) catch.
        return (
            self.decisions,
            self.exploration_moves,
            self._float_bits(self._prev_reward),
        )

    def _sarsa_update(self, current_q: float) -> None:
        if self._prev_keys is None:
            return
        delta = self._prev_reward + self.gamma * current_q - self._prev_q
        step = self.alpha * delta / self.tilings
        weights = self._weights
        for key in self._prev_keys:
            weights[key] = weights.get(key, 0.0) + step


class CritRlScheduler(MorseScheduler):
    """Crit-RL: MORSE with the CBP criticality attributes (Table 6)."""

    name = "crit-rl"

    def __init__(self, commands_checked: int = 24, **kwargs):
        kwargs.setdefault("use_criticality", True)
        super().__init__(commands_checked=commands_checked, **kwargs)
