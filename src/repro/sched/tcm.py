"""Thread Cluster Memory scheduling (Kim et al., MICRO 2010).

Every quantum, threads are partitioned by memory intensity into a
*latency-sensitive* cluster (the least intense threads, up to a bandwidth
share threshold) and a *bandwidth-sensitive* cluster.  Latency-sensitive
threads are always prioritised (they barely use memory, so serving them
first costs the others little).  Within the bandwidth cluster, priorities
are periodically *shuffled* so no thread is persistently last — TCM's
fairness mechanism.

Priority order: cluster > (shuffled) rank > row-hit > age.
"""

from __future__ import annotations

from repro.sched.base import Scheduler


class TcmScheduler(Scheduler):
    """Throughput + fairness clustering scheduler."""

    name = "tcm"

    def __init__(
        self,
        quantum: int = 10_000,
        shuffle_interval: int = 800,
        latency_cluster_share: float = 0.15,
        threads: int = 8,
    ):
        if not 0.0 < latency_cluster_share < 1.0:
            raise ValueError(
                f"latency_cluster_share must be in (0,1), got {latency_cluster_share}"
            )
        self.quantum = quantum
        self.shuffle_interval = shuffle_interval
        self.latency_cluster_share = latency_cluster_share
        self.threads = threads
        self._requests_this_quantum: dict[int, int] = {}
        self._latency_cluster: set[int] = set()
        self._bw_order: list[int] = list(range(threads))
        self._next_quantum = quantum
        self._next_shuffle = shuffle_interval
        self.quanta = 0
        self.shuffles = 0

    # -- bookkeeping -----------------------------------------------------------

    def on_enqueue(self, txn, now) -> None:
        if not txn.is_write and txn.core >= 0:
            counts = self._requests_this_quantum
            counts[txn.core] = counts.get(txn.core, 0) + 1

    def _recluster(self, now: int) -> None:
        counts = self._requests_this_quantum
        total = sum(counts.values())
        self._latency_cluster = set()
        if total:
            # Least-intense threads first, admitted while their cumulative
            # bandwidth stays under the cluster share threshold.
            budget = self.latency_cluster_share * total
            acc = 0
            for core in sorted(range(self.threads), key=lambda c: counts.get(c, 0)):
                demand = counts.get(core, 0)
                if acc + demand <= budget:
                    self._latency_cluster.add(core)
                    acc += demand
                else:
                    break
        bw = [c for c in range(self.threads) if c not in self._latency_cluster]
        # Nicest (least intense) first at quantum start.
        self._bw_order = sorted(bw, key=lambda c: counts.get(c, 0))
        self._requests_this_quantum = {}
        self._next_quantum = now + self.quantum
        self.quanta += 1

    def _shuffle(self, now: int) -> None:
        if self._bw_order:
            self._bw_order = self._bw_order[1:] + self._bw_order[:1]
        self._next_shuffle = now + self.shuffle_interval
        self.shuffles += 1

    def _tick(self, now: int) -> None:
        if now >= self._next_quantum:
            self._recluster(now)
        if now >= self._next_shuffle:
            self._shuffle(now)

    def det_state(self):
        values = [
            self.quanta, self.shuffles, self._next_quantum,
            self._next_shuffle,
            sum(1 << core for core in self._latency_cluster),
        ]
        values.extend(self._bw_order)
        for core in sorted(self._requests_this_quantum):
            values += (core, self._requests_this_quantum[core])
        return values

    # -- selection -----------------------------------------------------------------

    def _thread_rank(self, core: int) -> int:
        if core in self._latency_cluster:
            return 0
        try:
            return 1 + self._bw_order.index(core)
        except ValueError:
            return 1 + len(self._bw_order)

    def select(self, candidates, controller, now):
        candidates = self.admissible(candidates, controller)
        self._tick(now)
        best = None
        best_key = None
        for cand in candidates:
            key = self._key(cand, now)
            if best is None or key < best_key:
                best = cand
                best_key = key
        return best

    def _key(self, cand, now):
        return (self._thread_rank(cand.txn.core), not cand.is_cas, cand.txn.seq)
