"""Minimalist Open-page scheduling (Kaseridis, Stuecheli & John,
MICRO 2011) — the paper's Section 6.2 example of *memory-side*
"criticality" (request importance inferred at the controller, in contrast
to the paper's processor-side signal).

Threads with low memory-level parallelism (few outstanding requests) are
ranked above high-MLP threads (each request of a low-MLP thread is more
likely to gate its progress); demand requests rank above prefetches; ties
break row-hit-first then oldest.
"""

from __future__ import annotations

from repro.sched.base import Scheduler


class MinimalistScheduler(Scheduler):
    """MLP-ranked open-page scheduler."""

    name = "minimalist"

    def select(self, candidates, controller, now):
        candidates = self.admissible(candidates, controller)
        # Outstanding requests per thread = that thread's current MLP.
        mlp: dict[int, int] = {}
        for txn in controller.read_queue:
            mlp[txn.core] = mlp.get(txn.core, 0) + 1
        best = None
        best_key = None
        for cand in candidates:
            txn = cand.txn
            key = (
                txn.is_prefetch,
                mlp.get(txn.core, 0),
                not cand.is_cas,
                txn.seq,
            )
            if best is None or key < best_key:
                best = cand
                best_key = key
        return best
