"""Scheduler interface.

A scheduler instance is attached to one channel controller.  Every DRAM
cycle with work pending, the controller derives the set of legally issuable
commands and calls :meth:`Scheduler.select`; the scheduler returns one of
them (or None to idle the command bus, which no paper scheduler ever does
when a command is ready, but the interface allows it).

Schedulers that track request streams (TCM, PAR-BS, MORSE) also get
:meth:`on_enqueue` / :meth:`on_command` notifications.
"""

from __future__ import annotations

import struct

from repro.dram.command import CandidateCommand, CommandKind


class Scheduler:
    """Base class: common hooks plus the oldest-first helper."""

    name = "base"

    # Telemetry counters, installed by register_metrics (class-level None
    # defaults keep directly-constructed schedulers — tests, tools —
    # working without a registry).
    _m_decisions = None
    _m_idles = None

    def select(self, candidates, controller, now):
        """Pick one of ``candidates`` to issue at DRAM cycle ``now``."""
        raise NotImplementedError

    # -- determinism chain ---------------------------------------------------

    def det_state(self) -> tuple[int, ...] | list[int]:
        """Architectural decision-state words for the determinism chain.

        Stateless policies return nothing; schedulers whose future
        decisions depend on accumulated state (batches, quanta, service
        histories) override this so a divergence in that state is caught
        at the next chain sample rather than at the next visible
        reordering.  Values must be ints, constant while the channel is
        quiescent, and independent of fast-forwarding.
        """
        return ()

    @staticmethod
    def _float_bits(value: float) -> int:
        """IEEE-754 bit pattern of a float, so real-valued policy state
        folds into the integer hash-chain without rounding ambiguity."""
        return int.from_bytes(struct.pack("<d", value), "little")

    # -- telemetry ----------------------------------------------------------

    def register_metrics(self, registry, prefix: str) -> None:
        """Register decision counters under ``prefix`` (called per channel)."""
        self._m_decisions = registry.counter(f"{prefix}.decisions")
        self._m_idles = registry.counter(f"{prefix}.idles")

    def note_decision(self, chosen) -> None:
        """Controller callback: one :meth:`select` outcome (None = idled)."""
        if self._m_decisions is None:
            return
        if chosen is None:
            self._m_idles.add()
        else:
            self._m_decisions.add()

    # -- open-page precharge policy -----------------------------------------

    def pre_admissible(self, cand, controller) -> bool:
        """May this PRECHARGE candidate be issued under this policy?

        The default open-page rule: never close a row that still has
        queued hits, and let a row idle a little before closing it for a
        conflict.  Criticality-aware schedulers relax this for urgent
        conflicts.
        """
        if cand.kind != CommandKind.PRECHARGE:
            return True
        if cand.blocked_by_hits:
            return False
        return cand.row_idle >= controller.config.row_idle_precharge_cycles

    def admissible(self, candidates, controller):
        """Filter candidates through :meth:`pre_admissible`."""
        return [c for c in candidates if self.pre_admissible(c, controller)]

    def on_enqueue(self, txn, now) -> None:
        """A transaction entered this channel's queue."""

    def on_command(self, cmd: CandidateCommand, now) -> None:
        """A command (possibly chosen by us) was issued."""

    @staticmethod
    def oldest(candidates):
        """The candidate whose transaction arrived first (FCFS tiebreak)."""
        return min(candidates, key=lambda c: c.txn.seq)
