"""TCM+MaxStallTime (paper Section 5.8.2).

Keeps TCM's thread rank as the primary priority; where TCM would fall back
to FR-FCFS (within a rank), this scheduler applies criticality-aware
CASRAS-Crit instead — the proposed best-of-both-worlds combination for
high-contention systems.
"""

from __future__ import annotations

from repro.sched.tcm import TcmScheduler

_PROMOTED_MAGNITUDE = 1 << 28


class TcmCritScheduler(TcmScheduler):
    """TCM clustering with a criticality-aware intra-rank policy."""

    name = "tcm+crit"

    def __init__(self, starvation_cap: int = 6000, **tcm_kwargs):
        super().__init__(**tcm_kwargs)
        self.starvation_cap = starvation_cap

    def pre_admissible(self, cand, controller) -> bool:
        from repro.dram.command import CommandKind

        if cand.kind != CommandKind.PRECHARGE:
            return True
        if cand.txn is not None and cand.txn.critical and not cand.hit_is_critical:
            return True
        if cand.blocked_by_hits:
            return False
        return cand.row_idle >= controller.config.row_idle_precharge_cycles

    def _key(self, cand, now):
        txn = cand.txn
        if not txn.is_write and now - txn.arrival > self.starvation_cap:
            urgency = _PROMOTED_MAGNITUDE
        elif txn.critical:
            urgency = max(1, txn.magnitude)
        else:
            urgency = 0
        return (self._thread_rank(txn.core), not cand.is_cas, -urgency, txn.seq)
