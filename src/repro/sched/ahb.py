"""Adaptive History-Based scheduler (Hur & Lin, MICRO 2004).

AHB keeps a short history of recently scheduled commands and picks the next
command expected to incur the least delay given that history — penalising
back-to-back data-bus rank switches (tRTRS) and read/write turnarounds
(tWTR), while steering the issued read/write mix toward the mix arriving
from the processors.  The original uses several pre-built history-based
FSM arbiters and adaptively switches between them; we implement the
equivalent cost function directly, which reproduces its scheduling
behaviour without hand-enumerating FSM states.

Designed for DDR2-era systems; the paper (Section 5.8) finds it gains
little on high-speed DDR3 — the behaviour this model reproduces.
"""

from __future__ import annotations

from collections import deque

from repro.dram.command import CommandKind
from repro.sched.base import Scheduler


class AhbScheduler(Scheduler):
    """History-based cost minimisation over ready commands."""

    name = "ahb"

    #: Cost weights (relative magnitudes follow the DDR turnaround costs).
    RANK_SWITCH_COST = 4
    RW_SWITCH_COST = 6
    MIX_DEVIATION_COST = 3

    def __init__(self, history_length: int = 3):
        self.history: deque = deque(maxlen=history_length)
        # Arrival and issue read/write accounting for mix matching.
        self._arrived = {"read": 1, "write": 1}
        self._issued = {"read": 1, "write": 1}

    def on_enqueue(self, txn, now) -> None:
        self._arrived["write" if txn.is_write else "read"] += 1

    def _mix_error(self, is_write: bool) -> float:
        """How far issuing this command pushes the issued mix from the
        arriving mix (0 = converging, 1 = diverging)."""
        arrived_w = self._arrived["write"] / (
            self._arrived["read"] + self._arrived["write"]
        )
        issued = dict(self._issued)
        issued["write" if is_write else "read"] += 1
        issued_w = issued["write"] / (issued["read"] + issued["write"])
        return abs(issued_w - arrived_w)

    def _cost(self, cand) -> float:
        cost = 0.0
        if cand.is_cas:
            is_write = cand.kind == CommandKind.WRITE
            for prev_rank, prev_write in self.history:
                if prev_rank != cand.rank:
                    cost += self.RANK_SWITCH_COST / len(self.history)
                if prev_write != is_write:
                    cost += self.RW_SWITCH_COST / len(self.history)
            cost += self.MIX_DEVIATION_COST * self._mix_error(is_write)
        else:
            # Row commands cost a fixed amount more than any CAS, so CAS
            # retains FR-FCFS-like precedence.
            cost += 100.0
        return cost

    def select(self, candidates, controller, now):
        candidates = self.admissible(candidates, controller)
        best = None
        best_key = None
        for cand in candidates:
            key = (self._cost(cand), cand.txn.seq)
            if best is None or key < best_key:
                best = cand
                best_key = key
        return best

    def on_command(self, cmd, now) -> None:
        if cmd.is_cas:
            is_write = cmd.kind == CommandKind.WRITE
            self.history.append((cmd.rank, is_write))
            self._issued["write" if is_write else "read"] += 1

    def det_state(self):
        values = [
            self._arrived["read"], self._arrived["write"],
            self._issued["read"], self._issued["write"],
        ]
        for rank, is_write in self.history:
            values += (rank, 1 if is_write else 0)
        return values
