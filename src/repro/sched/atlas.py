"""ATLAS: Adaptive per-Thread Least-Attained-Service scheduling
(Kim et al., HPCA 2010) — cited by the paper among the fairness-oriented
multiprogrammed schedulers.

Threads accumulate *attained service* (DRAM data-bus time consumed); the
scheduler prioritises the thread with the least attained service, ranked
over long quanta with exponential decay so short-term bursts don't flip
the ordering.  Within a thread: row hits first, then age.
"""

from __future__ import annotations

from repro.dram.command import CommandKind
from repro.sched.base import Scheduler


class AtlasScheduler(Scheduler):
    """Least-attained-service thread ranking."""

    name = "atlas"

    def __init__(self, quantum: int = 10_000, decay: float = 0.875,
                 threads: int = 8):
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.quantum = quantum
        self.decay = decay
        self.threads = threads
        self._service = [0.0] * threads
        self._quantum_service = [0.0] * threads
        self._next_quantum = quantum
        self.quanta = 0

    def _tick(self, now: int) -> None:
        if now >= self._next_quantum:
            for core in range(self.threads):
                self._service[core] = (
                    self.decay * self._service[core]
                    + (1.0 - self.decay) * self._quantum_service[core]
                )
            self._quantum_service = [0.0] * self.threads
            self._next_quantum = now + self.quantum
            self.quanta += 1

    def on_command(self, cmd, now) -> None:
        if cmd.is_cas and cmd.txn is not None and 0 <= cmd.txn.core < self.threads:
            # One burst of data-bus time attained.
            self._quantum_service[cmd.txn.core] += 1.0

    def det_state(self):
        values = [self.quanta, self._next_quantum]
        for service in self._service:
            values.append(self._float_bits(service))
        for service in self._quantum_service:
            values.append(self._float_bits(service))
        return values

    def _rank(self, core: int) -> float:
        if not 0 <= core < self.threads:
            return float("inf")
        return self._service[core] + self._quantum_service[core]

    def select(self, candidates, controller, now):
        candidates = self.admissible(candidates, controller)
        self._tick(now)
        best = None
        best_key = None
        for cand in candidates:
            key = (self._rank(cand.txn.core), not cand.is_cas, cand.txn.seq)
            if best is None or key < best_key:
                best = cand
                best_key = key
        return best
