"""Memory schedulers: the baseline, the paper's proposal, and comparators.

``SCHEDULERS`` / ``make_scheduler_factory`` are resolved lazily: the
registry imports the criticality schedulers from :mod:`repro.core`, which
itself depends on :mod:`repro.sched.base`, so an eager import here would be
circular.
"""

from repro.sched.base import Scheduler
from repro.sched.fcfs import FcfsScheduler
from repro.sched.frfcfs import FrFcfsScheduler

__all__ = [
    "FcfsScheduler",
    "FrFcfsScheduler",
    "SCHEDULERS",
    "Scheduler",
    "make_scheduler_factory",
]


def __getattr__(name):
    if name in ("SCHEDULERS", "make_scheduler_factory"):
        from repro.sched import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
