"""System configuration objects.

Every structural or timing parameter from the paper's Tables 1 and 3 lives
here, so experiments can express "the Table 1/Table 3 machine" as a default
and sweep individual parameters (ranks, memory speed, load-queue size)
without touching simulator code.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

#: Unit-bearing aliases.  At runtime these are plain ``int``/``float``;
#: their value is that the semantic analyzer
#: (:mod:`repro.analysis.semantic.domains`) treats any attribute
#: annotated with one as ground truth for the cycle-domain pass, so a
#: renamed or newly added timing field keeps its clock without anyone
#: editing the analyzer's seed tables.
DramCycles = int
CpuCycles = int
Nanos = float


@dataclass(frozen=True)
class DramTimings:
    """DDR3 timing parameters, in DRAM command-clock cycles.

    Field names follow the Micron datasheet / paper Table 3 notation.
    ``data_rate_mtps`` is the DDR transfer rate (e.g. 2133 MT/s); the command
    clock runs at half that.
    """

    name: str
    data_rate_mtps: int
    tRCD: DramCycles
    tCL: DramCycles
    tWL: DramCycles
    tCCD: DramCycles
    tWTR: DramCycles
    tWR: DramCycles
    tRTP: DramCycles
    tRP: DramCycles
    tRRD: DramCycles
    tRTRS: DramCycles
    tRAS: DramCycles
    tRC: DramCycles
    tRFC: DramCycles
    burst_length: int = 8
    # 8,192 refresh commands every 64 ms (paper Table 3) => one REF per
    # 64 ms / 8192 = 7.8125 us.  Expressed in DRAM cycles at build time.
    refresh_interval_us: Nanos = 7.8125
    #: Four-activate window: at most four ACTIVATEs to a rank within any
    #: rolling ``tFAW`` cycles.  ``None`` derives ``4 * tRRD`` — the
    #: loosest JEDEC-legal value, under which tRRD spacing alone already
    #: satisfies the window; datasheets with a tighter power budget set
    #: it explicitly.
    tFAW: DramCycles | None = None

    @property
    def clock_mhz(self) -> float:
        """Command-clock frequency in MHz (half the DDR data rate)."""
        return self.data_rate_mtps / 2.0

    @property
    def burst_cycles(self) -> DramCycles:
        """Data-bus occupancy of one burst, in command-clock cycles."""
        return self.burst_length // 2

    @property
    def refresh_interval_cycles(self) -> DramCycles:
        """DRAM cycles between successive REF commands (tREFI)."""
        return int(self.refresh_interval_us * self.clock_mhz)

    @property
    def effective_tFAW(self) -> DramCycles:
        """Four-activate window in DRAM cycles (derived when unset)."""
        return self.tFAW if self.tFAW is not None else 4 * self.tRRD


#: Paper Table 3: Micron DDR3-2133 (MT41J128M8).
DDR3_2133 = DramTimings(
    name="DDR3-2133",
    data_rate_mtps=2133,
    tRCD=14,
    tCL=14,
    tWL=7,
    tCCD=4,
    tWTR=8,
    tWR=16,
    tRTP=8,
    tRP=14,
    tRRD=6,
    tRTRS=2,
    tRAS=36,
    tRC=50,
    tRFC=118,
)

#: DDR3-1600 device used by the Section 5.6 rank sweep.
DDR3_1600 = DramTimings(
    name="DDR3-1600",
    data_rate_mtps=1600,
    tRCD=11,
    tCL=11,
    tWL=8,
    tCCD=4,
    tWTR=6,
    tWR=12,
    tRTP=6,
    tRP=11,
    tRRD=5,
    tRTRS=2,
    tRAS=28,
    tRC=39,
    tRFC=88,
)

#: DDR3-1066 device mentioned in Sections 4 and 5.8.1.
DDR3_1066 = DramTimings(
    name="DDR3-1066",
    data_rate_mtps=1066,
    tRCD=7,
    tCL=7,
    tWL=6,
    tCCD=4,
    tWTR=4,
    tWR=8,
    tRTP=4,
    tRP=7,
    tRRD=4,
    tRTRS=2,
    tRAS=20,
    tRC=27,
    tRFC=59,
)


@dataclass(frozen=True)
class DramConfig:
    """Geometry and policy of the DRAM subsystem (paper Table 3)."""

    timings: DramTimings = DDR3_2133
    channels: int = 4
    ranks_per_channel: int = 4
    banks_per_rank: int = 8
    row_buffer_bytes: int = 1024
    rows_per_bank: int = 16384
    transaction_queue_entries: int = 64
    #: Non-critical requests older than this many DRAM cycles are promoted
    #: (Section 3.2 starvation cap).
    starvation_cap_dram_cycles: int = 6000
    #: CPU clock cycles per DRAM command-clock cycle.  None derives it
    #: from the device clock and the 4.27 GHz core clock (DDR3-2133 -> 4,
    #: DDR3-1600 -> 5, DDR3-1066 -> 8), so that slower devices really are
    #: slower in CPU time.
    cpu_cycles_per_dram_cycle: int | None = None

    @property
    def cpu_ratio(self) -> int:
        if self.cpu_cycles_per_dram_cycle is not None:
            return self.cpu_cycles_per_dram_cycle
        return max(1, round(4270.0 / self.timings.clock_mhz))
    #: Open-page policy: a conflicting request may only precharge a row
    #: that has been idle this many DRAM cycles (protects in-flight
    #: row-hit trains from eager precharges between member arrivals).
    row_idle_precharge_cycles: int = 12
    #: Paper-faithful transaction queue: writes compete with reads under
    #: the scheduler's normal policy (the 2013-era single 64-entry
    #: transaction queue).  False switches to a modern buffered
    #: write-drain design (writes only drain in batches), which weakens
    #: criticality scheduling's read-over-write advantage.
    unified_queue: bool = True

    def scaled(self, **changes) -> "DramConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (paper Table 1)."""

    frequency_ghz: float = 4.27
    fetch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_entries: int = 128
    load_queue_entries: int = 32
    store_queue_entries: int = 32
    int_units: int = 2
    fp_units: int = 2
    load_ports: int = 2
    store_ports: int = 2
    branch_units: int = 2
    int_latency: int = 1
    fp_latency: int = 3
    branch_latency: int = 1
    branch_mispredict_penalty: int = 9

    def scaled(self, **changes) -> "CoreConfig":
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class CacheConfig:
    """One cache level's geometry and latency."""

    size_bytes: int
    line_bytes: int
    ways: int
    round_trip_latency: int
    mshr_entries: int

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


#: Paper Table 1: 32 kB, 32 B lines, 4-way dL1, 3-cycle round trip.
L1D_DEFAULT = CacheConfig(
    size_bytes=32 * 1024, line_bytes=32, ways=4, round_trip_latency=3, mshr_entries=16
)

#: Paper Table 3: 4 MB, 64 B lines, 8-way shared L2, 32-cycle round trip.
L2_DEFAULT = CacheConfig(
    size_bytes=4 * 1024 * 1024, line_bytes=64, ways=8, round_trip_latency=32, mshr_entries=64
)


@dataclass(frozen=True)
class PrefetcherConfig:
    """L2 stream prefetcher (Section 5.5): 64 streams, distance 64, degree 4."""

    enabled: bool = False
    streams: int = 64
    distance: int = 64
    degree: int = 4


@dataclass(frozen=True)
class SystemConfig:
    """The whole simulated machine."""

    cores: int = 8
    core: CoreConfig = CoreConfig()
    l1d: CacheConfig = L1D_DEFAULT
    l2: CacheConfig = L2_DEFAULT
    dram: DramConfig = DramConfig()
    prefetcher: PrefetcherConfig = PrefetcherConfig()

    def scaled(self, **changes) -> "SystemConfig":
        return dataclasses.replace(self, **changes)

    @staticmethod
    def parallel_default() -> "SystemConfig":
        """8 cores, 4 channels: the parallel-workload machine."""
        return SystemConfig()

    @staticmethod
    def multiprogrammed_default() -> "SystemConfig":
        """4 cores, 2 channels, halved L2 MSHRs (Section 5.8.2)."""
        return SystemConfig(
            cores=4,
            dram=DramConfig(channels=2),
            l2=dataclasses.replace(L2_DEFAULT, mshr_entries=32),
        )


@dataclass(frozen=True)
class SimScale:
    """Knobs trading fidelity for run time.

    The paper simulates 5x10^8 instructions per core; a pure-Python model
    cannot.  ``instructions_per_core`` is the trace length each core runs to
    completion; ``warmup_instructions`` are executed but excluded from
    statistics.
    """

    instructions_per_core: int = 20_000
    warmup_instructions: int = 2_000
    seed: int = 1

    def scaled(self, **changes) -> "SimScale":
        return dataclasses.replace(self, **changes)


#: A very small scale for unit tests.
TINY_SCALE = SimScale(instructions_per_core=1_500, warmup_instructions=200)

#: Default scale for examples and benchmarks.
DEFAULT_SCALE = SimScale()
