"""repro: reproduction of "Improving Memory Scheduling via Processor-Side
Load Criticality Information" (Ghose, Lee & Martínez, ISCA 2013).

Public API quick tour::

    from repro import (
        SystemConfig, SimScale,
        run_parallel_workload, speedup,
    )

    base = run_parallel_workload("fft", scheduler="fr-fcfs")
    crit = run_parallel_workload(
        "fft", scheduler="casras-crit",
        provider_spec=("cbp", {"entries": 64}),
    )
    print(speedup(base, crit))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.config import (
    DDR3_1066,
    DDR3_1600,
    DDR3_2133,
    DEFAULT_SCALE,
    TINY_SCALE,
    CacheConfig,
    CoreConfig,
    DramConfig,
    DramTimings,
    PrefetcherConfig,
    SimScale,
    SystemConfig,
)
from repro.core import (
    CasRasCritScheduler,
    CbpMetric,
    CbpProvider,
    ClptProvider,
    CommitBlockPredictor,
    CritCasRasScheduler,
    CriticalLoadPredictionTable,
    NaiveForwardingProvider,
)
from repro.sched import SCHEDULERS, make_scheduler_factory
from repro.sim import System
from repro.sim.engine import RunSpec, run_many, run_one, run_one_cached
from repro.sim.runner import (
    parallel_average_speedup,
    run_application_alone,
    run_multiprogrammed_workload,
    run_parallel_workload,
)
from repro.sim.stats import (
    SimResult,
    maximum_slowdown,
    result_fingerprint,
    speedup,
    weighted_speedup,
)
from repro.workloads import BUNDLES, PARALLEL_APP_NAMES

__version__ = "1.0.0"

__all__ = [
    "BUNDLES",
    "CacheConfig",
    "CasRasCritScheduler",
    "CbpMetric",
    "CbpProvider",
    "ClptProvider",
    "CommitBlockPredictor",
    "CoreConfig",
    "CritCasRasScheduler",
    "CriticalLoadPredictionTable",
    "DDR3_1066",
    "DDR3_1600",
    "DDR3_2133",
    "DEFAULT_SCALE",
    "DramConfig",
    "DramTimings",
    "NaiveForwardingProvider",
    "PARALLEL_APP_NAMES",
    "PrefetcherConfig",
    "RunSpec",
    "SCHEDULERS",
    "SimResult",
    "SimScale",
    "System",
    "SystemConfig",
    "TINY_SCALE",
    "make_scheduler_factory",
    "maximum_slowdown",
    "parallel_average_speedup",
    "result_fingerprint",
    "run_application_alone",
    "run_many",
    "run_multiprogrammed_workload",
    "run_one",
    "run_one_cached",
    "run_parallel_workload",
    "speedup",
    "weighted_speedup",
]
