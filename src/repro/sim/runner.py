"""Convenience runners used by examples, tests, and every experiment."""

from __future__ import annotations

from repro.config import DEFAULT_SCALE, SimScale, SystemConfig
from repro.sim.stats import SimResult, speedup
from repro.sim.system import System
from repro.workloads.multiprog import BUNDLES, bundle_traces
from repro.workloads.parallel import parallel_traces

#: Safety cap: a run exceeding this many cycles per trace instruction is
#: treated as a livelock and aborted (surfaces as ``hit_max_cycles``).
_CYCLE_BUDGET_PER_INSTRUCTION = 60


def _max_cycles(scale: SimScale) -> int:
    total = scale.instructions_per_core + scale.warmup_instructions
    return max(200_000, total * _CYCLE_BUDGET_PER_INSTRUCTION)


def run_parallel_workload(
    app: str,
    scheduler: str = "fr-fcfs",
    provider_spec=None,
    config: SystemConfig | None = None,
    scale: SimScale = DEFAULT_SCALE,
    scheduler_kwargs: dict | None = None,
    label: str | None = None,
) -> SimResult:
    """Run one Table 2 parallel app (8 threads) on the Table 1/3 machine."""
    config = config or SystemConfig.parallel_default()
    instructions = scale.instructions_per_core + scale.warmup_instructions
    traces = parallel_traces(app, config.cores, instructions, seed=scale.seed)
    system = System(
        config,
        traces,
        scheduler=scheduler,
        scheduler_kwargs=scheduler_kwargs,
        provider_spec=provider_spec,
        label=label or f"{app}/{scheduler}",
    )
    return system.run(max_cycles=_max_cycles(scale))


def run_multiprogrammed_workload(
    bundle: str,
    scheduler: str = "par-bs",
    provider_spec=None,
    config: SystemConfig | None = None,
    scale: SimScale = DEFAULT_SCALE,
    scheduler_kwargs: dict | None = None,
    label: str | None = None,
) -> SimResult:
    """Run one Table 4 bundle on the 4-core, 2-channel machine."""
    config = config or SystemConfig.multiprogrammed_default()
    instructions = scale.instructions_per_core + scale.warmup_instructions
    traces = bundle_traces(bundle, instructions, seed=scale.seed)
    system = System(
        config,
        traces,
        scheduler=scheduler,
        scheduler_kwargs=scheduler_kwargs,
        provider_spec=provider_spec,
        label=label or f"{bundle}/{scheduler}",
    )
    return system.run(max_cycles=_max_cycles(scale))


def run_application_alone(
    bundle: str,
    slot: int,
    scheduler: str = "par-bs",
    config: SystemConfig | None = None,
    scale: SimScale = DEFAULT_SCALE,
) -> SimResult:
    """One bundle application running alone (weighted-speedup denominator).

    The other cores execute empty traces, so the application has the whole
    memory system to itself — the paper's "executing alone in the baseline
    PAR-BS configuration".
    """
    from repro.cpu.instruction import Trace

    config = config or SystemConfig.multiprogrammed_default()
    instructions = scale.instructions_per_core + scale.warmup_instructions
    traces = bundle_traces(bundle, instructions, seed=scale.seed)
    solo = []
    for core in range(config.cores):
        solo.append(traces[core] if core == slot else Trace(name="idle"))
    system = System(
        config, solo, scheduler=scheduler, label=f"{bundle}[{slot}]/alone"
    )
    return system.run(max_cycles=_max_cycles(scale))


def parallel_average_speedup(
    apps,
    scheduler: str,
    provider_spec=None,
    config: SystemConfig | None = None,
    baseline_config: SystemConfig | None = None,
    scale: SimScale = DEFAULT_SCALE,
    scheduler_kwargs: dict | None = None,
    baseline_scheduler: str = "fr-fcfs",
) -> dict:
    """Per-app and average speedups of a configuration over a baseline."""
    per_app = {}
    for app in apps:
        base = run_parallel_workload(
            app, baseline_scheduler, None, baseline_config or config, scale
        )
        conf = run_parallel_workload(
            app, scheduler, provider_spec, config, scale, scheduler_kwargs
        )
        per_app[app] = speedup(base, conf)
    avg = sum(per_app.values()) / len(per_app) if per_app else 0.0
    return {"per_app": per_app, "average": avg}
