"""Convenience runners used by examples, tests, and every experiment.

Environment knobs (also settable via ``python -m repro`` flags):

* ``REPRO_ENGINE``        — loop implementation: ``naive`` (cycle by
  cycle), ``fast`` (skip windows), or ``event`` (wake heap; default);
* ``REPRO_NO_SKIP=1``     — force the cycle-by-cycle loop (no fast-forward);
* ``REPRO_VERIFY_SKIP=1`` — run every simulation twice (the selected
  engine plus a reference engine) and assert bit-identical results.
"""

from __future__ import annotations

import os

from repro.config import DEFAULT_SCALE, SimScale, SystemConfig
from repro.sim.stats import SimResult, result_fingerprint, speedup
from repro.sim.system import System
from repro.util import hostclock
from repro.workloads.multiprog import BUNDLES, bundle_traces
from repro.workloads.parallel import parallel_traces

#: Safety cap: a run exceeding this many cycles per trace instruction is
#: treated as a livelock and aborted (surfaces as ``hit_max_cycles``).
_CYCLE_BUDGET_PER_INSTRUCTION = 60


def _max_cycles(scale: SimScale) -> int:
    total = scale.instructions_per_core + scale.warmup_instructions
    return max(200_000, total * _CYCLE_BUDGET_PER_INSTRUCTION)


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0")


def _resolve_engine() -> str:
    """The loop implementation the env knobs select for this run."""
    if _env_flag("REPRO_NO_SKIP"):
        return "naive"
    from repro.sim.system import System

    return System.resolve_engine(None)


def _run_system(make_system, max_cycles: int) -> SimResult:
    """Run a system built by ``make_system()``, honouring the env knobs.

    Wall-clock time is recorded on the result; with ``REPRO_VERIFY_SKIP``
    a second system is built and run on a reference engine (``naive``
    unless that is the engine under test, then ``fast``) and the two
    results are cross-checked for bit-identity.
    """
    engine = _resolve_engine()
    # Wall-clock observability only (the sanctioned host clock): never
    # feeds back into simulated state.
    start = hostclock.now()
    result = make_system().run(max_cycles=max_cycles, engine=engine)
    result.wall_seconds = hostclock.now() - start
    if _env_flag("REPRO_VERIFY_SKIP"):
        reference = "naive" if engine != "naive" else "fast"
        # The cross-check run must not clobber the primary run's streamed
        # telemetry (its stream would be bit-identical anyway — that is
        # the point of the check — but rewriting it would confuse a live
        # `repro watch` tailing the directory), and must not register a
        # second phantom run in the fleet registry.
        saved_stream = os.environ.pop("REPRO_STREAM_DIR", None)
        saved_fleet = os.environ.pop("REPRO_FLEET_DIR", None)
        try:
            other = make_system().run(
                max_cycles=max_cycles, engine=reference
            )
        finally:
            if saved_stream is not None:
                os.environ["REPRO_STREAM_DIR"] = saved_stream
            if saved_fleet is not None:
                os.environ["REPRO_FLEET_DIR"] = saved_fleet
        if result_fingerprint(result) != result_fingerprint(other):
            from repro.analysis.detchain import first_divergence

            where = first_divergence(
                result.det_checkpoints, other.det_checkpoints
            )
            location = (
                f" (determinism chain first diverges at cycle {where['cycle']})"
                if where
                else " (determinism chains agree; divergence is in statistics)"
            )
            raise AssertionError(
                f"the {engine!r} loop diverged from the {reference!r} "
                f"loop for {result.label!r}{location}"
            )
    return result


def run_parallel_workload(
    app: str,
    scheduler: str = "fr-fcfs",
    provider_spec=None,
    config: SystemConfig | None = None,
    scale: SimScale = DEFAULT_SCALE,
    scheduler_kwargs: dict | None = None,
    label: str | None = None,
) -> SimResult:
    """Run one Table 2 parallel app (8 threads) on the Table 1/3 machine."""
    config = config or SystemConfig.parallel_default()
    instructions = scale.instructions_per_core + scale.warmup_instructions
    traces = parallel_traces(app, config.cores, instructions, seed=scale.seed)
    return _run_system(
        lambda: System(
            config,
            traces,
            scheduler=scheduler,
            scheduler_kwargs=scheduler_kwargs,
            provider_spec=provider_spec,
            label=label or f"{app}/{scheduler}",
        ),
        _max_cycles(scale),
    )


def run_multiprogrammed_workload(
    bundle: str,
    scheduler: str = "par-bs",
    provider_spec=None,
    config: SystemConfig | None = None,
    scale: SimScale = DEFAULT_SCALE,
    scheduler_kwargs: dict | None = None,
    label: str | None = None,
) -> SimResult:
    """Run one Table 4 bundle on the 4-core, 2-channel machine."""
    config = config or SystemConfig.multiprogrammed_default()
    instructions = scale.instructions_per_core + scale.warmup_instructions
    traces = bundle_traces(bundle, instructions, seed=scale.seed)
    return _run_system(
        lambda: System(
            config,
            traces,
            scheduler=scheduler,
            scheduler_kwargs=scheduler_kwargs,
            provider_spec=provider_spec,
            label=label or f"{bundle}/{scheduler}",
        ),
        _max_cycles(scale),
    )


def run_application_alone(
    bundle: str,
    slot: int,
    scheduler: str = "par-bs",
    config: SystemConfig | None = None,
    scale: SimScale = DEFAULT_SCALE,
    provider_spec=None,
    scheduler_kwargs: dict | None = None,
    label: str | None = None,
) -> SimResult:
    """One bundle application running alone (weighted-speedup denominator).

    The other cores execute empty traces, so the application has the whole
    memory system to itself — the paper's "executing alone in the baseline
    PAR-BS configuration".  The provider and scheduler kwargs must match the
    shared run being normalised, otherwise the alone baseline is simulated
    on a different machine than the one under test.
    """
    from repro.cpu.instruction import Trace

    config = config or SystemConfig.multiprogrammed_default()
    instructions = scale.instructions_per_core + scale.warmup_instructions
    traces = bundle_traces(bundle, instructions, seed=scale.seed)
    solo = []
    for core in range(config.cores):
        solo.append(traces[core] if core == slot else Trace(name="idle"))
    return _run_system(
        lambda: System(
            config,
            solo,
            scheduler=scheduler,
            scheduler_kwargs=scheduler_kwargs,
            provider_spec=provider_spec,
            label=label or f"{bundle}[{slot}]/alone",
        ),
        _max_cycles(scale),
    )


def parallel_average_speedup(
    apps,
    scheduler: str,
    provider_spec=None,
    config: SystemConfig | None = None,
    baseline_config: SystemConfig | None = None,
    scale: SimScale = DEFAULT_SCALE,
    scheduler_kwargs: dict | None = None,
    baseline_scheduler: str = "fr-fcfs",
) -> dict:
    """Per-app and average speedups of a configuration over a baseline.

    Runs fan out over the engine's worker pool and disk cache
    (:mod:`repro.sim.engine`), so repeated sweeps only pay for what
    changed.
    """
    from repro.sim.engine import RunSpec, run_many

    apps = list(apps)
    specs = []
    for app in apps:
        specs.append(
            RunSpec(
                kind="parallel",
                workload=app,
                scheduler=baseline_scheduler,
                config=baseline_config or config,
                scale=scale,
            )
        )
        specs.append(
            RunSpec(
                kind="parallel",
                workload=app,
                scheduler=scheduler,
                provider_spec=provider_spec,
                config=config,
                scale=scale,
                scheduler_kwargs=scheduler_kwargs,
            )
        )
    results = run_many(specs)
    per_app = {
        app: speedup(results[2 * i], results[2 * i + 1])
        for i, app in enumerate(apps)
    }
    avg = sum(per_app.values()) / len(per_app) if per_app else 0.0
    return {"per_app": per_app, "average": avg}
