"""Parallel, disk-cached experiment engine.

One simulation = one :class:`RunSpec`.  ``run_many`` deduplicates specs,
satisfies what it can from the on-disk result cache, and fans the misses
out over a pool of worker processes; ``run_one`` executes a single spec
in-process.  Every run records wall-clock observability on its result
(``SimResult.wall_seconds`` / ``cycles_per_second``) and in the module's
``last_metrics`` list.

Cache keys are content hashes: the canonical JSON of the spec (workload,
scheduler and kwargs, provider spec, full machine config, scale, slot)
plus a hash of the simulator's own source files, so editing the model
invalidates every cached result automatically.  The telemetry
configuration fingerprint (sampling interval, trace on/off and capacity)
is part of the key too: a run cached without sampling must not satisfy a
request that expects time-series on the result.  Since every loop
implementation (naive, fast, event) is bit-identical, the engine
selection (``RunSpec.engine`` / ``REPRO_ENGINE``) and the skip setting
are deliberately *not* part of the key — and neither is the telemetry
*streaming* configuration (``REPRO_STREAM_DIR`` / ``RunSpec.stream_dir``),
which only mirrors telemetry to disk.

Environment knobs:

* ``REPRO_CACHE_DIR``     — cache directory (default ``~/.cache/repro-sim``);
* ``REPRO_NO_CACHE=1``    — bypass the disk cache entirely;
* ``REPRO_JOBS``          — worker processes for ``run_many`` (default: CPUs);
* ``REPRO_CODE_VERSION``  — override the code-version hash (tests);
* ``REPRO_RUN_LOG``       — append one JSON line of metrics per run.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import DEFAULT_SCALE, SimScale, SystemConfig
from repro.sim.stats import SimResult
from repro.telemetry import config_fingerprint as _telemetry_fingerprint
from repro.util import atomicio

#: Per-run observability records (append-only): dicts with label, key,
#: source ("run" | "disk"), wall_s, cycles, and cycles_per_sec.  Clear
#: with :func:`clear_metrics` before a batch you want to inspect.
last_metrics: list[dict] = []


def clear_metrics() -> None:
    last_metrics.clear()


class UnportableSpec(ValueError):
    """The spec contains live objects (callables) that cannot be hashed or
    shipped to a worker process; it must run inline and uncached."""


@dataclass
class RunSpec:
    """Everything needed to reproduce one simulation run.

    ``stream_dir`` requests live telemetry streaming
    (:mod:`repro.telemetry.stream`) into that directory for this run.
    It is *not* part of the cache key — streaming changes where
    telemetry lands, never the simulated outcome — so a streamed run
    and an unstreamed run share a cache slot.  When the engine
    satisfies a streaming spec from the cache it writes a
    ``cache-replay`` marker manifest instead, so ``repro watch`` can
    explain why no stream is coming.

    ``engine`` pins the loop implementation (``naive``/``fast``/
    ``event``) for this run; ``None`` defers to ``REPRO_ENGINE`` and
    the default.  Like the skip setting, it is *not* part of the cache
    key: all engines produce bit-identical results, so they share one
    cache slot.
    """

    kind: str  # "parallel" | "bundle" | "alone"
    workload: str
    scheduler: str = "fr-fcfs"
    provider_spec: object = None
    config: SystemConfig | None = None
    scale: SimScale = field(default_factory=lambda: DEFAULT_SCALE)
    scheduler_kwargs: dict | None = None
    slot: int | None = None
    label: str | None = None
    stream_dir: str | None = None
    engine: str | None = None


# --------------------------------------------------------------- cache keys


def _canon(value):
    """Canonical JSON-ready form of a spec component (deterministic)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                f.name: _canon(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, dict):
        return {
            str(k): _canon(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise UnportableSpec(f"cannot canonicalise {value!r} for hashing")


_CODE_VERSION_CACHE: dict[str | None, str] = {}


def code_version() -> str:
    """Hash of the simulator's own source, part of every cache key."""
    override = os.environ.get("REPRO_CODE_VERSION")
    cached = _CODE_VERSION_CACHE.get(override)
    if cached is not None:
        return cached
    if override:
        version = override
    else:
        digest = hashlib.sha256()
        root = Path(__file__).resolve().parent.parent  # src/repro
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
        version = digest.hexdigest()[:16]
    _CODE_VERSION_CACHE[override] = version
    return version


def spec_key(spec: RunSpec) -> str:
    """Content hash identifying a spec's result.

    Raises :class:`UnportableSpec` when the spec embeds live objects (a
    callable provider spec, non-serialisable scheduler kwargs).
    """
    payload = json.dumps(
        {
            "kind": spec.kind,
            "workload": spec.workload,
            "scheduler": spec.scheduler,
            "provider_spec": _canon(spec.provider_spec),
            "config": _canon(spec.config),
            "scale": _canon(spec.scale),
            "scheduler_kwargs": _canon(spec.scheduler_kwargs or {}),
            "slot": spec.slot,
            "telemetry": _canon(_telemetry_fingerprint()),
            "code": code_version(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


# --------------------------------------------------------------- disk cache


def cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else Path.home() / ".cache" / "repro-sim"


def _cache_enabled(cache: bool | None) -> bool:
    if cache is not None:
        return cache
    return os.environ.get("REPRO_NO_CACHE", "") in ("", "0")


def cache_path(key: str) -> Path:
    return cache_dir() / f"{key}.pkl"


def load_cached(key: str) -> SimResult | None:
    path = cache_path(key)
    try:
        with open(path, "rb") as fh:
            result = pickle.load(fh)
    except Exception:
        return None  # missing or corrupt entry: treat as a miss
    return result if isinstance(result, SimResult) else None


def store_cached(key: str, result: SimResult) -> None:
    """Publish one result into the shared cache slot for ``key``.

    Concurrent sweeps (and ``run_many`` pools) race the same content
    hash; the atomic replace means the slot always holds one complete
    pickle — and since the payload is a pure function of the key, the
    bytes are identical whichever writer wins.
    """
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    atomicio.write_bytes(cache_path(key), _pickle_result(result))


def clear_disk_cache() -> int:
    """Delete every cached result; returns the number removed."""
    removed = 0
    directory = cache_dir()
    if directory.is_dir():
        for path in directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            # a locked file just stays behind, uncounted
            # repro-lint: disable=EXC002 best-effort cleanup
            except OSError:
                pass
    return removed


def _pickle_result(result: SimResult) -> bytes:
    """Pickle a result, shedding unpicklable run-time attachments."""
    for provider in result.providers:
        # NaiveForwardingProvider holds the event queue's schedule hook.
        if getattr(provider, "_defer", None) is not None:
            provider._defer = None
    try:
        return pickle.dumps(result)
    except Exception:
        return pickle.dumps(dataclasses.replace(result, providers=[]))


# ----------------------------------------------------------------- running


def run_one(spec: RunSpec) -> SimResult:
    """Execute one spec in-process (no caching).

    A spec with ``stream_dir`` or ``engine`` set exports it as
    ``REPRO_STREAM_DIR`` / ``REPRO_ENGINE`` for the duration of the run
    (restored afterwards), so those requests survive the trip through
    worker processes.
    """
    overrides = {}
    if spec.stream_dir is not None:
        overrides["REPRO_STREAM_DIR"] = spec.stream_dir
    if spec.engine is not None:
        overrides["REPRO_ENGINE"] = spec.engine
    if not overrides:
        return _dispatch(spec)
    saved = {name: os.environ.get(name) for name in overrides}
    os.environ.update(overrides)
    try:
        return _dispatch(spec)
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _dispatch(spec: RunSpec) -> SimResult:
    from repro.sim.runner import (
        run_application_alone,
        run_multiprogrammed_workload,
        run_parallel_workload,
    )

    if spec.kind == "parallel":
        return run_parallel_workload(
            spec.workload,
            spec.scheduler,
            spec.provider_spec,
            spec.config,
            spec.scale,
            spec.scheduler_kwargs,
            spec.label,
        )
    if spec.kind == "bundle":
        return run_multiprogrammed_workload(
            spec.workload,
            spec.scheduler,
            spec.provider_spec,
            spec.config,
            spec.scale,
            spec.scheduler_kwargs,
            spec.label,
        )
    if spec.kind == "alone":
        if spec.slot is None:
            raise ValueError("kind='alone' requires slot")
        return run_application_alone(
            spec.workload,
            spec.slot,
            spec.scheduler,
            spec.config,
            spec.scale,
            spec.provider_spec,
            spec.scheduler_kwargs,
            spec.label,
        )
    raise ValueError(f"unknown run kind {spec.kind!r}")


def _requested_stream_dir(spec: RunSpec) -> str | None:
    """Where this spec wants telemetry streamed, if anywhere."""
    return spec.stream_dir or os.environ.get("REPRO_STREAM_DIR") or None


def _mark_cache_replay(spec: RunSpec) -> None:
    """A cache hit streams nothing; leave a marker for `repro watch`."""
    directory = _requested_stream_dir(spec)
    if directory is not None:
        from repro.telemetry import stream as stream_mod

        stream_mod.write_cache_replay_manifest(
            directory, spec.label or spec.workload
        )


def run_one_cached(spec: RunSpec, cache: bool | None = None) -> SimResult:
    """``run_one`` behind the disk cache (serial path)."""
    try:
        key = spec_key(spec)
    except UnportableSpec:
        return run_one(spec)
    if _cache_enabled(cache):
        hit = load_cached(key)
        if hit is not None:
            _record(spec, key, hit, source="disk")
            _mark_cache_replay(spec)
            return hit
    result = run_one(spec)
    _record(spec, key, result, source="run")
    if _cache_enabled(cache):
        store_cached(key, result)
    return result


def _resolve_jobs(jobs: int | None) -> int:
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        jobs = int(env) if env else (os.cpu_count() or 1)
    return max(1, jobs)


def _pool_entry(item):
    key, spec = item
    result = run_one(spec)
    return key, pickle.loads(_pickle_result(result))


def run_many(
    specs, jobs: int | None = None, cache: bool | None = None
) -> list[SimResult]:
    """Run every spec, in parallel, deduplicated, through the disk cache.

    Returns results aligned with ``specs``.  Identical specs are simulated
    once; cache hits cost no simulation at all.  Specs that cannot be
    hashed/pickled (callable provider specs) run inline and uncached.
    """
    specs = list(specs)
    use_cache = _cache_enabled(cache)
    results: list[SimResult | None] = [None] * len(specs)
    metrics: list[dict] = []
    pending: dict[str, list[int]] = {}
    inline: list[int] = []

    for i, spec in enumerate(specs):
        try:
            key = spec_key(spec)
        except UnportableSpec:
            inline.append(i)
            continue
        if key in pending:
            pending[key].append(i)
            continue
        if use_cache:
            hit = load_cached(key)
            if hit is not None:
                results[i] = hit
                metrics.append(_metric(spec, key, hit, "disk"))
                _mark_cache_replay(spec)
                continue
        pending.setdefault(key, []).append(i)

    todo = list(pending.items())
    jobs = _resolve_jobs(jobs)
    if len(todo) > 1 and jobs > 1:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is not None:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(todo)), mp_context=context
            ) as pool:
                fresh = dict(
                    pool.map(
                        _pool_entry,
                        [(key, specs[idxs[0]]) for key, idxs in todo],
                    )
                )
        else:
            fresh = {
                key: run_one(specs[idxs[0]]) for key, idxs in todo
            }
    else:
        fresh = {key: run_one(specs[idxs[0]]) for key, idxs in todo}

    for key, indices in todo:
        result = fresh[key]
        metrics.append(_metric(specs[indices[0]], key, result, "run"))
        if use_cache:
            store_cached(key, result)
        for i in indices:
            results[i] = result
    for i in inline:
        result = run_one(specs[i])
        metrics.append(_metric(specs[i], None, result, "run"))
        results[i] = result

    last_metrics.extend(metrics)
    _write_run_log(metrics)
    return results


# ------------------------------------------------------- determinism checks


def verify_determinism(spec: RunSpec, subprocess: bool = True) -> dict:
    """Run ``spec`` on every engine and compare determinism hash-chains.

    The reference run uses the spec's engine (default: the resolved
    session engine, normally ``event``) in-process; it is compared
    against (a) each of the other loop implementations in-process and
    (b) the reference engine in a freshly forked worker process.
    Returns a report dict: ``ok``, the reference ``chain`` digest, and a
    ``runs`` list with each comparison's verdict and — on divergence —
    the earliest diverging checkpoint from
    :func:`repro.analysis.detchain.first_divergence`.
    """
    from repro.analysis.detchain import first_divergence
    from repro.sim.runner import _resolve_engine
    from repro.sim.stats import result_fingerprint

    ref_engine = spec.engine or _resolve_engine()
    reference = run_one(spec)
    comparisons: list[tuple[str, SimResult]] = []

    # REPRO_NO_SKIP would force every comparison run back to the naive
    # loop, making the cross-engine check vacuous; lift it while the
    # explicitly-pinned engines run.
    saved = os.environ.pop("REPRO_NO_SKIP", None)
    try:
        from repro.sim.system import ENGINES

        names = {
            "naive": "naive cycle-by-cycle loop",
            "fast": "fast-forwarding loop",
            "event": "event (wake-heap) loop",
            "batched": "batched (windowed) loop",
        }
        for engine in ENGINES:
            if engine == ref_engine:
                continue
            comparisons.append(
                (
                    names[engine],
                    run_one(dataclasses.replace(spec, engine=engine)),
                )
            )
    finally:
        if saved is not None:
            os.environ["REPRO_NO_SKIP"] = saved

    if subprocess:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is not None:
            with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
                comparisons.append(
                    ("fresh subprocess", pool.submit(run_one, spec).result())
                )

    report = {
        "label": reference.label,
        "engine": ref_engine,
        "chain": reference.det_chain,
        "cycles": reference.cycles,
        "ok": True,
        "runs": [],
    }
    for name, other in comparisons:
        matches = result_fingerprint(reference) == result_fingerprint(other)
        entry = {"name": name, "ok": matches, "chain": other.det_chain}
        if not matches:
            report["ok"] = False
            entry["first_divergence"] = first_divergence(
                reference.det_checkpoints, other.det_checkpoints
            )
        report["runs"].append(entry)
    return report


# ------------------------------------------------------------ observability


def _metric(spec: RunSpec, key: str | None, result: SimResult, source: str):
    return {
        "label": result.label or spec.workload,
        "key": key,
        "source": source,
        "wall_s": round(result.wall_seconds, 6),
        "cycles": result.cycles,
        "cycles_per_sec": round(result.cycles_per_second, 1),
    }


def _record(spec: RunSpec, key: str | None, result: SimResult, source: str):
    metric = _metric(spec, key, result, source)
    last_metrics.append(metric)
    _write_run_log([metric])


def _write_run_log(metrics) -> None:
    """Append per-run metrics to the shared ``REPRO_RUN_LOG`` JSONL file.

    Every worker of a concurrent sweep appends to the same log, so each
    record must land as a single ``O_APPEND`` write — a buffered
    append-mode file handle can flush mid-record and interleave partial
    lines with another process's writes.
    """
    path = os.environ.get("REPRO_RUN_LOG")
    if not path or not metrics:
        return
    try:
        atomicio.append_jsonl(path, metrics)
    # an unwritable metrics log must never fail the simulation it records
    # repro-lint: disable=EXC002 observability only
    except OSError:
        pass
