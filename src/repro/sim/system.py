"""System: cores + hierarchy + memory, and the global cycle loop.

Four loop implementations produce bit-identical results (same
determinism chain, result fingerprint, and streamed telemetry bytes):

* ``naive``   — the reference: step every component every cycle;
* ``fast``    — scan every core each cycle but fast-forward over windows
  where every core is quiescent and no event/DRAM edge has work;
* ``event``   — the default: a wake-driven core that visits only cycles
  where something can happen, tracking skipping cores in a wake heap
  and idle DRAM channels by registered wakes (see :meth:`_run_event`
  and DESIGN.md §5.4 for the identity argument);
* ``batched`` — the event loop plus model-level windowing: a single
  active core steps whole ready-windows in one call
  (:meth:`OutOfOrderCore.step_window`) and DRAM channels sleep through
  cycles at which no command can legally issue
  (:meth:`ChannelController.next_wake_window`), leaning on the
  batchability certificates (see :meth:`_run_batched` and DESIGN.md
  §5.8).

Select with ``System.run(engine=...)``, ``REPRO_ENGINE``, or the
``--engine`` CLI flag; ``REPRO_NO_SKIP=1`` forces ``naive``.
"""

from __future__ import annotations

import copy
import heapq
import os

from repro.analysis import detchain, effectcheck
from repro.config import SystemConfig
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.provider import CriticalityProvider, NullProvider
from repro.cpu.core import OutOfOrderCore
from repro.dram.controller import MemorySystem
from repro.sched.registry import make_scheduler_factory
from repro.sim.events import EventQueue
from repro.sim.stats import SimResult
from repro.telemetry import Telemetry
from repro.telemetry.perfcounters import PerfCounters
from repro.util import hostclock

# Sentinel "wake cycle" for cores quiescent until externally woken.
_FOREVER = 1 << 62

#: Every registered loop implementation, in reference-first order.  The
#: CLI, ``verify_determinism``, and ``profile --engines all`` enumerate
#: this tuple rather than hard-coding engine names.
ENGINES = ("naive", "fast", "event", "batched")


def make_provider_factory(spec):
    """Build a per-core criticality-provider factory from a spec.

    Specs:
        None or "null"            — no criticality (baseline machine).
        ("cbp", {...})            — :class:`CbpProvider` kwargs.
        ("clpt", {...})           — :class:`ClptProvider` kwargs.
        ("naive", {...})          — :class:`NaiveForwardingProvider` kwargs.
        callable                  — used directly as ``factory(core_id)``.
    """
    if spec is None or spec == "null":
        return lambda core_id: NullProvider()
    if callable(spec):
        return spec
    kind, kwargs = spec
    from repro.core.fields import FieldsLikeProvider
    from repro.core.provider import CbpProvider, ClptProvider, NaiveForwardingProvider

    classes = {
        "cbp": CbpProvider,
        "clpt": ClptProvider,
        "naive": NaiveForwardingProvider,
        "fields": FieldsLikeProvider,
    }
    try:
        cls = classes[kind]
    except KeyError:
        raise ValueError(f"unknown provider kind {kind!r}") from None
    # Deep-copy the kwargs per instantiation: the factory is called once
    # per core, and a provider that mutates a mutable kwarg (a list of
    # thresholds, a config dict) must not alias state across cores.
    return lambda core_id: cls(**copy.deepcopy(kwargs))


class System:
    """One simulated machine bound to one workload."""

    def __init__(
        self,
        config: SystemConfig,
        traces,
        scheduler: str = "fr-fcfs",
        scheduler_kwargs: dict | None = None,
        provider_spec=None,
        label: str | None = None,
    ):
        if len(traces) != config.cores:
            raise ValueError(
                f"need {config.cores} traces (one per core), got {len(traces)}"
            )
        self.config = config
        self.label = label or scheduler
        self.events = EventQueue()
        self.memory = MemorySystem(
            config.dram, make_scheduler_factory(scheduler, **(scheduler_kwargs or {}))
        )
        self.hierarchy = MemoryHierarchy(config, self.memory, self.events)
        self._now = 0
        self.hierarchy.bind_clock(lambda: self._now)
        self.hierarchy.bind_core_waker(
            lambda core_id: self.cores[core_id].wake_skip()
        )
        provider_factory = make_provider_factory(provider_spec)
        self.providers: list[CriticalityProvider] = [
            provider_factory(i) for i in range(config.cores)
        ]
        self.cores = [
            OutOfOrderCore(
                i, config.core, traces[i], self.hierarchy, self.providers[i], self.events
            )
            for i in range(config.cores)
        ]
        self._finish_cycles = [0] * config.cores
        for core_id, trace in enumerate(traces):
            ranges = getattr(trace, "prewarm", None)
            if ranges:
                self.hierarchy.prewarm(core_id, ranges)
        # Telemetry spine: every component registers its instruments into
        # one registry; the sampler and event trace attach only when their
        # environment knobs enable them (see repro.telemetry).
        self.telemetry = Telemetry.from_env()
        registry = self.telemetry.registry
        self.hierarchy.register_metrics(registry, "hier")
        for channel in self.memory.channels:
            channel.register_metrics(registry, f"chan{channel.channel_id}")
        for core in self.cores:
            core.register_metrics(registry, f"core{core.core_id}")
        self.telemetry.bind_sampler()
        recorder = self.telemetry.trace
        if recorder is not None:
            for core in self.cores:
                core.tracer = recorder
            for channel in self.memory.channels:
                channel.trace = recorder
            self.hierarchy.trace = recorder
        self.telemetry.begin_stream(self.label)
        # Host-side perf counters (REPRO_PERF=1, repro.telemetry.
        # perfcounters): counters on simulator internals, landing on the
        # SimResult.host_perf side channel.  None when disabled — the
        # loops then carry only `is not None` branches, no allocations.
        self.perf = PerfCounters.from_env()
        if self.perf is not None:
            self.memory._perf = self.perf
        # Purity-certificate cross-check (REPRO_VERIFY_EFFECTS=1): bracket
        # certified window-invariant hooks with det_state snapshots so an
        # undeclared mutation fails at the call, not as a later chain split.
        if effectcheck.enabled():
            effectcheck.instrument_system(self)

    @staticmethod
    def resolve_engine(engine: str | None, skip_cycles: bool = True) -> str:
        """Pick the loop implementation: explicit argument, then the
        ``REPRO_ENGINE`` environment knob, then the default (``event``).
        ``skip_cycles=False`` is the legacy spelling of ``naive``."""
        if engine is None:
            if not skip_cycles:
                return "naive"
            engine = os.environ.get("REPRO_ENGINE", "").strip() or "event"
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}: expected one of "
                + ", ".join(ENGINES)
            )
        return engine

    def run(
        self,
        max_cycles: int | None = None,
        skip_cycles: bool = True,
        engine: str | None = None,
    ) -> SimResult:
        """Run every core's trace to completion; returns the results.

        ``engine`` selects the loop implementation (see the module
        docstring); all three are bit-identical, so the choice only
        affects wall clock.  ``skip_cycles=False`` forces the plain
        cycle-by-cycle loop (the reference for the cross-check mode) and
        is equivalent to ``engine="naive"``.

        When a streaming writer is attached (``REPRO_STREAM_DIR``) the
        stream is finalized on success and aborted — torn tail removed,
        manifest marked ``failed`` — on any failure, so a crashed run
        never leaves an ambiguous half-written stream behind.
        """
        engine = self.resolve_engine(engine, skip_cycles)
        stream = self.telemetry.stream
        if stream is None:
            return self._dispatch(engine, max_cycles)
        try:
            result = self._dispatch(engine, max_cycles)
        except BaseException:
            stream.abort()
            raise
        stream.finalize(result.cycles, result.trace_dropped)
        return result

    def _dispatch(self, engine: str, max_cycles: int | None) -> SimResult:
        if engine == "event":
            return self._run_event(max_cycles)
        if engine == "batched":
            return self._run_batched(max_cycles)
        return self._run_impl(max_cycles, skip_cycles=(engine == "fast"))

    def _fold_telemetry(self, sampler, stream, limit: int) -> None:
        """Fold sampler and stream-flush points, interleaved on the
        virtual cycle axis.

        The naive loop reaches this once per cycle, so a sample at cycle
        P lands *before* a flush point at P seals the segment.  The
        skipping loop calls it with a whole quiescent window as
        ``limit``; stepping the two point streams in merged cycle order
        (sample first on ties) reproduces that per-cycle interleaving
        exactly, keeping streamed segment boundaries bit-identical
        across skip modes.
        """
        if stream is None:
            sampler.sample_upto(limit)
            return
        while True:
            next_s = sampler.next_sample if sampler is not None else _FOREVER
            point = min(next_s, stream.next_flush)
            if point >= limit:
                break
            if next_s == point:
                sampler.sample_upto(point + 1)
            if stream.next_flush <= point:
                stream.flush_upto(point + 1)
                if stream.next_flush <= point:
                    # A flush that does not advance the next flush point
                    # would spin this loop forever; surface the stuck
                    # cycle instead of hanging the worker.
                    raise RuntimeError(
                        f"telemetry stream stalled at cycle {point}: "
                        f"flush_upto({point + 1}) left next_flush at "
                        f"{stream.next_flush}"
                    )

    def _run_impl(
        self, max_cycles: int | None = None, skip_cycles: bool = True
    ) -> SimResult:
        cores = self.cores
        events = self.events
        memory = self.memory
        finish = self._finish_cycles
        remaining = len(cores)
        now = self._now
        hit_cap = False
        forever = _FOREVER
        # Determinism hash-chain: fold a snapshot of architectural state
        # every `every` cycles.  Sample cycles are defined on the virtual
        # cycle axis, so fast-forwarded windows fold the same (constant)
        # state at the same cycles the naive loop would have.
        every = detchain.interval()
        chain = detchain.DetChain(every) if every else None
        next_sample = every
        # Interval sampler: like the hash-chain, sample points live on the
        # virtual cycle axis, so folding due points inside fast-forward
        # windows (where every sampled instrument is constant) yields the
        # exact stream the naive loop produces.  Stream-flush points live
        # on the same axis and are interleaved with sample points in
        # cycle order (see _fold_telemetry).
        sampler = self.telemetry.sampler
        stream = self.telemetry.stream
        # Host perf counters (REPRO_PERF=1): phase brackets read the
        # sanctioned host clock only when enabled; disabled runs pay a
        # `perf is None` branch per phase and allocate nothing.
        perf = self.perf
        clock = hostclock.now_ns if perf is not None else None
        t0 = t1 = t2 = t3 = 0
        while remaining:
            if max_cycles is not None and now >= max_cycles:
                hit_cap = True
                break
            if clock is not None:
                perf.visited_cycles += 1
                t0 = clock()
            events.run_due(now)
            if clock is not None:
                t1 = clock()
                perf.ns_events += t1 - t0
            memory.step(now)
            if clock is not None:
                t2 = clock()
                perf.ns_memory += t2 - t1
            all_quiet = skip_cycles
            for core in cores:
                if core.done:
                    continue
                if core.skip_until > now:
                    continue  # quiescent; stats settled by flush_skip later
                if core._quiet_deltas is not None:
                    core.flush_skip(now)
                core.step(now)
                if core.done:
                    finish[core.core_id] = now + 1
                    remaining -= 1
                elif skip_cycles:
                    if core.plan_defer:
                        core.plan_defer -= 1
                        all_quiet = False
                    else:
                        plan = core.skip_plan(now)
                        if plan is None:
                            core.plan_defer = 3
                            all_quiet = False
                        else:
                            core.begin_skip(plan, now, forever)
                            if perf is not None:
                                perf.note_skip(core.skip_until, now)
            nxt = now + 1
            if all_quiet and remaining:
                # Every live core is quiescent: jump straight to the next
                # cycle at which anything can happen.
                target = memory.next_wake_cpu(now)
                event_cycle = events.next_cycle()
                if event_cycle is not None and event_cycle < target:
                    target = event_cycle
                for core in cores:
                    if not core.done and core.skip_until < target:
                        target = core.skip_until
                if max_cycles is not None and target > max_cycles:
                    target = max_cycles
                if target > nxt:
                    memory.fast_forward(nxt, target)
                    nxt = target
            if chain is not None and next_sample < nxt:
                # State at the end of every cycle in [now, nxt) equals the
                # state right now (skipped cycles change nothing), so fold
                # one sample per due sample point in the window.
                state = detchain.snapshot(self)
                while next_sample < nxt:
                    chain.sample(next_sample, state)
                    next_sample += every
            if clock is not None:
                t3 = clock()
                perf.ns_cores += t3 - t2
            if sampler is not None or stream is not None:
                self._fold_telemetry(sampler, stream, nxt)
            if clock is not None:
                perf.ns_telemetry += clock() - t3
            self._now = now = nxt
        return self._finish_run(now, hit_cap, chain, sampler)

    def _run_event(self, max_cycles: int | None = None) -> SimResult:
        """Wake-driven loop: visit only cycles where something can happen.

        The per-cycle loops spend most of their time discovering that
        nothing is due; this loop tracks *who is due when* instead:

        * **Cores** are either active (stepped every visited cycle, in
          core-id order, forcing the next cycle to be visited) or
          skipping.  A skipping core holds a lazily-invalidated entry in
          a wake heap at its ``skip_until`` and carries a wake hook
          (``_wake_hook``) that fires when an event clears its skip
          early.  Since every wake originates inside an event callback
          (store-buffer retries, DRAM-bound promotions, the core's own
          completion events), hooks only fire during the ``run_due``
          phase — before the core scan — so a core woken at cycle ``now``
          is stepped at ``now``, exactly as the per-cycle scan's
          ``skip_until > now`` test would have done.
        * **DRAM channels** register wakes (:meth:`MemorySystem.wake_cpu`)
          instead of being polled: an idle channel's skipped steps are
          pure zero-occupancy samples, settled lazily by
          ``account_idle``/``settle_idle``.
        * **Events** run only when the queue's head is due.

        Det-chain, sampler, and stream fold points live on the virtual
        cycle axis and never force a visit: due points inside a jumped
        window fold the same constant state the naive loop would have
        read cycle by cycle (same argument as ``_run_impl``'s windows).
        Together these make the loop bit-identical to the naive one —
        the engine-differential suite and ``REPRO_VERIFY_SKIP`` hold it
        to that.
        """
        cores = self.cores
        events = self.events
        memory = self.memory
        finish = self._finish_cycles
        remaining = len(cores)
        now = self._now
        hit_cap = False
        forever = _FOREVER
        every = detchain.interval()
        chain = detchain.DetChain(every) if every else None
        next_sample = every
        sampler = self.telemetry.sampler
        stream = self.telemetry.stream
        fold_telemetry = sampler is not None or stream is not None
        # Host perf counters (REPRO_PERF=1): same disabled-path discipline
        # as _run_impl — branches only, no per-cycle allocations.
        perf = self.perf
        clock = hostclock.now_ns if perf is not None else None
        t0 = t1 = t2 = t3 = 0

        wake_heap: list = []  # (skip_until, core_id); stale entries dropped
        woken: list = []  # skipping cores whose wake hook fired

        def on_wake(core):
            core._wake_hook = None
            woken.append(core)
            if perf is not None:
                perf.wake_hook_fires += 1

        is_active = [not core.done for core in cores]
        active = [core for core in cores if not core.done]
        dirty = False

        while remaining:
            if max_cycles is not None and now >= max_cycles:
                hit_cap = True
                break
            if clock is not None:
                perf.visited_cycles += 1
                t0 = clock()
            due = events.next_cycle()
            if due is not None and due <= now:
                events.run_due(now)
                if woken:
                    for core in woken:
                        cid = core.core_id
                        if not is_active[cid] and not core.done:
                            is_active[cid] = True
                            dirty = True
                    del woken[:]
            if clock is not None:
                t1 = clock()
                perf.ns_events += t1 - t0
            memory.step_event(now)
            if clock is not None:
                t2 = clock()
                perf.ns_memory += t2 - t1
            while wake_heap:
                cycle, cid = wake_heap[0]
                core = cores[cid]
                if core.done or core.skip_until != cycle:
                    heapq.heappop(wake_heap)  # stale: woken or re-planned
                    if perf is not None:
                        perf.heap_stale_drops += 1
                    continue
                if cycle > now:
                    break
                heapq.heappop(wake_heap)
                core._wake_hook = None
                if not is_active[cid]:
                    is_active[cid] = True
                    dirty = True
            if dirty:
                active = [core for core in cores if is_active[core.core_id]]
                dirty = False
            for core in active:
                if core._quiet_deltas is not None:
                    core.flush_skip(now)
                core.step(now)
                if core.done:
                    finish[core.core_id] = now + 1
                    remaining -= 1
                    is_active[core.core_id] = False
                    dirty = True
                elif core.plan_defer:
                    core.plan_defer -= 1
                else:
                    plan = core.skip_plan(now)
                    if plan is None:
                        core.plan_defer = 3
                    else:
                        core.begin_skip(plan, now, forever)
                        if perf is not None:
                            perf.note_skip(core.skip_until, now)
                        is_active[core.core_id] = False
                        dirty = True
                        core._wake_hook = on_wake
                        if core.skip_until < forever:
                            heapq.heappush(
                                wake_heap, (core.skip_until, core.core_id)
                            )
                            if perf is not None:
                                perf.heap_pushes += 1
            if dirty:
                active = [core for core in cores if is_active[core.core_id]]
                dirty = False
            nxt = now + 1
            if not active and remaining:
                # Every live core is skipping: jump to the next cycle at
                # which anything can happen.
                target = memory.wake_cpu(now)
                event_cycle = events.next_cycle()
                if event_cycle is not None and event_cycle < target:
                    target = event_cycle
                while wake_heap:
                    cycle, cid = wake_heap[0]
                    core = cores[cid]
                    if core.done or core.skip_until != cycle:
                        heapq.heappop(wake_heap)
                        if perf is not None:
                            perf.heap_stale_drops += 1
                        continue
                    if cycle < target:
                        target = cycle
                    break
                if max_cycles is not None and target > max_cycles:
                    target = max_cycles
                if target > nxt:
                    nxt = target
            if chain is not None and next_sample < nxt:
                state = detchain.snapshot(self)
                while next_sample < nxt:
                    chain.sample(next_sample, state)
                    next_sample += every
            if clock is not None:
                t3 = clock()
                perf.ns_cores += t3 - t2
            if fold_telemetry:
                self._fold_telemetry(sampler, stream, nxt)
            if clock is not None:
                perf.ns_telemetry += clock() - t3
            self._now = now = nxt
        for core in cores:
            core._wake_hook = None
        memory.settle_idle(now)
        return self._finish_run(now, hit_cap, chain, sampler)

    def _run_batched(self, max_cycles: int | None = None) -> SimResult:
        """Windowed loop: the event engine plus model-level batching.

        Two additions over :meth:`_run_event` (DESIGN.md §5.8):

        * **DRAM command batching** — channels register timing-aware
          wakes (:meth:`ChannelController.next_wake_window`): with only
          reads queued, a channel sleeps until the first cycle a command
          could legally issue; the skipped cycles' occupancy/criticality
          statistics are settled in bulk (``account_window``) and their
          det_state is provably constant, so the existing all-quiet jump
          and fold-point machinery already handle them exactly.
        * **Core windows** — when exactly one core is active, it advances
          through :meth:`OutOfOrderCore.step_window` over the span in
          which no event, DRAM edge, or parked-core wake can intervene.
          Windowed stages replay the per-cycle stages exactly, but they
          *do* change state cycle by cycle, so — unlike quiescent jumps —
          a window may only end at a det-chain/sampler/stream fold point,
          never span one: fold points read end-of-cycle state on the
          virtual axis, and the limit computation clamps to the next one.

        Only hooks certified in batchability.json are windowed (SEM032
        pins every shortcut site to its certificate; REPRO_VERIFY_EFFECTS
        re-checks the pure ones at runtime).
        """
        cores = self.cores
        events = self.events
        memory = self.memory
        memory._batched = True
        finish = self._finish_cycles
        remaining = len(cores)
        now = self._now
        hit_cap = False
        forever = _FOREVER
        every = detchain.interval()
        chain = detchain.DetChain(every) if every else None
        next_sample = every
        sampler = self.telemetry.sampler
        stream = self.telemetry.stream
        fold_telemetry = sampler is not None or stream is not None
        perf = self.perf
        clock = hostclock.now_ns if perf is not None else None
        t0 = t1 = t2 = t3 = 0

        wake_heap: list = []  # (skip_until, core_id); stale entries dropped
        woken: list = []  # skipping cores whose wake hook fired

        def on_wake(core):
            core._wake_hook = None
            woken.append(core)
            if perf is not None:
                perf.wake_hook_fires += 1

        is_active = [not core.done for core in cores]
        active = [core for core in cores if not core.done]
        dirty = False

        while remaining:
            if max_cycles is not None and now >= max_cycles:
                hit_cap = True
                break
            if clock is not None:
                perf.visited_cycles += 1
                t0 = clock()
            due = events.next_cycle()
            if due is not None and due <= now:
                events.run_due(now)
                if woken:
                    for core in woken:
                        cid = core.core_id
                        if not is_active[cid] and not core.done:
                            is_active[cid] = True
                            dirty = True
                    del woken[:]
            if clock is not None:
                t1 = clock()
                perf.ns_events += t1 - t0
            memory.step_window(now)
            if clock is not None:
                t2 = clock()
                perf.ns_memory += t2 - t1
            while wake_heap:
                cycle, cid = wake_heap[0]
                core = cores[cid]
                if core.done or core.skip_until != cycle:
                    heapq.heappop(wake_heap)  # stale: woken or re-planned
                    if perf is not None:
                        perf.heap_stale_drops += 1
                    continue
                if cycle > now:
                    break
                heapq.heappop(wake_heap)
                core._wake_hook = None
                if not is_active[cid]:
                    is_active[cid] = True
                    dirty = True
            if dirty:
                active = [core for core in cores if is_active[core.core_id]]
                dirty = False
            nxt = now + 1
            if len(active) == 1:
                # Single active core: find the span in which nothing else
                # can intervene and let the core advance through it.
                core = active[0]
                target = memory.wake_cpu(now)
                event_cycle = events.next_cycle()
                if event_cycle is not None and event_cycle < target:
                    target = event_cycle
                while wake_heap:
                    cycle, cid = wake_heap[0]
                    other = cores[cid]
                    if other.done or other.skip_until != cycle:
                        heapq.heappop(wake_heap)
                        if perf is not None:
                            perf.heap_stale_drops += 1
                        continue
                    if cycle < target:
                        target = cycle
                    break
                if chain is not None and next_sample + 1 < target:
                    target = next_sample + 1
                if sampler is not None and sampler.next_sample + 1 < target:
                    target = sampler.next_sample + 1
                if stream is not None and stream.next_flush + 1 < target:
                    target = stream.next_flush + 1
                if max_cycles is not None and target > max_cycles:
                    target = max_cycles
                if core._quiet_deltas is not None:
                    core.flush_skip(now)
                if target > nxt:
                    # The span is sound because the DRAM side publishes
                    # no CPU-visible edge before ``target``:
                    # repro-batch: cert=MemorySystem.wake_cpu
                    nxt = now + core.step_window(now, target)
                else:
                    core.step(now)
                if core.done:
                    finish[core.core_id] = nxt
                    remaining -= 1
                    is_active[core.core_id] = False
                    dirty = True
                elif core.plan_defer:
                    core.plan_defer -= 1
                else:
                    plan = core.skip_plan(nxt - 1)
                    if plan is None:
                        core.plan_defer = 3
                    else:
                        core.begin_skip(plan, nxt - 1, forever)
                        if perf is not None:
                            perf.note_skip(core.skip_until, nxt - 1)
                        is_active[core.core_id] = False
                        dirty = True
                        core._wake_hook = on_wake
                        if core.skip_until < forever:
                            heapq.heappush(
                                wake_heap, (core.skip_until, core.core_id)
                            )
                            if perf is not None:
                                perf.heap_pushes += 1
            else:
                for core in active:
                    if core._quiet_deltas is not None:
                        core.flush_skip(now)
                    core.step(now)
                    if core.done:
                        finish[core.core_id] = now + 1
                        remaining -= 1
                        is_active[core.core_id] = False
                        dirty = True
                    elif core.plan_defer:
                        core.plan_defer -= 1
                    else:
                        plan = core.skip_plan(now)
                        if plan is None:
                            core.plan_defer = 3
                        else:
                            core.begin_skip(plan, now, forever)
                            if perf is not None:
                                perf.note_skip(core.skip_until, now)
                            is_active[core.core_id] = False
                            dirty = True
                            core._wake_hook = on_wake
                            if core.skip_until < forever:
                                heapq.heappush(
                                    wake_heap, (core.skip_until, core.core_id)
                                )
                                if perf is not None:
                                    perf.heap_pushes += 1
            if dirty:
                active = [core for core in cores if is_active[core.core_id]]
                dirty = False
            if not active and remaining:
                # Every live core is skipping: jump to the next cycle at
                # which anything can happen.  DRAM gap-skipping rides on
                # this jump — windowed channel wakes land in _chan_wake,
                # so wake_cpu already reflects them.
                target = memory.wake_cpu(nxt - 1)
                event_cycle = events.next_cycle()
                if event_cycle is not None and event_cycle < target:
                    target = event_cycle
                while wake_heap:
                    cycle, cid = wake_heap[0]
                    core = cores[cid]
                    if core.done or core.skip_until != cycle:
                        heapq.heappop(wake_heap)
                        if perf is not None:
                            perf.heap_stale_drops += 1
                        continue
                    if cycle < target:
                        target = cycle
                    break
                if max_cycles is not None and target > max_cycles:
                    target = max_cycles
                if target > nxt:
                    nxt = target
            if chain is not None and next_sample < nxt:
                state = detchain.snapshot(self)
                while next_sample < nxt:
                    chain.sample(next_sample, state)
                    next_sample += every
            if clock is not None:
                t3 = clock()
                perf.ns_cores += t3 - t2
            if fold_telemetry:
                self._fold_telemetry(sampler, stream, nxt)
            if clock is not None:
                perf.ns_telemetry += clock() - t3
            self._now = now = nxt
        for core in cores:
            core._wake_hook = None
        memory.settle_idle(now)
        return self._finish_run(now, hit_cap, chain, sampler)

    def _finish_run(self, now, hit_cap, chain, sampler) -> SimResult:
        """Shared end-of-run settlement and result assembly."""
        cores = self.cores
        finish = self._finish_cycles
        for core in cores:
            if not core.done:
                core.flush_skip(now)
                if finish[core.core_id] == 0:
                    finish[core.core_id] = now
        self.memory.finish_sanitize(now)

        if chain is not None:
            chain.finalize(now, detchain.snapshot(self))
        perf = self.perf
        if perf is not None:
            # Event-queue accounting costs nothing on the hot path: the
            # queue's monotonic tie-break sequence *is* the push count,
            # and whatever is still enqueued was never popped.
            perf.event_pushes = self.events._seq
            perf.event_pops = self.events._seq - len(self.events)
        recorder = self.telemetry.trace
        result = SimResult(
            label=self.label,
            cycles=now,
            finish_cycles=list(finish),
            committed=[c.stats.committed for c in cores],
            core_stats=[c.stats for c in cores],
            hierarchy=self.hierarchy.stats,
            channels=[ch.stats for ch in self.memory.channels],
            providers=self.providers,
            hit_max_cycles=hit_cap,
            det_chain=chain.digest if chain is not None else None,
            det_checkpoints=chain.checkpoints if chain is not None else [],
            metrics=self.telemetry.registry.snapshot(),
            sample_cycles=list(sampler.cycles) if sampler is not None else [],
            timeseries=(
                {name: list(series) for name, series in sampler.series.items()}
                if sampler is not None
                else {}
            ),
            trace_events=list(recorder.events) if recorder is not None else [],
            trace_dropped=recorder.dropped if recorder is not None else 0,
            host_perf=perf.snapshot() if perf is not None else None,
        )
        return result
