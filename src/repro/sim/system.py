"""System: cores + hierarchy + memory, and the global cycle loop."""

from __future__ import annotations

from repro.analysis import detchain
from repro.config import SystemConfig
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.provider import CriticalityProvider, NullProvider
from repro.cpu.core import OutOfOrderCore
from repro.dram.controller import MemorySystem
from repro.sched.registry import make_scheduler_factory
from repro.sim.events import EventQueue
from repro.sim.stats import SimResult
from repro.telemetry import Telemetry

# Sentinel "wake cycle" for cores quiescent until externally woken.
_FOREVER = 1 << 62


def make_provider_factory(spec):
    """Build a per-core criticality-provider factory from a spec.

    Specs:
        None or "null"            — no criticality (baseline machine).
        ("cbp", {...})            — :class:`CbpProvider` kwargs.
        ("clpt", {...})           — :class:`ClptProvider` kwargs.
        ("naive", {...})          — :class:`NaiveForwardingProvider` kwargs.
        callable                  — used directly as ``factory(core_id)``.
    """
    if spec is None or spec == "null":
        return lambda core_id: NullProvider()
    if callable(spec):
        return spec
    kind, kwargs = spec
    from repro.core.fields import FieldsLikeProvider
    from repro.core.provider import CbpProvider, ClptProvider, NaiveForwardingProvider

    classes = {
        "cbp": CbpProvider,
        "clpt": ClptProvider,
        "naive": NaiveForwardingProvider,
        "fields": FieldsLikeProvider,
    }
    try:
        cls = classes[kind]
    except KeyError:
        raise ValueError(f"unknown provider kind {kind!r}") from None
    return lambda core_id: cls(**kwargs)


class System:
    """One simulated machine bound to one workload."""

    def __init__(
        self,
        config: SystemConfig,
        traces,
        scheduler: str = "fr-fcfs",
        scheduler_kwargs: dict | None = None,
        provider_spec=None,
        label: str | None = None,
    ):
        if len(traces) != config.cores:
            raise ValueError(
                f"need {config.cores} traces (one per core), got {len(traces)}"
            )
        self.config = config
        self.label = label or scheduler
        self.events = EventQueue()
        self.memory = MemorySystem(
            config.dram, make_scheduler_factory(scheduler, **(scheduler_kwargs or {}))
        )
        self.hierarchy = MemoryHierarchy(config, self.memory, self.events)
        self._now = 0
        self.hierarchy.bind_clock(lambda: self._now)
        self.hierarchy.bind_core_waker(
            lambda core_id: self.cores[core_id].wake_skip()
        )
        provider_factory = make_provider_factory(provider_spec)
        self.providers: list[CriticalityProvider] = [
            provider_factory(i) for i in range(config.cores)
        ]
        self.cores = [
            OutOfOrderCore(
                i, config.core, traces[i], self.hierarchy, self.providers[i], self.events
            )
            for i in range(config.cores)
        ]
        self._finish_cycles = [0] * config.cores
        for core_id, trace in enumerate(traces):
            ranges = getattr(trace, "prewarm", None)
            if ranges:
                self.hierarchy.prewarm(core_id, ranges)
        # Telemetry spine: every component registers its instruments into
        # one registry; the sampler and event trace attach only when their
        # environment knobs enable them (see repro.telemetry).
        self.telemetry = Telemetry.from_env()
        registry = self.telemetry.registry
        self.hierarchy.register_metrics(registry, "hier")
        for channel in self.memory.channels:
            channel.register_metrics(registry, f"chan{channel.channel_id}")
        for core in self.cores:
            core.register_metrics(registry, f"core{core.core_id}")
        self.telemetry.bind_sampler()
        recorder = self.telemetry.trace
        if recorder is not None:
            for core in self.cores:
                core.tracer = recorder
            for channel in self.memory.channels:
                channel.trace = recorder
            self.hierarchy.trace = recorder
        self.telemetry.begin_stream(self.label)

    def run(
        self, max_cycles: int | None = None, skip_cycles: bool = True
    ) -> SimResult:
        """Run every core's trace to completion; returns the results.

        With ``skip_cycles`` (the default) the loop fast-forwards over dead
        cycles — stretches where every core is quiescent, no event is due,
        and no DRAM clock edge has work — applying the exact per-cycle stat
        increments the naive loop would have made, so results are
        bit-identical either way.  ``skip_cycles=False`` forces the plain
        cycle-by-cycle loop (the reference for the cross-check mode).

        When a streaming writer is attached (``REPRO_STREAM_DIR``) the
        stream is finalized on success and aborted — torn tail removed,
        manifest marked ``failed`` — on any failure, so a crashed run
        never leaves an ambiguous half-written stream behind.
        """
        stream = self.telemetry.stream
        if stream is None:
            return self._run_impl(max_cycles, skip_cycles)
        try:
            result = self._run_impl(max_cycles, skip_cycles)
        except BaseException:
            stream.abort()
            raise
        stream.finalize(result.cycles, result.trace_dropped)
        return result

    def _fold_telemetry(self, sampler, stream, limit: int) -> None:
        """Fold sampler and stream-flush points, interleaved on the
        virtual cycle axis.

        The naive loop reaches this once per cycle, so a sample at cycle
        P lands *before* a flush point at P seals the segment.  The
        skipping loop calls it with a whole quiescent window as
        ``limit``; stepping the two point streams in merged cycle order
        (sample first on ties) reproduces that per-cycle interleaving
        exactly, keeping streamed segment boundaries bit-identical
        across skip modes.
        """
        if stream is None:
            sampler.sample_upto(limit)
            return
        while True:
            next_s = sampler.next_sample if sampler is not None else _FOREVER
            point = min(next_s, stream.next_flush)
            if point >= limit:
                break
            if next_s == point:
                sampler.sample_upto(point + 1)
            if stream.next_flush <= point:
                stream.flush_upto(point + 1)

    def _run_impl(
        self, max_cycles: int | None = None, skip_cycles: bool = True
    ) -> SimResult:
        cores = self.cores
        events = self.events
        memory = self.memory
        finish = self._finish_cycles
        remaining = len(cores)
        now = self._now
        hit_cap = False
        forever = _FOREVER
        # Determinism hash-chain: fold a snapshot of architectural state
        # every `every` cycles.  Sample cycles are defined on the virtual
        # cycle axis, so fast-forwarded windows fold the same (constant)
        # state at the same cycles the naive loop would have.
        every = detchain.interval()
        chain = detchain.DetChain(every) if every else None
        next_sample = every
        # Interval sampler: like the hash-chain, sample points live on the
        # virtual cycle axis, so folding due points inside fast-forward
        # windows (where every sampled instrument is constant) yields the
        # exact stream the naive loop produces.  Stream-flush points live
        # on the same axis and are interleaved with sample points in
        # cycle order (see _fold_telemetry).
        sampler = self.telemetry.sampler
        stream = self.telemetry.stream
        while remaining:
            if max_cycles is not None and now >= max_cycles:
                hit_cap = True
                break
            events.run_due(now)
            memory.step(now)
            all_quiet = skip_cycles
            for core in cores:
                if core.done:
                    continue
                if core.skip_until > now:
                    continue  # quiescent; stats settled by flush_skip later
                if core._quiet_deltas is not None:
                    core.flush_skip(now)
                core.step(now)
                if core.done:
                    finish[core.core_id] = now + 1
                    remaining -= 1
                elif skip_cycles:
                    if core.plan_defer:
                        core.plan_defer -= 1
                        all_quiet = False
                    else:
                        plan = core.skip_plan(now)
                        if plan is None:
                            core.plan_defer = 3
                            all_quiet = False
                        else:
                            core.begin_skip(plan, now, forever)
            nxt = now + 1
            if all_quiet and remaining:
                # Every live core is quiescent: jump straight to the next
                # cycle at which anything can happen.
                target = memory.next_wake_cpu(now)
                event_cycle = events.next_cycle()
                if event_cycle is not None and event_cycle < target:
                    target = event_cycle
                for core in cores:
                    if not core.done and core.skip_until < target:
                        target = core.skip_until
                if max_cycles is not None and target > max_cycles:
                    target = max_cycles
                if target > nxt:
                    memory.fast_forward(nxt, target)
                    nxt = target
            if chain is not None and next_sample < nxt:
                # State at the end of every cycle in [now, nxt) equals the
                # state right now (skipped cycles change nothing), so fold
                # one sample per due sample point in the window.
                state = detchain.snapshot(self)
                while next_sample < nxt:
                    chain.sample(next_sample, state)
                    next_sample += every
            if sampler is not None or stream is not None:
                self._fold_telemetry(sampler, stream, nxt)
            self._now = now = nxt
        for core in cores:
            if not core.done:
                core.flush_skip(now)
                if finish[core.core_id] == 0:
                    finish[core.core_id] = now
        memory.finish_sanitize(now)

        if chain is not None:
            chain.finalize(now, detchain.snapshot(self))
        recorder = self.telemetry.trace
        result = SimResult(
            label=self.label,
            cycles=now,
            finish_cycles=list(finish),
            committed=[c.stats.committed for c in cores],
            core_stats=[c.stats for c in cores],
            hierarchy=self.hierarchy.stats,
            channels=[ch.stats for ch in memory.channels],
            providers=self.providers,
            hit_max_cycles=hit_cap,
            det_chain=chain.digest if chain is not None else None,
            det_checkpoints=chain.checkpoints if chain is not None else [],
            metrics=self.telemetry.registry.snapshot(),
            sample_cycles=list(sampler.cycles) if sampler is not None else [],
            timeseries=(
                {name: list(series) for name, series in sampler.series.items()}
                if sampler is not None
                else {}
            ),
            trace_events=list(recorder.events) if recorder is not None else [],
            trace_dropped=recorder.dropped if recorder is not None else 0,
        )
        return result
