"""Renderers for :class:`~repro.experiments.common.ExperimentResult`.

Plain-text rendering lives on the result itself (``.table()``); this
module adds Markdown and CSV for reports (EXPERIMENTS.md is assembled
from these), plus a minimal ASCII bar chart for speedup-style columns.
"""

from __future__ import annotations

import csv
import io


def to_markdown(result) -> str:
    """GitHub-flavoured Markdown table."""
    cols = result.columns
    lines = [f"### {result.experiment_id}: {result.title}", ""]
    lines.append("| " + " | ".join(str(c) for c in cols) + " |")
    lines.append("|" + "|".join("---" for _ in cols) + "|")
    for row in result.rows:
        lines.append(
            "| " + " | ".join(_fmt(row.get(c)) for c in cols) + " |"
        )
    if result.notes:
        lines += ["", f"*{result.notes}*"]
    return "\n".join(lines)


def to_csv(result) -> str:
    """CSV with a header row."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(result.columns)
    for row in result.rows:
        writer.writerow([_fmt(row.get(c)) for c in result.columns])
    return buf.getvalue()


def bar_chart(result, label_column, value_column, width: int = 40,
              reference: float | None = 1.0) -> str:
    """ASCII horizontal bars for one numeric column.

    ``reference`` draws the bars relative to a baseline value (1.0 for
    speedups); None scales to the maximum.
    """
    rows = [r for r in result.rows if isinstance(r.get(value_column), (int, float))]
    if not rows:
        return "(no numeric data)"
    values = [r[value_column] for r in rows]
    top = max(values + ([reference] if reference else []))
    label_w = max(len(str(r[label_column])) for r in rows)
    lines = []
    for row in rows:
        value = row[value_column]
        filled = int(round(width * value / top)) if top else 0
        lines.append(
            f"{str(row[label_column]):<{label_w}}  "
            f"{'#' * filled:<{width}}  {value:.3f}"
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
