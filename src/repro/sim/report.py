"""Renderers for :class:`~repro.experiments.common.ExperimentResult`.

Plain-text rendering lives on the result itself (``.table()``); this
module adds Markdown and CSV for reports (EXPERIMENTS.md is assembled
from these), plus a minimal ASCII bar chart for speedup-style columns.

Telemetry renderers (:func:`histogram_ascii`, :func:`telemetry_markdown`,
:func:`timeseries_to_csv`) take :class:`~repro.sim.stats.SimResult`
telemetry output — registry snapshots and interval-sampler series — and
format it for the ``python -m repro stats`` command and reports.
"""

from __future__ import annotations

import csv
import io


def to_markdown(result) -> str:
    """GitHub-flavoured Markdown table."""
    cols = result.columns
    lines = [f"### {result.experiment_id}: {result.title}", ""]
    lines.append("| " + " | ".join(str(c) for c in cols) + " |")
    lines.append("|" + "|".join("---" for _ in cols) + "|")
    for row in result.rows:
        lines.append(
            "| " + " | ".join(_fmt(row.get(c)) for c in cols) + " |"
        )
    if result.notes:
        lines += ["", f"*{result.notes}*"]
    return "\n".join(lines)


def to_csv(result) -> str:
    """CSV with a header row."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(result.columns)
    for row in result.rows:
        writer.writerow([_fmt(row.get(c)) for c in result.columns])
    return buf.getvalue()


def bar_chart(result, label_column, value_column, width: int = 40,
              reference: float | None = 1.0) -> str:
    """ASCII horizontal bars for one numeric column.

    ``reference`` draws the bars relative to a baseline value (1.0 for
    speedups); None scales to the maximum.
    """
    rows = [r for r in result.rows if isinstance(r.get(value_column), (int, float))]
    if not rows:
        return "(no numeric data)"
    values = [r[value_column] for r in rows]
    top = max(values + ([reference] if reference else []))
    label_w = max(len(str(r[label_column])) for r in rows)
    lines = []
    for row in rows:
        value = row[value_column]
        filled = int(round(width * value / top)) if top else 0
        lines.append(
            f"{str(row[label_column]):<{label_w}}  "
            f"{'#' * filled:<{width}}  {value:.3f}"
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


# ------------------------------------------------------------- telemetry

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 40) -> str:
    """Unicode block-character sparkline of a numeric series.

    Renders the last ``width`` values scaled to the min/max of that
    window (a flat series renders as a flat low line).  Used by the
    ``repro watch`` live monitor; ignores non-numeric entries.
    """
    numeric = [v for v in values if isinstance(v, (int, float))]
    if not numeric:
        return ""
    window = numeric[-width:]
    lo = min(window)
    hi = max(window)
    span = hi - lo
    if span == 0:
        return _SPARK_CHARS[0] * len(window)
    top = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[int((v - lo) / span * top)] for v in window
    )


def _is_histogram_summary(value) -> bool:
    return isinstance(value, dict) and "p99" in value and "buckets" in value


def histogram_ascii(summary: dict, width: int = 40) -> str:
    """ASCII shape of one histogram summary (power-of-two buckets).

    ``summary`` is a :meth:`LatencyHistogram.summary` dict; each occupied
    bucket renders one row labelled with its upper bound.
    """
    buckets = summary.get("buckets") or []
    if not buckets:
        return "(empty)"
    top = max(n for _, n in buckets)
    label_w = max(len(str((1 << i) - 1 if i else 0)) for i, _ in buckets)
    lines = []
    for i, n in buckets:
        upper = (1 << i) - 1 if i else 0
        filled = max(1, int(round(width * n / top))) if top else 0
        lines.append(f"<= {upper:>{label_w}}  {'#' * filled}  {n}")
    return "\n".join(lines)


def telemetry_markdown(result) -> str:
    """Markdown table of every histogram in ``result.metrics``."""
    rows = [
        (name, value)
        for name, value in result.metrics.items()
        if _is_histogram_summary(value)
    ]
    if not rows:
        return "(no histograms recorded)"
    lines = [
        "| instrument | count | mean | p50 | p90 | p99 | max |",
        "|---|---|---|---|---|---|---|",
    ]
    for name, s in rows:
        lines.append(
            f"| {name} | {s['count']} | {s['mean']:.1f} | {s['p50']} "
            f"| {s['p90']} | {s['p99']} | {s['max']} |"
        )
    return "\n".join(lines)


def timeseries_to_csv(result) -> str:
    """Interval-sampler series as CSV: one row per sample cycle."""
    names = list(result.timeseries)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["cycle"] + names)
    for row_idx, cycle in enumerate(result.sample_cycles):
        writer.writerow(
            [cycle] + [result.timeseries[name][row_idx] for name in names]
        )
    return buf.getvalue()
