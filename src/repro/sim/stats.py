"""Run-level results and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.registry import LatencyHistogram


@dataclass
class SimResult:
    """Everything one simulation run produced.

    ``cycles`` is the cycle at which the *last* core finished (the parallel
    run-to-completion time); ``finish_cycles`` holds each core's own
    completion cycle (the multiprogrammed per-application time).
    """

    label: str
    cycles: int
    finish_cycles: list[int]
    committed: list[int]
    core_stats: list = field(default_factory=list)
    hierarchy: object = None
    channels: list = field(default_factory=list)
    providers: list = field(default_factory=list)
    hit_max_cycles: bool = False
    #: Host wall-clock seconds the run took (0.0 when not measured).
    wall_seconds: float = 0.0
    #: Final determinism hash-chain digest (see repro.analysis.detchain);
    #: None when sampling is disabled (REPRO_DETCHAIN_EVERY=0).
    det_chain: int | None = None
    #: Periodic ``(cycle, digest)`` checkpoints for divergence localisation.
    det_checkpoints: list = field(default_factory=list)
    #: Plain-data snapshot of every registered instrument at end of run
    #: (see :mod:`repro.telemetry.registry`).
    metrics: dict = field(default_factory=dict)
    #: Interval-sampler output (``REPRO_SAMPLE_EVERY``): the sampled
    #: virtual cycles and, per instrument name, the value series.
    sample_cycles: list = field(default_factory=list)
    timeseries: dict = field(default_factory=dict)
    #: Event-trace ring buffer contents (``REPRO_TRACE=1``) as raw tuples
    #: (see :mod:`repro.telemetry.trace`), plus the drop-oldest count.
    trace_events: list = field(default_factory=list)
    trace_dropped: int = 0
    #: Host-side perf-counter snapshot (``REPRO_PERF=1``, see
    #: :mod:`repro.telemetry.perfcounters`); None when disabled.  A pure
    #: side channel: deliberately excluded from ``result_fingerprint``,
    #: the determinism chain, and the engine cache key — host timing
    #: describes the simulator, never the simulated machine.
    host_perf: dict | None = None

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles per host second (observability, not physics)."""
        return self.cycles / self.wall_seconds if self.wall_seconds else 0.0

    # -- throughput ------------------------------------------------------------

    @property
    def total_committed(self) -> int:
        return sum(self.committed)

    @property
    def system_ipc(self) -> float:
        return self.total_committed / self.cycles if self.cycles else 0.0

    def core_ipc(self, core: int) -> float:
        """Per-core IPC over that core's own execution window."""
        finish = self.finish_cycles[core]
        return self.committed[core] / finish if finish else 0.0

    # -- Figure 1 quantities ---------------------------------------------------

    def blocking_load_fraction(self) -> float:
        """Dynamic DRAM-serviced loads that blocked the ROB head / all loads."""
        loads = sum(s.loads for s in self.core_stats)
        blocking = sum(s.blocking_dram_loads for s in self.core_stats)
        return blocking / loads if loads else 0.0

    def blocked_cycle_fraction(self) -> float:
        """Fraction of core cycles spent with a DRAM load blocking commit.

        Cores that committed nothing (idle traces, e.g. the empty cores of
        an execute-alone run) are excluded: they contribute neither blocked
        nor busy cycles, so counting them would dilute the fraction.
        """
        if not self.core_stats:
            return 0.0
        cycles = blocked = 0
        for core, finish in enumerate(self.finish_cycles):
            if self.committed[core] <= 0:
                continue
            cycles += finish
            blocked += self.core_stats[core].blocked_dram_cycles
        return blocked / cycles if cycles else 0.0


def _freeze(value):
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, LatencyHistogram):
        return value.state()
    return value


def _stat_items(obj):
    if obj is None:
        return ()
    slots = getattr(type(obj), "__slots__", None)
    items = (
        ((k, getattr(obj, k)) for k in slots)
        if slots
        else obj.__dict__.items()
    )
    return tuple(
        sorted((k, _freeze(v)) for k, v in items if not callable(v))
    )


def result_fingerprint(result: SimResult):
    """Hashable digest of everything a run measured.

    Two runs of the same workload produce equal fingerprints iff their
    results are bit-identical — the contract the fast-forwarding loop is
    held to (``REPRO_VERIFY_SKIP``) and the determinism tests check.
    Host-side observability (``wall_seconds``, ``host_perf``) is
    deliberately excluded: it describes the simulator run, not the
    simulated machine, so it must never make two identical runs compare
    unequal.
    """
    return (
        result.cycles,
        tuple(result.finish_cycles),
        tuple(result.committed),
        result.hit_max_cycles,
        result.det_chain,
        tuple(_stat_items(s) for s in result.core_stats),
        tuple(_stat_items(c) for c in result.channels),
        _stat_items(result.hierarchy),
        _freeze(result.metrics),
        tuple(result.sample_cycles),
        _freeze(result.timeseries),
        tuple(result.trace_events),
        result.trace_dropped,
    )


def speedup(baseline: SimResult, result: SimResult) -> float:
    """Run-time speedup of ``result`` over ``baseline`` (same workload)."""
    if result.cycles == 0:
        raise ValueError("result has zero cycles")
    return baseline.cycles / result.cycles


def weighted_speedup(result: SimResult, alone_ipcs: list[float]) -> float:
    """Sum of per-application normalised IPCs (Snavely & Tullsen)."""
    if len(alone_ipcs) != len(result.committed):
        raise ValueError("alone_ipcs length must match core count")
    total = 0.0
    for core, alone in enumerate(alone_ipcs):
        if alone <= 0:
            raise ValueError(f"alone IPC for core {core} must be positive")
        total += result.core_ipc(core) / alone
    return total


def maximum_slowdown(result: SimResult, alone_ipcs: list[float]) -> float:
    """max over applications of IPC_alone / IPC_shared (TCM's fairness metric)."""
    worst = 0.0
    for core, alone in enumerate(alone_ipcs):
        shared = result.core_ipc(core)
        if shared <= 0:
            raise ValueError(f"core {core} committed nothing")
        worst = max(worst, alone / shared)
    return worst
