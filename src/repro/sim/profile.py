"""Profiler-driven hot-path reporting: ``python -m repro profile``.

Two observation modes over the same workload:

* **cProfile attribution** (the default): run one simulation under
  :mod:`cProfile` and fold the per-function ``tottime`` into a
  per-component report (core model, DRAM, caches, scheduler, telemetry,
  determinism chain, engine loop), plus the top-N functions.  This is
  the measurement the event-engine work is gated on — "where do the
  cycles go" is answered by data, not assertion.
* **engine comparison** (``--engines all`` or ``--engines A,B,...``):
  run the same workload once per engine *without* the profiler and
  report wall clock, cycles/second, and speedup over the naive
  reference (or the first engine listed when naive is absent).
  ``all`` enumerates every registered engine.  The runs must also
  agree on the determinism chain and result fingerprint, so the
  comparison doubles as a cheap cross-engine identity check.
* **perf counters** (``--counters``): run once with ``REPRO_PERF=1``
  and render the :mod:`repro.telemetry.perfcounters` snapshot — engine
  internals (event pushes/pops, wake-heap churn, skip windows) plus
  per-phase wall-clock attribution, without cProfile's overhead.

Wall-clock reads in this module are observability only — they go
through :mod:`repro.util.hostclock` and are reported, never fed back
into simulated state.
"""

from __future__ import annotations

import cProfile
import json
import pstats

from repro.config import SimScale
from repro.util import hostclock

#: Maps source-path fragments to report components, first match wins.
#: Order matters: the engine loop lives in sim/ but so do stats/report
#: helpers, and detchain is the interesting part of analysis/.
_COMPONENTS = (
    ("repro/cpu/", "core-model"),
    ("repro/core/", "criticality"),
    ("repro/dram/", "dram"),
    ("repro/cache/", "cache"),
    ("repro/sched/", "scheduler"),
    ("repro/telemetry/", "telemetry"),
    ("repro/analysis/detchain", "det-chain"),
    ("repro/analysis/", "analysis"),
    ("repro/sim/system", "engine-loop"),
    ("repro/sim/events", "engine-loop"),
    ("repro/sim/", "engine-other"),
    ("repro/workloads/", "workload-gen"),
)


def _component(path: str) -> str:
    normalized = path.replace("\\", "/")
    for fragment, component in _COMPONENTS:
        if fragment in normalized:
            return component
    if "repro/" in normalized:
        return "repro-other"
    return "python/stdlib"


def _run_workload(args):
    from repro.sim.runner import run_parallel_workload

    scale = SimScale(
        instructions_per_core=args.instructions,
        warmup_instructions=max(200, args.instructions // 10),
        seed=args.seed,
    )
    spec = ("cbp", {"entries": args.cbp}) if args.cbp else None
    return run_parallel_workload(
        args.app, scheduler=args.scheduler, provider_spec=spec, scale=scale
    )


def profile_run(args) -> dict:
    """Profile one run; returns the report dict (also printed by the CLI)."""
    profiler = cProfile.Profile()
    start = hostclock.now()
    profiler.enable()
    result = _run_workload(args)
    profiler.disable()
    wall = hostclock.now() - start

    stats = pstats.Stats(profiler)
    components: dict[str, float] = {}
    rows = []
    total = 0.0
    for (path, line, name), (cc, nc, tottime, cumtime, _) in stats.stats.items():
        total += tottime
        component = _component(path)
        components[component] = components.get(component, 0.0) + tottime
        rows.append(
            {
                "function": f"{path.replace(chr(92), '/').split('/')[-1]}"
                            f":{line}({name})",
                "component": component,
                "calls": nc,
                "tottime": tottime,
                "cumtime": cumtime,
            }
        )
    rows.sort(key=lambda r: r["tottime"], reverse=True)
    return {
        "label": result.label,
        "engine": args.engine or "default",
        "cycles": result.cycles,
        "wall_seconds": round(wall, 4),
        "cycles_per_second": round(result.cycles / wall if wall else 0.0, 1),
        "profile_seconds": round(total, 4),
        "components": {
            k: round(v, 4)
            for k, v in sorted(
                components.items(), key=lambda kv: kv[1], reverse=True
            )
        },
        "top_functions": [
            {**row, "tottime": round(row["tottime"], 4),
             "cumtime": round(row["cumtime"], 4)}
            for row in rows[: args.top]
        ],
    }


def compare_engines(args) -> dict:
    """Run the workload once per requested engine (no profiler) and
    cross-check det-chains/fingerprints while comparing wall clocks.

    ``--engines all`` enumerates every registered loop implementation
    (:data:`repro.sim.system.ENGINES`) instead of a hand-maintained
    list, so new engines join the comparison automatically.  Speedups
    are reported against the ``naive`` run when present (the reference
    implementation), falling back to the first engine listed.
    """
    import os

    from repro.sim.stats import result_fingerprint
    from repro.sim.system import ENGINES

    if args.engines.strip() in ("all", "*"):
        engines = list(ENGINES)
    else:
        engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    runs = []
    saved = os.environ.get("REPRO_ENGINE")
    try:
        for engine in engines:
            os.environ["REPRO_ENGINE"] = engine
            start = hostclock.now()
            result = _run_workload(args)
            wall = hostclock.now() - start
            runs.append(
                {
                    "engine": engine,
                    "wall_seconds": round(wall, 4),
                    "cycles": result.cycles,
                    "cycles_per_second": round(
                        result.cycles / wall if wall else 0.0, 1
                    ),
                    "det_chain": result.det_chain,
                    "fingerprint": result_fingerprint(result),
                }
            )
    finally:
        if saved is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = saved

    reference = next((r for r in runs if r["engine"] == "naive"), runs[0])
    for run in runs:
        run["speedup"] = round(
            reference["wall_seconds"] / run["wall_seconds"], 2
        ) if run["wall_seconds"] else 0.0
        run["identical"] = (
            run["det_chain"] == reference["det_chain"]
            and run["fingerprint"] == reference["fingerprint"]
        )
    report = {
        "label": f"{args.app}/{args.scheduler}",
        "runs": [
            {k: v for k, v in run.items() if k != "fingerprint"}
            for run in runs
        ],
        "identical": all(run["identical"] for run in runs),
    }
    return report


def counters_run(args) -> dict:
    """Run once with the perf counters on and report the snapshot."""
    import os

    saved = os.environ.get("REPRO_PERF")
    os.environ["REPRO_PERF"] = "1"
    try:
        result = _run_workload(args)
    finally:
        if saved is None:
            os.environ.pop("REPRO_PERF", None)
        else:
            os.environ["REPRO_PERF"] = saved
    return {
        "label": result.label,
        "engine": args.engine or "default",
        "cycles": result.cycles,
        "wall_seconds": round(result.wall_seconds, 4),
        "cycles_per_second": round(result.cycles_per_second, 1),
        "host_perf": result.host_perf,
    }


def _print_counters(report: dict) -> None:
    from repro.telemetry.perfcounters import render

    print(f"{report['label']} [{report['engine']}]: "
          f"{report['cycles']:,} cycles in {report['wall_seconds']:.2f}s "
          f"({report['cycles_per_second']:,.0f} cycles/s)")
    print()
    print(render(report["host_perf"], report["wall_seconds"]))


def _print_profile(report: dict) -> None:
    print(f"{report['label']} [{report['engine']}]: "
          f"{report['cycles']:,} cycles in {report['wall_seconds']:.2f}s "
          f"({report['cycles_per_second']:,.0f} cycles/s)")
    print("\nper-component attribution (profiled tottime):")
    total = report["profile_seconds"] or 1.0
    for component, seconds in report["components"].items():
        share = 100.0 * seconds / total
        bar = "#" * max(1, int(share / 2)) if seconds else ""
        print(f"  {component:<14} {seconds:>8.3f}s  {share:>5.1f}%  {bar}")
    print("\ntop functions by tottime:")
    for row in report["top_functions"]:
        print(f"  {row['tottime']:>8.3f}s  {row['calls']:>9,}x  "
              f"[{row['component']}] {row['function']}")


def _print_comparison(report: dict) -> None:
    print(f"{report['label']}: engine comparison")
    print(f"  {'engine':<8} {'wall':>8} {'cycles/s':>12} {'speedup':>8}  identical")
    for run in report["runs"]:
        print(f"  {run['engine']:<8} {run['wall_seconds']:>7.2f}s "
              f"{run['cycles_per_second']:>12,.0f} {run['speedup']:>7.2f}x  "
              f"{'yes' if run['identical'] else 'NO — DIVERGED'}")
    if not report["identical"]:
        print("engine comparison FAILED: results diverged")


def main(args) -> int:
    """Entry point for ``python -m repro profile``."""
    import os

    os.environ.setdefault("REPRO_NO_CACHE", "1")
    if args.engine:
        os.environ["REPRO_ENGINE"] = args.engine
    if args.engines:
        report = compare_engines(args)
        _print_comparison(report)
    elif getattr(args, "counters", False):
        report = counters_run(args)
        _print_counters(report)
    else:
        report = profile_run(args)
        _print_profile(report)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"\nreport -> {args.json}")
    return 0 if report.get("identical", True) else 1
