"""A deterministic discrete-event queue for the CPU clock domain.

Events scheduled for the same cycle fire in scheduling order (a
monotonically increasing sequence number breaks heap ties), which keeps
whole-system runs reproducible.
"""

from __future__ import annotations

import heapq


class EventQueue:
    """Min-heap of ``(cycle, seq, fn)`` callbacks."""

    def __init__(self):
        self._heap: list = []
        self._seq = 0

    def schedule(self, cycle: int, fn) -> None:
        """Run ``fn()`` when the clock reaches ``cycle``."""
        self._seq += 1
        heapq.heappush(self._heap, (cycle, self._seq, fn))

    def run_due(self, now: int) -> int:
        """Fire every event scheduled at or before ``now``; returns count.

        Reentrancy contract (the wake-driven engine depends on this —
        see ``tests/test_events.py``):

        * A callback that schedules another event at ``cycle <= now``
          fires **within the same** ``run_due`` call, after everything
          already pending at an earlier ``(cycle, seq)``.  The call
          returns only when no event at or before ``now`` remains, so a
          caller never needs to re-poll for same-cycle follow-ups.
        * Events at the same cycle fire in scheduling order (``_seq``
          breaks heap ties), including events scheduled mid-drain: a
          same-cycle event scheduled by a callback runs after every
          same-cycle event that was scheduled before it.
        * A callback scheduling at ``cycle < now`` (an "earlier" cycle)
          also fires in this call — the heap orders it before any
          later-cycle entries, but it cannot run before events that
          already fired.  Schedulers should treat this as "due
          immediately", not time travel.
        """
        fired = 0
        heap = self._heap
        while heap and heap[0][0] <= now:
            _, _, fn = heapq.heappop(heap)
            fn()
            fired += 1
        return fired

    def next_cycle(self) -> int | None:
        """Cycle of the earliest pending event, or None if empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)
