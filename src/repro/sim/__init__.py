"""Simulation driver: system wiring, cycle loop, statistics, runners."""

from repro.sim.events import EventQueue
from repro.sim.stats import SimResult
from repro.sim.system import System
from repro.sim.runner import (
    run_parallel_workload,
    run_multiprogrammed_workload,
    speedup,
)

__all__ = [
    "EventQueue",
    "SimResult",
    "System",
    "run_multiprogrammed_workload",
    "run_parallel_workload",
    "speedup",
]
