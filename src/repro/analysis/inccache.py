"""Per-package sharding and an on-disk incremental cache for the
semantic analyzer.

The whole-program analyzer re-reads and re-analyzes every module on
every invocation.  For editor/pre-commit loops that is wasted work:
most runs touch one package.  This module shards the target tree by
directory (one shard per package directory), keys each shard by the
content hashes of its own files, the analyzer's own sources, the
``--select`` set, and the hashes of every shard it transitively
imports, and caches each shard's findings on disk.  A warm run whose
keys all match reconstructs the report without parsing a single file;
a run with edits re-analyzes only the shards whose key changed.

Soundness cut (deliberate): a cache miss re-analyzes the shard
together with its transitive *imports*, not its importers, so a
finding in package P that only materializes because some *other*
package imports P can differ from the whole-program answer (e.g.
name-level coverage reads that live in an unrelated package).  The
cache is therefore an opt-in accelerator for local loops — it is used
only when ``--cache-dir`` / ``REPRO_ANALYZE_CACHE_DIR`` is given —
while CI and the default CLI run the whole-program analysis, which
stays authoritative.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.analysis.lint import Finding, iter_python_files
from repro.util import atomicio
from repro.analysis.semantic.driver import AnalysisReport, analyze_graph
from repro.analysis.semantic.modgraph import ModuleGraph

#: Bump to invalidate every cache entry on disk (format changes).
_FORMAT = 2

ENV_CACHE_DIR = "REPRO_ANALYZE_CACHE_DIR"


@dataclass
class CachedAnalysis:
    """An :class:`AnalysisReport` plus the cache decisions behind it."""

    report: AnalysisReport
    hits: list[str] = field(default_factory=list)
    misses: list[str] = field(default_factory=list)


def default_cache_dir() -> Path | None:
    """The env-configured cache directory, or None (cache disabled)."""
    raw = os.environ.get(ENV_CACHE_DIR, "")
    return Path(raw) if raw else None


def _sha(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


def _analyzer_digest() -> str:
    """Hash of the analyzer's own sources: editing a rule is an edit of
    every shard."""
    here = Path(__file__).resolve().parent
    sources = sorted(here.glob("*.py")) + sorted(here.glob("semantic/*.py"))
    return _sha(str(_FORMAT), *(p.read_text() for p in sources))


def _shard_of(path: Path) -> str:
    return str(path.resolve().parent)


def _own_digests(shards: dict[str, list[Path]]) -> dict[str, str]:
    out = {}
    for shard, files in shards.items():
        parts = []
        for f in sorted(files):
            try:
                body = f.read_text()
            except OSError:
                body = "<unreadable>"
            parts.append(f.name)
            parts.append(hashlib.sha256(body.encode()).hexdigest())
        out[shard] = _sha(*parts)
    return out


def _key(
    analyzer: str,
    select_key: str,
    shard: str,
    own: dict[str, str],
    deps: list[str],
) -> str:
    parts = [analyzer, select_key, own.get(shard, "absent")]
    for dep in sorted(deps):
        parts.append(dep)
        parts.append(own.get(dep, "absent"))
    return _sha(*parts)


def _entry_path(cache_dir: Path, shard: str) -> Path:
    return cache_dir / f"{_sha(shard)[:24]}.json"


def _shard_deps(graph: ModuleGraph) -> dict[str, set[str]]:
    """Direct shard -> shard import edges, from resolved module imports."""
    by_name = graph.modules
    shard_for_mod = {
        name: _shard_of(Path(mod.path)) for name, mod in by_name.items()
    }
    edges: dict[str, set[str]] = {}
    for name, mod in by_name.items():
        src_shard = shard_for_mod[name]
        bucket = edges.setdefault(src_shard, set())
        for target in mod.imports.values():
            parts = target.split(".")
            for i in range(len(parts), 0, -1):
                candidate = ".".join(parts[:i])
                if candidate in by_name:
                    dep = shard_for_mod[candidate]
                    if dep != src_shard:
                        bucket.add(dep)
                    break
    return edges


def _transitive(edges: dict[str, set[str]], start: str) -> set[str]:
    seen: set[str] = set()
    todo = list(edges.get(start, ()))
    while todo:
        shard = todo.pop()
        if shard in seen or shard == start:
            continue
        seen.add(shard)
        todo.extend(edges.get(shard, ()))
    return seen


def _subgraph(graph: ModuleGraph, shards: set[str]) -> ModuleGraph:
    sub = ModuleGraph()
    for mod in graph.modules.values():
        if _shard_of(Path(mod.path)) in shards:
            sub._add_module(Path(mod.path), mod.source, mod.tree)
    return sub


def _serialize(findings: list[Finding]) -> list[dict]:
    return [asdict(f) for f in findings]


def _deserialize(rows: list[dict]) -> list[Finding]:
    return [Finding(**row) for row in rows]


def analyze_paths_cached(
    paths,
    select: set[str] | None = None,
    cache_dir: str | Path | None = None,
) -> CachedAnalysis:
    """Shard-wise cached analysis of every ``*.py`` under ``paths``.

    Functionally equivalent to
    :func:`repro.analysis.semantic.analyze_paths` up to the soundness
    cut documented in the module docstring.
    """
    cache = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    if cache is None:
        raise ValueError("analyze_paths_cached requires a cache directory")
    cache.mkdir(parents=True, exist_ok=True)

    files = iter_python_files(paths)
    shards: dict[str, list[Path]] = {}
    for f in files:
        shards.setdefault(_shard_of(f), []).append(f)
    own = _own_digests(shards)
    analyzer = _analyzer_digest()
    select_key = ",".join(sorted(select)) if select else "*"

    entries: dict[str, dict] = {}
    for shard in shards:
        path = _entry_path(cache, shard)
        try:
            entries[shard] = json.loads(path.read_text())
        except (OSError, ValueError):
            continue

    hits, misses = [], []
    for shard in sorted(shards):
        entry = entries.get(shard)
        if entry is not None and entry["key"] == _key(
            analyzer, select_key, shard, own, entry["deps"]
        ):
            hits.append(shard)
        else:
            misses.append(shard)

    shard_of_path = {str(f): _shard_of(f) for f in files}
    shard_of_path.update({str(f.resolve()): _shard_of(f) for f in files})
    fresh: dict[str, dict] = {}
    parse_errors: list[str] = []
    if misses:
        graph = ModuleGraph.load(files)
        parse_errors = list(graph.errors)
        edges = _shard_deps(graph)
        for shard in misses:
            deps = _transitive(edges, shard)
            sub = _subgraph(graph, deps | {shard})
            rep = analyze_graph(sub, select=select)
            mine = [f for f in rep.findings
                    if shard_of_path.get(f.path) == shard]
            sup = [f for f in rep.suppressed
                   if shard_of_path.get(f.path) == shard]
            entry = {
                "id": shard,
                "key": _key(analyzer, select_key, shard, own, sorted(deps)),
                "deps": sorted(deps),
                "findings": _serialize(mine),
                "suppressed": _serialize(sup),
            }
            atomicio.write_json(_entry_path(cache, shard), entry)
            fresh[shard] = entry

    report = AnalysisReport(files=len(files) - len(parse_errors))
    report.errors.extend(parse_errors)
    for shard in sorted(shards):
        entry = fresh.get(shard) or entries.get(shard) or {}
        report.findings.extend(_deserialize(entry.get("findings", [])))
        report.suppressed.extend(_deserialize(entry.get("suppressed", [])))
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return CachedAnalysis(report=report, hits=hits, misses=misses)
