"""Runtime cross-check of the analyzer's purity certificates.

The static effect analysis (:mod:`repro.analysis.semantic.effects`)
certifies methods like ``next_wake``/``can_accept``/``skip_plan`` as
window-invariant: the batching engine may call them once per ready
window, or not at all, without changing simulated state.  Static
analysis has documented blind spots (dynamic dispatch, ``setattr``,
unresolved callees), so this module closes the loop at runtime: with
``REPRO_VERIFY_EFFECTS=1`` every certified call is bracketed by
``det_state()`` snapshots, and a mutation observed across a certified
call raises :class:`EffectViolation` at the exact call instead of
surfacing later as a determinism-chain divergence.

Snapshotting costs a full det_state walk per call, so the check is for
smoke runs and CI, not production sweeps.  ``REPRO_VERIFY_EFFECTS_EVERY=N``
samples every Nth call to cut the overhead.
"""

from __future__ import annotations

import os

ENV_ENABLE = "REPRO_VERIFY_EFFECTS"
ENV_EVERY = "REPRO_VERIFY_EFFECTS_EVERY"

#: Certified window-invariant hooks checked per component kind.
CHANNEL_HOOKS = ("next_wake", "next_wake_window", "pending", "can_accept")
CORE_HOOKS = ("skip_plan",)
HIERARCHY_HOOKS = ("can_accept_store",)


class EffectViolation(AssertionError):
    """A certified-pure method mutated ``det_state()`` at runtime."""


def enabled() -> bool:
    return os.environ.get(ENV_ENABLE, "") not in ("", "0")


def _env_every() -> int:
    raw = os.environ.get(ENV_EVERY, "")
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


def _wrap(obj, method_name: str, state_fn, label: str, every: int) -> None:
    inner = getattr(obj, method_name)
    calls = [0]

    def checked(*args, **kwargs):
        calls[0] += 1
        if calls[0] % every:
            return inner(*args, **kwargs)
        before = tuple(state_fn())
        result = inner(*args, **kwargs)
        after = tuple(state_fn())
        if before != after:
            raise EffectViolation(
                f"{label}.{method_name}() holds a window-invariance "
                f"certificate but changed det_state() during the call; "
                f"the static certificate (see batchability.json) is wrong "
                f"or the mutation is undeclared"
            )
        return result

    checked.__wrapped_for_effects__ = method_name
    setattr(obj, method_name, checked)


def instrument_system(system, every: int | None = None) -> int:
    """Bracket every certified-pure hook on ``system`` with det_state
    snapshots.  Returns the number of methods wrapped."""
    every = _env_every() if every is None else max(1, int(every))
    wrapped = 0
    for channel in system.memory.channels:
        label = f"channel{channel.channel_id}"
        for name in CHANNEL_HOOKS:
            if hasattr(channel, name):
                _wrap(channel, name, channel.det_state, label, every)
                wrapped += 1
    for core in system.cores:
        label = f"core{core.core_id}"
        for name in CORE_HOOKS:
            if hasattr(core, name):
                _wrap(core, name, core.det_state, label, every)
                wrapped += 1
    hierarchy = system.hierarchy
    for name in HIERARCHY_HOOKS:
        if hasattr(hierarchy, name) and hasattr(hierarchy, "det_state"):
            _wrap(hierarchy, name, hierarchy.det_state, "hierarchy", every)
            wrapped += 1
    return wrapped
