"""Shadow JEDEC DDR3 protocol sanitizer.

An independent per-bank/per-rank timing oracle.  When ``REPRO_SANITIZE=1``
every :class:`~repro.dram.controller.ChannelController` attaches one
sanitizer at construction and reports every command it executes
(:meth:`on_activate` / :meth:`on_cas` / :meth:`on_precharge` /
:meth:`on_refresh`).  The sanitizer keeps its *own* command history —
last ACTIVATE / PRECHARGE / CAS per bank, last ACTIVATE and write-data
end per rank, CAS and data-bus state per channel — and re-derives every
Table-3 constraint from that history alone:

===========  ==============================================================
tRCD         ACTIVATE -> first CAS to the same bank
tRC / tRAS   ACTIVATE -> ACTIVATE / ACTIVATE -> PRECHARGE, same bank
tRP          PRECHARGE -> ACTIVATE, same bank
tRRD         ACTIVATE -> ACTIVATE anywhere in the same rank
tFAW         at most four ACTIVATEs to a rank in any rolling window
             (``DramTimings.tFAW``, derived as ``4 * tRRD`` when unset)
tCCD         CAS -> CAS anywhere on the channel
tRTP         READ -> PRECHARGE, same bank
tWR          write data end -> PRECHARGE, same bank (write recovery)
tWTR         write data end -> READ, same rank
tRTRS        data-bus rank switch gap (via the shared bus-queue model)
tCL/tWL      CAS-to-data latency (cross-checked against the controller's
             reported burst-end cycle)
tRFC         REFRESH blocks every bank of its rank for tRFC
tREFI        per-rank refresh cadence (overdue detection)
starvation   no read may wait longer than ``starvation_factor`` times the
             configured promotion cap
===========  ==============================================================

Because none of the shadow state is shared with the controller, banks,
or schedulers, a bug in their bookkeeping cannot also hide the
violation: any disagreement raises :class:`ProtocolViolation` at the
first offending command with both sides' timelines in the message.
"""

from __future__ import annotations

import os
from collections import deque

from repro.config import DramConfig

_NEVER = -(1 << 60)


class ProtocolViolation(AssertionError):
    """A DRAM command violated a JEDEC timing or protocol constraint."""


def sanitize_enabled() -> bool:
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def maybe_attach(controller) -> "ProtocolSanitizer | None":
    """Sanitizer for ``controller`` when ``REPRO_SANITIZE=1``, else None."""
    if not sanitize_enabled():
        return None
    return ProtocolSanitizer(controller.config, channel_id=controller.channel_id)


class _ShadowBank:
    """Independent record of one bank's command history."""

    __slots__ = (
        "open_row", "act_time", "pre_time", "last_read",
        "write_pre_ready", "blocked_until",
    )

    def __init__(self):
        self.open_row: int | None = None
        self.act_time = _NEVER
        self.pre_time = _NEVER
        self.last_read = _NEVER
        self.write_pre_ready = _NEVER  # tWL + burst + tWR after a WRITE
        self.blocked_until = _NEVER    # end of the rank's last REFRESH


class ProtocolSanitizer:
    """Shadow timing oracle for one DRAM channel."""

    def __init__(
        self,
        config: DramConfig,
        channel_id: int = 0,
        starvation_factor: int = 10,
    ):
        self.config = config
        self.channel_id = channel_id
        self.t = config.timings
        ranks = config.ranks_per_channel
        self.banks = [
            [_ShadowBank() for _ in range(config.banks_per_rank)]
            for _ in range(ranks)
        ]
        self.rank_last_act = [_NEVER] * ranks
        # Last four ACTIVATE issue cycles per rank (rolling tFAW window).
        self.rank_act_window = [deque(maxlen=4) for _ in range(ranks)]
        self.rank_write_data_end = [_NEVER] * ranks
        self.rank_last_ref = [0] * ranks
        self.last_cas = _NEVER
        self.bus_free = 0
        self.bus_last_rank = -1
        self.checks = 0
        self.commands = 0
        env = os.environ.get("REPRO_SANITIZE_STARVATION", "")
        factor = int(env) if env else starvation_factor
        self.starvation_limit = factor * config.starvation_cap_dram_cycles
        self.max_read_wait = 0

    # -- internals ----------------------------------------------------------

    def _fail(self, now: int, message: str) -> None:
        raise ProtocolViolation(
            f"channel {self.channel_id} @ DRAM cycle {now}: {message}"
        )

    def _require_gap(self, now, since, gap, name, what) -> None:
        self.checks += 1
        if since != _NEVER and now < since + gap:
            self._fail(
                now,
                f"{name} violated: {what} at cycle {since} requires a "
                f"{gap}-cycle gap, but only {now - since} elapsed",
            )

    # -- observed commands ----------------------------------------------------

    def on_activate(self, rank: int, bank: int, row: int, now: int) -> None:
        self.commands += 1
        shadow = self.banks[rank][bank]
        self.checks += 1
        if shadow.open_row is not None:
            self._fail(
                now,
                f"ACTIVATE to bank ({rank},{bank}) which already has row "
                f"{shadow.open_row} open",
            )
        t = self.t
        self._require_gap(now, shadow.pre_time, t.tRP, "tRP",
                          f"PRECHARGE of bank ({rank},{bank})")
        self._require_gap(now, shadow.act_time, t.tRC, "tRC",
                          f"ACTIVATE of bank ({rank},{bank})")
        self._require_gap(now, self.rank_last_act[rank], t.tRRD, "tRRD",
                          f"ACTIVATE in rank {rank}")
        window = self.rank_act_window[rank]
        self.checks += 1
        if len(window) == 4 and now < window[0] + t.effective_tFAW:
            self._fail(
                now,
                f"tFAW violated: fifth ACTIVATE to rank {rank} only "
                f"{now - window[0]} cycles after the ACTIVATE at "
                f"{window[0]} (window {t.effective_tFAW})",
            )
        self.checks += 1
        if now < shadow.blocked_until:
            self._fail(
                now,
                f"ACTIVATE to bank ({rank},{bank}) during refresh "
                f"(rank blocked until {shadow.blocked_until}, tRFC)",
            )
        shadow.open_row = row
        shadow.act_time = now
        self.rank_last_act[rank] = now
        window.append(now)

    def on_cas(
        self,
        rank: int,
        bank: int,
        row: int,
        now: int,
        is_write: bool,
        data_end: int,
        arrival: int,
    ) -> None:
        self.commands += 1
        shadow = self.banks[rank][bank]
        kind = "WRITE" if is_write else "READ"
        t = self.t
        self.checks += 1
        if shadow.open_row != row:
            self._fail(
                now,
                f"{kind} to ({rank},{bank}) row {row} but shadow open row "
                f"is {shadow.open_row}",
            )
        self._require_gap(now, shadow.act_time, t.tRCD, "tRCD",
                          f"ACTIVATE of bank ({rank},{bank})")
        self._require_gap(now, self.last_cas, t.tCCD, "tCCD", "previous CAS")
        if not is_write:
            self._require_gap(
                now, self.rank_write_data_end[rank], t.tWTR, "tWTR",
                f"write data end in rank {rank}",
            )
        # Shared data bus: replay the controller's bus-queue model and
        # cross-check the burst-end cycle it reported (tCL/tWL/tRTRS/burst).
        data_start = now + (t.tWL if is_write else t.tCL)
        bus_free = self.bus_free
        if self.bus_last_rank not in (-1, rank):
            bus_free += t.tRTRS
        if data_start < bus_free:
            data_start = bus_free
        expected_end = data_start + t.burst_cycles
        self.checks += 1
        if data_end != expected_end:
            self._fail(
                now,
                f"{kind} burst-end mismatch: controller reported cycle "
                f"{data_end}, shadow bus model derives {expected_end} "
                f"(bus free {self.bus_free}, last rank {self.bus_last_rank})",
            )
        if not is_write:
            wait = now - arrival
            if wait > self.max_read_wait:
                self.max_read_wait = wait
            self.checks += 1
            if wait > self.starvation_limit:
                self._fail(
                    now,
                    f"starvation: READ waited {wait} DRAM cycles "
                    f"(limit {self.starvation_limit})",
                )
        self.last_cas = now
        self.bus_free = expected_end
        self.bus_last_rank = rank
        if is_write:
            self.rank_write_data_end[rank] = max(
                self.rank_write_data_end[rank], expected_end
            )
            shadow.write_pre_ready = now + t.tWL + t.burst_cycles + t.tWR
        else:
            shadow.last_read = now

    def on_precharge(self, rank: int, bank: int, now: int) -> None:
        self.commands += 1
        shadow = self.banks[rank][bank]
        t = self.t
        self.checks += 1
        if shadow.open_row is None:
            self._fail(now, f"PRECHARGE of bank ({rank},{bank}) which is closed")
        self._require_gap(now, shadow.act_time, t.tRAS, "tRAS",
                          f"ACTIVATE of bank ({rank},{bank})")
        self._require_gap(now, shadow.last_read, t.tRTP, "tRTP",
                          f"READ from bank ({rank},{bank})")
        self.checks += 1
        if now < shadow.write_pre_ready:
            self._fail(
                now,
                f"tWR violated: PRECHARGE of bank ({rank},{bank}) before "
                f"write recovery completes at {shadow.write_pre_ready}",
            )
        shadow.open_row = None
        shadow.pre_time = now

    def on_refresh(self, rank: int, now: int) -> None:
        self.commands += 1
        t = self.t
        for index, shadow in enumerate(self.banks[rank]):
            self.checks += 1
            if shadow.open_row is not None:
                self._fail(
                    now,
                    f"REFRESH of rank {rank} with bank {index} open "
                    f"(row {shadow.open_row})",
                )
            self._require_gap(now, shadow.pre_time, t.tRP, "tRP",
                              f"PRECHARGE of bank ({rank},{index})")
            self._require_gap(now, shadow.act_time, t.tRC, "tRC",
                              f"ACTIVATE of bank ({rank},{index})")
            self.checks += 1
            if now < shadow.blocked_until:
                self._fail(
                    now,
                    f"REFRESH of rank {rank} before the previous refresh "
                    f"completes at {shadow.blocked_until} (tRFC)",
                )
        self._check_refresh_cadence(rank, now)
        done = now + t.tRFC
        for shadow in self.banks[rank]:
            shadow.blocked_until = done
        self.rank_last_ref[rank] = now

    def _check_refresh_cadence(self, rank: int, now: int) -> None:
        """Per-rank tREFI cadence: a rank must not go unrefreshed too long.

        Rank deadlines are staggered across the first interval and a due
        refresh may slip while open banks drain, so the hard bound is two
        full intervals plus a drain allowance.
        """
        interval = self.t.refresh_interval_cycles
        allowance = 2 * interval + self.t.tRFC + 64
        self.checks += 1
        gap = now - self.rank_last_ref[rank]
        if gap > allowance:
            self._fail(
                now,
                f"refresh overdue: rank {rank} last refreshed at "
                f"{self.rank_last_ref[rank]}, {gap} cycles ago "
                f"(tREFI={interval}, allowed {allowance})",
            )

    # -- end of run ------------------------------------------------------------

    def finish(self, now: int) -> None:
        """End-of-run check: no rank may end the run overdue for refresh."""
        interval = self.t.refresh_interval_cycles
        allowance = 2 * interval + self.t.tRFC + 64
        for rank, last in enumerate(self.rank_last_ref):
            self.checks += 1
            if now - last > allowance:
                self._fail(
                    now,
                    f"run ended with rank {rank} overdue for refresh: last "
                    f"refresh at {last}, {now - last} cycles ago "
                    f"(tREFI={interval}, allowed {allowance})",
                )
