"""Shared suppression parsing for the lint and semantic analysis passes.

Both ``repro.analysis.lint`` (per-line syntactic rules) and
``repro.analysis.semantic`` (whole-program passes) honour the same
comment grammar, so a finding from either tool is silenced the same way:

``# repro-lint: disable=<rule>[,<rule>...]``
    Trailing on the offending line, or on a standalone comment line
    directly above it.  ``disable=all`` silences every rule.

``# repro-lint: disable-file=<rule>[,<rule>...]``
    File-wide: silences the listed rules everywhere in the file.
    Conventionally placed in the module header (before the first
    statement), but recognised on any standalone comment line.

Anything after the rule list on the same comment is treated as
rationale.  Rule names that are not registered by any pass are
themselves reported (``SUP001``): a typo in a suppression would
otherwise silently stop suppressing after a rule rename.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,]+|all)")
_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,]+|all)")

#: Rule id reported for unknown rule names inside suppression comments.
SUP001 = "SUP001"


def _split_rules(group: str) -> set[str]:
    return {r.strip().upper() for r in group.split(",") if r.strip()}


@dataclass
class SuppressionMap:
    """Parsed suppression directives for one source file."""

    #: line number -> rule ids disabled on that line.
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: rule ids disabled for the whole file.
    file_wide: set[str] = field(default_factory=set)
    #: every ``(line, rule)`` mentioned by any directive, for auditing.
    mentions: list[tuple[int, str]] = field(default_factory=list)

    def disabled(self, line: int, rule: str) -> bool:
        """Is ``rule`` suppressed at ``line``?"""
        if "ALL" in self.file_wide or rule in self.file_wide:
            return True
        rules = self.by_line.get(line)
        return bool(rules) and ("ALL" in rules or rule in rules)

    def unknown_mentions(self, known: set[str]) -> list[tuple[int, str]]:
        """``(line, rule)`` pairs naming rules no pass registers."""
        return [
            (line, rule)
            for line, rule in self.mentions
            if rule != "ALL" and rule not in known
        ]


def parse_suppressions(source: str) -> SuppressionMap:
    """Parse every suppression directive in ``source``.

    A standalone line-level comment covers the next line as well as its
    own; a trailing comment covers only its line.  File-level directives
    apply everywhere regardless of position.
    """
    smap = SuppressionMap()
    for lineno, text in enumerate(source.splitlines(), start=1):
        fmatch = _FILE_RE.search(text)
        if fmatch:
            rules = _split_rules(fmatch.group(1))
            smap.file_wide.update(rules)
            smap.mentions.extend((lineno, rule) for rule in sorted(rules))
        match = _LINE_RE.search(text)
        if not match:
            continue
        rules = _split_rules(match.group(1))
        smap.mentions.extend((lineno, rule) for rule in sorted(rules))
        smap.by_line.setdefault(lineno, set()).update(rules)
        if text.lstrip().startswith("#"):  # standalone: covers the next line
            smap.by_line.setdefault(lineno + 1, set()).update(rules)
    return smap


def known_rule_ids() -> set[str]:
    """Every rule id registered by any analysis pass (lazy import)."""
    from . import lint
    from .semantic import driver

    known = set(lint.RULES_BY_ID)
    known.update(driver.SEMANTIC_RULES)
    known.add(SUP001)
    return known
