"""Correctness tooling for the simulator (machine-checked, not reviewed).

Three independent sanitizers guard the reproduction as it scales:

* :mod:`repro.analysis.lint` — a custom AST lint pass over ``src/repro``
  that flags simulator-specific hazards (nondeterminism sources, float
  arithmetic on cycle counters, frozen-config mutation, schedulers
  bypassing the ``sched.base`` interface, silent exception handling).
  CLI: ``python -m repro lint`` / ``tools/lint.py``.
* :mod:`repro.analysis.protocol` — a shadow JEDEC DDR3 timing oracle
  that, under ``REPRO_SANITIZE=1``, observes every command the channel
  controllers issue and re-checks every Table-3 constraint from its own
  bookkeeping, so a scheduler or controller bug cannot self-certify.
* :mod:`repro.analysis.detchain` — a rolling FNV-1a hash-chain of
  architectural state sampled every N cycles, recorded on every
  :class:`~repro.sim.stats.SimResult` and compared by
  ``python -m repro check-determinism`` to pin down skip-vs-naive and
  cross-process divergence to a cycle window.
"""

from __future__ import annotations

from repro.analysis.detchain import DetChain, first_divergence
from repro.analysis.lint import lint_paths, lint_source
from repro.analysis.protocol import ProtocolSanitizer, ProtocolViolation

__all__ = [
    "DetChain",
    "first_divergence",
    "lint_paths",
    "lint_source",
    "ProtocolSanitizer",
    "ProtocolViolation",
]
