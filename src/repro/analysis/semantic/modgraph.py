"""Module graph loader: parse a project into a cross-module class index.

The semantic passes need to answer questions a single-file AST cannot:
"what class does ``CritCasRasScheduler`` inherit ``select`` from?",
"which ``det_state`` methods exist anywhere in the program?".  This
module parses every python file under the analysis roots, derives each
file's dotted module name from its package position (walking up the
``__init__.py`` chain, so a copied tree analyzes identically wherever it
lives on disk), records import bindings, and indexes top-level classes
and functions so bases can be resolved across modules and a static MRO
linearized.

The graph is purely syntactic — nothing is imported or executed — so it
is safe to point the analyzer at fixture files that deliberately violate
the simulator's contracts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: "ModuleInfo"
    cls: "ClassInfo | None" = None

    @property
    def params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs]
        names += [a.arg for a in args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names += [a.arg for a in args.kwonlyargs]
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """One top-level class definition."""

    name: str
    qualname: str
    node: ast.ClassDef
    module: "ModuleInfo"
    #: Base expressions as dotted strings (e.g. ``"Scheduler"``,
    #: ``"base.Scheduler"``); non-name bases are dropped.
    base_names: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Names assigned at class scope (class attributes).
    class_attrs: set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str
    path: str
    source: str
    tree: ast.Module
    #: local alias -> dotted target (``from a.b import C as D`` maps
    #: ``D -> "a.b.C"``; ``import a.b as m`` maps ``m -> "a.b"``).
    imports: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` expression -> ``"a.b.c"``; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the ``__init__.py`` chain.

    ``.../src/repro/dram/bank.py`` -> ``repro.dram.bank`` regardless of
    where the tree sits on disk, because the walk stops at the first
    ancestor directory without an ``__init__.py``.
    """
    path = path.resolve()
    parts = [] if path.name == "__init__.py" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


def _resolve_relative(module: str, level: int, target: str | None) -> str:
    """Absolute module named by a ``from ...x import y`` statement."""
    base = module.split(".")
    # Level 1 = current package: for a module ``a.b.c`` that is ``a.b``.
    base = base[: len(base) - level] if level <= len(base) else []
    if target:
        base.append(target)
    return ".".join(base)


class ModuleGraph:
    """Index of every module, class and function under the roots."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        #: qualified class name -> info, plus bare-name buckets for
        #: tolerant resolution when imports can't be traced.
        self.classes: dict[str, ClassInfo] = {}
        self._by_bare_name: dict[str, list[ClassInfo]] = {}
        self.errors: list[str] = []

    # ------------------------------------------------------------ loading

    @classmethod
    def load(cls, files: list[Path]) -> "ModuleGraph":
        graph = cls()
        for path in files:
            try:
                source = path.read_text()
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError) as exc:
                graph.errors.append(f"{path}: {exc}")
                continue
            graph._add_module(path, source, tree)
        return graph

    def _add_module(self, path: Path, source: str, tree: ast.Module) -> None:
        name = module_name_for(path)
        mod = ModuleInfo(name=name, path=str(path), source=source, tree=tree)
        for node in tree.body:
            self._collect(mod, node)
        self.modules[name] = mod

    def _collect(self, mod: ModuleInfo, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for item in node.names:
                alias = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else item.name.split(".")[0]
                mod.imports[alias] = target
        elif isinstance(node, ast.ImportFrom):
            src = (
                _resolve_relative(mod.name, node.level, node.module)
                if node.level
                else (node.module or "")
            )
            for item in node.names:
                if item.name == "*":
                    continue
                mod.imports[item.asname or item.name] = f"{src}.{item.name}"
        elif isinstance(node, ast.ClassDef):
            info = ClassInfo(
                name=node.name,
                qualname=f"{mod.name}.{node.name}",
                node=node,
                module=mod,
            )
            for base in node.bases:
                dotted = _dotted(base)
                if dotted:
                    info.base_names.append(dotted)
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[stmt.name] = FunctionInfo(
                        name=stmt.name,
                        qualname=f"{info.qualname}.{stmt.name}",
                        node=stmt,
                        module=mod,
                        cls=info,
                    )
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            info.class_attrs.add(target.id)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    info.class_attrs.add(stmt.target.id)
            mod.classes[node.name] = info
            self.classes[info.qualname] = info
            self._by_bare_name.setdefault(node.name, []).append(info)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mod.functions[node.name] = FunctionInfo(
                name=node.name,
                qualname=f"{mod.name}.{node.name}",
                node=node,
                module=mod,
            )
        elif isinstance(node, ast.If):
            # TYPE_CHECKING / version guards: collect both arms.
            for stmt in node.body + node.orelse:
                self._collect(mod, stmt)
        elif isinstance(node, ast.Try):
            for stmt in node.body + node.finalbody:
                self._collect(mod, stmt)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._collect(mod, stmt)

    # ---------------------------------------------------------- resolution

    def resolve_class(self, mod: ModuleInfo, dotted: str) -> ClassInfo | None:
        """Resolve a dotted name used in ``mod`` to a class in the graph."""
        head, _, rest = dotted.partition(".")
        candidates = []
        if head in mod.imports:
            candidates.append(
                mod.imports[head] + ("." + rest if rest else "")
            )
        candidates.append(f"{mod.name}.{dotted}")
        candidates.append(dotted)
        for cand in candidates:
            if cand in self.classes:
                return self.classes[cand]
        # Last resort: a unique bare name anywhere in the graph.  Covers
        # re-exports (``from repro.sched import Scheduler`` via a
        # package __init__) without tracing the chain.
        bare = dotted.rsplit(".", 1)[-1]
        bucket = self._by_bare_name.get(bare, [])
        if len(bucket) == 1:
            return bucket[0]
        return None

    def mro(self, cls: ClassInfo) -> list[ClassInfo]:
        """Static linearization: depth-first, keep-first, cycle-safe.

        Not full C3, but faithful for the single-inheritance chains the
        simulator uses; unresolvable bases are skipped silently.
        """
        order: list[ClassInfo] = []
        seen: set[str] = set()

        def visit(c: ClassInfo) -> None:
            if c.qualname in seen:
                return
            seen.add(c.qualname)
            order.append(c)
            for base in c.base_names:
                resolved = self.resolve_class(c.module, base)
                if resolved is not None:
                    visit(resolved)

        visit(cls)
        return order

    def lookup_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Resolve a method through the static MRO."""
        for c in self.mro(cls):
            if name in c.methods:
                return c.methods[name]
        return None

    def is_subclass_of(self, cls: ClassInfo, bare_base: str) -> bool:
        """Does any class named ``bare_base`` appear in the static MRO?"""
        return any(c.name == bare_base for c in self.mro(cls))

    def all_classes(self) -> list[ClassInfo]:
        return [
            self.classes[q] for q in sorted(self.classes)
        ]

    def all_functions(self) -> list[FunctionInfo]:
        """Every function and method in the graph, sorted by qualname."""
        out: list[FunctionInfo] = []
        for mod_name in sorted(self.modules):
            mod = self.modules[mod_name]
            out.extend(mod.functions[k] for k in sorted(mod.functions))
            for cls_name in sorted(mod.classes):
                cls = mod.classes[cls_name]
                out.extend(cls.methods[k] for k in sorted(cls.methods))
        return out
