"""Interprocedural effect & purity inference (SEM030–SEM032).

The ROADMAP's next speed lever is batching the per-cycle model calls
(core dispatch/commit, hierarchy stepping, controller accounting) over
whole ready-windows — but every such shortcut must preserve the
bit-identity gate.  Rather than hand-arguing each transform, this pass
computes a per-method *effect summary* over a small lattice and derives
machine-checkable **batchability certificates** from it:

====================  ====================================================
PURE                  no writes reachable from ``self`` or foreign
                      objects, no randomness, no io
READS / MUTATES{f}    attribute roots read are free; attribute roots
                      *written* (``self.f``, including through local
                      aliases and container mutators) are recorded
RNG                   a call drawing from a random stream (``self._rng``,
                      the ``random`` module)
IO                    ``open``/``print``/``input`` reached
CYCLE-DEPENDENT       reads a clock (``now``/``cpu_now``/``dram_now``
                      parameters, ``self._now``) — informational: a pure
                      function *of* the clock is still window-invariant
                      because the caller fixes the argument
====================  ====================================================

Summaries are computed by fixpoint over the call graph: ``self.x()``
merges the callee's effects directly; calls on receivers whose class is
known by convention (:data:`~repro.analysis.semantic.domains.VAR_CLASS_SEEDS`,
loop targets over seeded attributes) fold the callee's self-mutations in
as *foreign* effects, preserving monotonicity — so
``MemorySystem.fast_forward`` inherits ``account_idle``'s
monotone-accumulating character instead of degrading to unknown.

From the summary each per-cycle hook is classified (see
:func:`classify`):

* ``window-invariant`` — no mutation/rng/io: safe to evaluate once per
  ready-window;
* ``monotone-accumulating`` — every mutation is an additive
  accumulation (``+=``), so a batched call can fold the window in
  closed form;
* ``per-cycle-only`` — anything else.

Rules:

=========  =============================================================
SEM030     a certified-pure method (``det_state``, ``next_wake``,
           ``skip_plan``, ``can_accept``…) has an undeclared effect —
           the batching certificate it anchors would be wrong
SEM031     randomness or io inside per-cycle model code (``step``,
           ``select``, dispatch/commit…) — nondeterminism or host
           interaction on the hot path
SEM032     a ``# repro-batch: cert=<Class.method>`` marker (written
           without the angle brackets) cites a method whose *current*
           summary is per-cycle-only (or that does not exist) — the
           batching shortcut is not backed by a certificate
=========  =============================================================

Soundness caveats (deliberate, documented): receivers the seeds cannot
type and attribute chains like ``self.tracer.note(...)`` are assumed
effect-free; dispatch is resolved through the *static* receiver class,
so an override that adds effects behind a base-typed reference is not
seen.  The runtime cross-check (``REPRO_VERIFY_EFFECTS=1``, see
:mod:`repro.analysis.effectcheck`) closes exactly that gap by
det_state-snapshotting around certified calls on a live run.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.lint import Finding
from repro.analysis.semantic.detcov import (
    MUTATORS,
    _is_target,
    _root_self_attr,
)
from repro.analysis.semantic.domains import VAR_CLASS_SEEDS
from repro.analysis.semantic.modgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleGraph,
)

SEM030 = "SEM030"
SEM031 = "SEM031"
SEM032 = "SEM032"

#: Certificate classifications (see :func:`classify`).
WINDOW_INVARIANT = "window-invariant"
MONOTONE_ACCUMULATING = "monotone-accumulating"
PER_CYCLE_ONLY = "per-cycle-only"

#: Methods expected PURE/READS wherever they appear on an audited
#: simulator class: the batching layer may evaluate them once per
#: ready-window, so any effect invalidates the certificate (SEM030).
CERTIFIED_PURE_METHODS = {
    "det_state", "det_state_scan", "next_wake", "next_wake_window",
    "skip_plan", "can_accept", "can_accept_store", "pending",
    "pre_admissible", "admissible", "oldest", "peek", "wake_cpu",
}

#: Per-cycle model hooks: called every busy cycle, so randomness or io
#: inside one poisons determinism/performance on the hot path (SEM031).
PER_CYCLE_HOOKS = {
    "step", "step_event", "step_window", "select", "load", "store",
    "lookup", "tick", "on_command", "on_enqueue", "account_idle",
    "account_window", "presettle", "_do_dispatch", "_do_commit",
    "_do_load_issues", "_do_dispatch_window", "_do_commit_window",
    "_execute", "_build_candidates", "_service_refresh",
}

#: Name-chain parts marking a call as drawing randomness.
_RNG_TOKENS = {"rng", "_rng"}

#: Bare calls that reach host io.
_IO_CALLS = {"open", "print", "input"}

#: Names whose load marks a function cycle-dependent.
_CLOCK_NAMES = {"now", "cpu_now", "dram_now"}

#: ``# repro-batch: cert=<Class.method>`` (no angle brackets) — a
#: batching shortcut citing the certificate that justifies it.
_MARKER_RE = re.compile(r"#\s*repro-batch:\s*cert=([A-Za-z_][\w.]*)")

_MAX_ROUNDS = 10


@dataclass(frozen=True)
class FnEffects:
    """One function's effect summary."""

    #: ``self``-attribute roots written (directly, through aliases, or
    #: via in-place container mutators), including by self-calls.
    mutates: frozenset = frozenset()
    #: ``Receiver.attr`` descriptions of writes to foreign objects
    #: (parameters, seeded receivers, resolved foreign calls).
    foreign: frozenset = frozenset()
    rng: bool = False
    io: bool = False
    cycle: bool = False
    #: True when any recorded mutation is not an additive accumulation.
    nonmonotone: bool = False

    @property
    def pure(self) -> bool:
        return not (self.mutates or self.foreign or self.rng or self.io)

    def describe(self) -> str:
        parts = []
        if self.mutates:
            parts.append("mutates self." + ", self.".join(sorted(self.mutates)))
        if self.foreign:
            parts.append("mutates " + ", ".join(sorted(self.foreign)))
        if self.rng:
            parts.append("draws randomness")
        if self.io:
            parts.append("performs io")
        return "; ".join(parts) or "pure"


def classify(eff: FnEffects) -> str:
    """Certificate class for one effect summary.

    Cycle-dependence does not demote a method: a pure function of
    ``now`` re-evaluates identically for a fixed argument, which is
    what window batching needs.
    """
    if eff.rng or eff.io:
        return PER_CYCLE_ONLY
    if not eff.mutates and not eff.foreign:
        return WINDOW_INVARIANT
    if not eff.nonmonotone:
        return MONOTONE_ACCUMULATING
    return PER_CYCLE_ONLY


def _call_chain(node: ast.AST) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


class _EffectScan:
    """One function's *local* effect extraction plus its call edges.

    The AST is walked exactly once; interprocedural propagation happens
    afterwards, as a cheap fixpoint over the collected edges (see
    :func:`infer_effects`).
    """

    def __init__(self, graph: ModuleGraph, func: FunctionInfo) -> None:
        self.graph = graph
        self.func = func
        #: (callee qualname, foreign receiver class name or None).
        self.calls: list[tuple[str, str | None]] = []
        self.mutates: set[str] = set()
        self.foreign: set[str] = set()
        self.rng = False
        self.io = False
        self.cycle = False
        self.nonmonotone = False
        self.aliases = self._self_aliases()
        self.var_classes = self._var_classes()
        params = set(func.params) - {"self", "cls"}
        self.foreign_roots = params | set(VAR_CLASS_SEEDS) | set(
            self.var_classes
        )

    # ------------------------------------------------------------- aliases

    def _self_aliases(self) -> dict[str, set[str]]:
        """Local name -> root self attributes it may alias
        (``wakes = self._chan_wake`` makes ``wakes[ch] = x`` a mutation
        of ``_chan_wake``).  Roots accumulate across rebinds, so the
        fixpoint is monotone and flow-insensitivity stays conservative.
        """
        aliases: dict[str, set[str]] = {}
        changed = True
        while changed:
            changed = False
            for node in ast.walk(self.func.node):
                if not isinstance(node, ast.Assign):
                    continue
                roots = self._value_roots(node.value, aliases)
                if not roots:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        have = aliases.setdefault(target.id, set())
                        if not roots <= have:
                            have |= roots
                            changed = True
        return aliases

    @staticmethod
    def _value_roots(
        node: ast.AST, aliases: dict[str, set[str]]
    ) -> set[str]:
        root = _root_self_attr(node)
        if root is not None:
            return {root}
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            return set(aliases.get(node.id, ()))
        return set()

    def _var_classes(self) -> dict[str, str]:
        """Local name -> bare class name, from loop targets and assigns
        over seeded attributes (``for chan in self.channels``)."""
        out: dict[str, str] = {}
        for node in ast.walk(self.func.node):
            if isinstance(node, ast.For):
                bare = self._seed_of(node.iter)
                if bare and isinstance(node.target, ast.Name):
                    out[node.target.id] = bare
            elif isinstance(node, ast.Assign):
                bare = self._seed_of(node.value)
                if bare:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            out[target.id] = bare
        return out

    @staticmethod
    def _seed_of(node: ast.AST) -> str | None:
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            return VAR_CLASS_SEEDS.get(node.attr)
        if isinstance(node, ast.Name):
            return VAR_CLASS_SEEDS.get(node.id)
        return None

    def _receiver_class(self, node: ast.AST) -> ClassInfo | None:
        if isinstance(node, ast.Name):
            if node.id == "self" and self.func.cls is not None:
                return self.func.cls
            bare = self.var_classes.get(node.id) or VAR_CLASS_SEEDS.get(
                node.id
            )
        elif isinstance(node, ast.Attribute):
            bare = VAR_CLASS_SEEDS.get(node.attr)
        elif isinstance(node, ast.Subscript):
            return self._receiver_class(node.value)
        else:
            bare = None
        if bare is None:
            return None
        return self.graph.resolve_class(self.func.module, bare)

    # ----------------------------------------------------------- recording

    def _store_roots(self, target: ast.AST) -> set[str]:
        """Root self attributes a store mutates (empty when not rooted
        at ``self`` or an alias of it)."""
        root = _root_self_attr(target)
        if root is not None:
            return {root}
        node = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            return set(self.aliases.get(node.id, ()))
        return set()

    def _foreign_desc(self, target: ast.AST) -> str | None:
        """``recv.attr`` description when the store roots at a foreign
        object (parameter or seeded receiver)."""
        node = target
        attr: str | None = None
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                attr = node.attr
            node = node.value
        if (
            isinstance(node, ast.Name)
            and node.id != "self"
            and node.id in self.foreign_roots
        ):
            return f"{node.id}.{attr}" if attr else f"{node.id}[...]"
        return None

    def _record_store(self, target: ast.AST, monotone: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt, monotone)
            return
        if isinstance(target, ast.Name):
            return  # local rebind, not an object mutation
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        roots = self._store_roots(target)
        if roots:
            self.mutates |= roots
            if not monotone:
                self.nonmonotone = True
            return
        desc = self._foreign_desc(target)
        if desc is not None:
            self.foreign.add(desc)
            if not monotone:
                self.nonmonotone = True

    def _merge_callee(
        self, callee: FunctionInfo, foreign_recv: str | None
    ) -> None:
        self.calls.append((callee.qualname, foreign_recv))

    def _record_call(self, node: ast.Call) -> None:
        fn = node.func
        chain = _call_chain(fn)
        if chain and (
            any(part in _RNG_TOKENS for part in chain)
            or chain[0] == "random"
        ):
            self.rng = True
        if isinstance(fn, ast.Name):
            if fn.id in _IO_CALLS:
                self.io = True
            mod = self.func.module
            callee = mod.functions.get(fn.id)
            if callee is None:
                target = mod.imports.get(fn.id)
                if target:
                    owner, _, name = target.rpartition(".")
                    owner_mod = self.graph.modules.get(owner)
                    if owner_mod:
                        callee = owner_mod.functions.get(name)
            if callee is not None:
                self._merge_callee(callee, foreign_recv=None)
            return
        if not isinstance(fn, ast.Attribute):
            return
        if fn.attr in MUTATORS:
            roots = self._store_roots(fn.value)
            if roots:
                self.mutates |= roots
                self.nonmonotone = True
            else:
                desc = self._foreign_desc(fn.value)
                if desc is not None:
                    self.foreign.add(f"{desc}.{fn.attr}()")
                    self.nonmonotone = True
            return
        recv = fn.value
        if isinstance(recv, ast.Name) and recv.id == "self":
            if self.func.cls is not None:
                callee = self.graph.lookup_method(self.func.cls, fn.attr)
                if callee is not None:
                    self._merge_callee(callee, foreign_recv=None)
            return
        rcls = self._receiver_class(recv)
        if rcls is not None:
            callee = self.graph.lookup_method(rcls, fn.attr)
            if callee is not None:
                self._merge_callee(callee, foreign_recv=rcls.name)

    # ----------------------------------------------------------------- run

    def run(self) -> FnEffects:
        for node in ast.walk(self.func.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._record_store(target, monotone=False)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._record_store(node.target, monotone=False)
            elif isinstance(node, ast.AugAssign):
                self._record_store(
                    node.target, monotone=isinstance(node.op, ast.Add)
                )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._record_store(target, monotone=False)
            elif isinstance(node, ast.Call):
                self._record_call(node)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                if node.id in _CLOCK_NAMES:
                    self.cycle = True
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                if node.attr == "_now":
                    self.cycle = True
        return FnEffects(
            mutates=frozenset(self.mutates),
            foreign=frozenset(self.foreign),
            rng=self.rng,
            io=self.io,
            cycle=self.cycle,
            nonmonotone=self.nonmonotone,
        )


def infer_effects(graph: ModuleGraph) -> dict[str, FnEffects]:
    """Fixpoint effect summaries for every function in the graph.

    Each function's AST is scanned once for local effects and call
    edges; summaries then propagate over the edges until stable (the
    lattice is finite and the merge monotone, so the round cap is a
    backstop, not a correctness device).
    """
    local: dict[str, FnEffects] = {}
    edges: dict[str, list[tuple[str, str | None]]] = {}
    functions = graph.all_functions()
    for func in functions:
        scan = _EffectScan(graph, func)
        local[func.qualname] = scan.run()
        edges[func.qualname] = scan.calls
    table = dict(local)
    order = [func.qualname for func in functions]
    for _ in range(_MAX_ROUNDS):
        changed = False
        for qualname in order:
            base = local[qualname]
            mutates = set(base.mutates)
            foreign = set(base.foreign)
            rng, io = base.rng, base.io
            cycle, nonmono = base.cycle, base.nonmonotone
            for callee, recv in edges[qualname]:
                eff = table.get(callee)
                if eff is None:
                    continue
                if recv is None:
                    mutates |= eff.mutates
                else:
                    foreign |= {f"{recv}.{attr}" for attr in eff.mutates}
                foreign |= eff.foreign
                rng = rng or eff.rng
                io = io or eff.io
                cycle = cycle or eff.cycle
                nonmono = nonmono or eff.nonmonotone
            eff = FnEffects(
                mutates=frozenset(mutates),
                foreign=frozenset(foreign),
                rng=rng, io=io, cycle=cycle, nonmonotone=nonmono,
            )
            if table[qualname] != eff:
                table[qualname] = eff
                changed = True
        if not changed:
            break
    return table


def method_effects(
    graph: ModuleGraph,
    table: dict[str, FnEffects],
    cls: ClassInfo,
    name: str,
) -> FnEffects | None:
    """Effects of ``cls.name`` resolved through the static MRO."""
    func = graph.lookup_method(cls, name)
    if func is None:
        return None
    return table.get(func.qualname, FnEffects())


class EffectPass:
    """SEM030–SEM032: effect/purity contracts on the per-cycle path."""

    ids = (SEM030, SEM031, SEM032)

    def run(self, graph: ModuleGraph) -> list[Finding]:
        table = infer_effects(graph)
        findings: list[Finding] = []
        findings.extend(self._check_certified(graph, table))
        findings.extend(self._check_hooks(graph, table))
        findings.extend(self._check_markers(graph, table))
        return findings

    # ------------------------------------------------------------- SEM030

    def _check_certified(
        self, graph: ModuleGraph, table: dict[str, FnEffects]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for cls in graph.all_classes():
            if not _is_target(graph, cls):
                continue
            for name in sorted(CERTIFIED_PURE_METHODS):
                func = cls.methods.get(name)
                if func is None:
                    continue
                eff = table.get(func.qualname, FnEffects())
                if eff.pure:
                    continue
                findings.append(
                    Finding(
                        rule=SEM030,
                        path=cls.module.path,
                        line=func.node.lineno,
                        col=func.node.col_offset,
                        message=(
                            f"{cls.name}.{name}() sits on a certified-pure "
                            f"path but {eff.describe()}; a batching "
                            f"certificate anchored here would be wrong"
                        ),
                    )
                )
        return findings

    # ------------------------------------------------------------- SEM031

    def _check_hooks(
        self, graph: ModuleGraph, table: dict[str, FnEffects]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for cls in graph.all_classes():
            if not _is_target(graph, cls):
                continue
            for name in sorted(PER_CYCLE_HOOKS):
                func = cls.methods.get(name)
                if func is None:
                    continue
                eff = table.get(func.qualname, FnEffects())
                if not (eff.rng or eff.io):
                    continue
                what = []
                if eff.rng:
                    what.append("draws randomness")
                if eff.io:
                    what.append("performs io")
                findings.append(
                    Finding(
                        rule=SEM031,
                        path=cls.module.path,
                        line=func.node.lineno,
                        col=func.node.col_offset,
                        message=(
                            f"{cls.name}.{name}() {' and '.join(what)} on "
                            f"the per-cycle path; model hooks must be "
                            f"deterministic and io-free (seeded streams "
                            f"need a suppression with rationale)"
                        ),
                    )
                )
        return findings

    # ------------------------------------------------------------- SEM032

    def _check_markers(
        self, graph: ModuleGraph, table: dict[str, FnEffects]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for mod_name in sorted(graph.modules):
            mod = graph.modules[mod_name]
            for lineno, text in enumerate(mod.source.splitlines(), start=1):
                match = _MARKER_RE.search(text)
                if not match:
                    continue
                ref = match.group(1)
                eff = self._resolve_ref(graph, mod, ref, table)
                if eff is None:
                    findings.append(
                        Finding(
                            rule=SEM032,
                            path=mod.path,
                            line=lineno,
                            col=0,
                            message=(
                                f"batching marker cites {ref!r}, which "
                                f"resolves to no method in the analyzed "
                                f"program; the shortcut has no certificate"
                            ),
                        )
                    )
                elif classify(eff) == PER_CYCLE_ONLY:
                    findings.append(
                        Finding(
                            rule=SEM032,
                            path=mod.path,
                            line=lineno,
                            col=0,
                            message=(
                                f"batching marker cites {ref!r}, whose "
                                f"current effect summary is per-cycle-only "
                                f"({eff.describe()}); the shortcut is not "
                                f"backed by a certificate"
                            ),
                        )
                    )
        return findings

    @staticmethod
    def _resolve_ref(graph, mod, ref, table) -> FnEffects | None:
        cls_name, _, meth_name = ref.rpartition(".")
        if not cls_name:
            return None
        cls = graph.resolve_class(mod, cls_name)
        if cls is None:
            return None
        func = graph.lookup_method(cls, meth_name)
        if func is None:
            return None
        return table.get(func.qualname, FnEffects())
