"""Per-function control-flow graph builder.

Each CFG node holds one statement (simulator methods are small, so
statement granularity beats basic blocks for diagnosability: a finding
can point at the exact statement on the offending path).  Branch and
loop statements become *header* nodes holding only their test/iterable;
their bodies hang off the header as successor chains.  ``return`` and
``raise`` edges go to the synthetic exit node.

The builder is deliberately conservative: ``try`` blocks connect
handlers from both the pre-body and post-body frontier (an exception may
fire anywhere inside), and unreachable code after a ``return`` is simply
dropped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
BRANCH = "branch"
LOOP = "loop"


@dataclass
class Node:
    """One CFG node: a statement, a branch/loop header, or entry/exit."""

    idx: int
    kind: str
    stmt: ast.AST | None = None
    succs: list["Node"] = field(default_factory=list)
    preds: list["Node"] = field(default_factory=list)

    def __hash__(self) -> int:
        return self.idx

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.idx == self.idx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        line = getattr(self.stmt, "lineno", "-")
        return f"<Node {self.idx} {self.kind} L{line}>"


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.nodes: list[Node] = []
        self.entry = self._node(ENTRY)
        self.exit = self._node(EXIT)

    def _node(self, kind: str, stmt: ast.AST | None = None) -> Node:
        node = Node(idx=len(self.nodes), kind=kind, stmt=stmt)
        self.nodes.append(node)
        return node

    def _edge(self, src: Node, dst: Node) -> None:
        if dst not in src.succs:
            src.succs.append(dst)
            dst.preds.append(src)

    def returns(self) -> list[Node]:
        """Every node holding a ``return`` statement."""
        return [
            n for n in self.nodes
            if n.kind == STMT and isinstance(n.stmt, ast.Return)
        ]


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        # Stack of (loop-header, break-collector) for break/continue.
        self._loops: list[tuple[Node, list[Node]]] = []

    def build(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        exits = self._seq(fn.body, [self.cfg.entry])
        for node in exits:
            self.cfg._edge(node, self.cfg.exit)
        return self.cfg

    # ``preds`` is the incoming frontier; returns the outgoing frontier.
    def _seq(self, stmts: list[ast.stmt], preds: list[Node]) -> list[Node]:
        for stmt in stmts:
            if not preds:
                break  # unreachable code after return/raise/break
            preds = self._stmt(stmt, preds)
        return preds

    def _stmt(self, stmt: ast.stmt, preds: list[Node]) -> list[Node]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            header = cfg._node(BRANCH, stmt)
            for p in preds:
                cfg._edge(p, header)
            then_exits = self._seq(stmt.body, [header])
            else_exits = (
                self._seq(stmt.orelse, [header]) if stmt.orelse else [header]
            )
            return then_exits + else_exits
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            header = cfg._node(LOOP, stmt)
            for p in preds:
                cfg._edge(p, header)
            breaks: list[Node] = []
            self._loops.append((header, breaks))
            body_exits = self._seq(stmt.body, [header])
            self._loops.pop()
            for node in body_exits:
                cfg._edge(node, header)  # back edge
            after = (
                self._seq(stmt.orelse, [header]) if stmt.orelse else [header]
            )
            return after + breaks
        if isinstance(stmt, ast.Try):
            body_exits = self._seq(stmt.body, preds)
            frontier = list(preds) + body_exits
            handler_exits: list[Node] = []
            for handler in stmt.handlers:
                handler_exits += self._seq(handler.body, list(frontier))
            else_exits = (
                self._seq(stmt.orelse, body_exits)
                if stmt.orelse
                else body_exits
            )
            out = else_exits + handler_exits
            if stmt.finalbody:
                out = self._seq(stmt.finalbody, out)
            return out
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            header = cfg._node(STMT, stmt)
            for p in preds:
                cfg._edge(p, header)
            return self._seq(stmt.body, [header])
        if isinstance(stmt, ast.Match):
            header = cfg._node(BRANCH, stmt)
            for p in preds:
                cfg._edge(p, header)
            exits: list[Node] = [header]  # no case may match
            for case in stmt.cases:
                exits += self._seq(case.body, [header])
            return exits
        # Simple statement: one node.
        node = cfg._node(STMT, stmt)
        for p in preds:
            cfg._edge(p, node)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg._edge(node, cfg.exit)
            return []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][1].append(node)
                return []
            return [node]
        if isinstance(stmt, ast.Continue):
            if self._loops:
                cfg._edge(node, self._loops[-1][0])
                return []
            return [node]
        return [node]


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function definition."""
    return _Builder().build(fn)


def reachable_avoiding(
    cfg: CFG, blocked: set[Node], start: Node | None = None
) -> set[Node]:
    """Nodes reachable from ``start`` (default entry) along paths that
    never leave a node in ``blocked``.

    A blocked node is itself reachable (a path may *end* there), but its
    successors are not explored through it — the standard formulation
    for "does every path from entry to X pass through the blocked set".
    """
    start = start if start is not None else cfg.entry
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        if node in blocked and node is not start:
            continue  # paths do not continue through a blocked node
        for succ in node.succs:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen
