"""Scheduler contract verification (SEM020–SEM022).

``repro.sched.base.Scheduler`` is a policy interface: the controller
builds admissible candidate commands and the scheduler only *ranks*
them.  Three contract clauses keep a policy from silently breaking the
paper's comparison methodology, and each is checked statically here:

SEM020
    **Starvation/age guard on every issue path.**  The paper's
    criticality schedulers bound queueing delay with a 6000-DRAM-cycle
    starvation cap; every baseline breaks ties by age (``txn.seq`` /
    ``arrival``).  A ``select`` path that can return a candidate
    without consulting *any* age or starvation signal can starve
    requests indefinitely.  Checked on the CFG: every path from entry
    to a ``return <candidate>`` must pass a statement that *compares*
    an age signal — an ordering comparison (``<``/``<=``/``>``/``>=``)
    with an age token (``seq``, ``arrival``, ``starvation_cap``…) or a
    local derived from one on either side, or ``min``/``max``/
    ``sorted``/``.sort`` consuming one — or calls a helper (resolved
    through the MRO) that does.  Merely *mentioning* an age token
    (logging it, summing it, copying it into a stat) does not count:
    only an ordering decision bounds queueing delay.  A loop whose body
    consults a guard counts as guarded — the zero-iteration path
    returns the loop's empty-handed default, not an issued command.

SEM021
    **No direct bank/bus mutation.**  Schedulers observe controller
    state and return a choice; issuing commands, popping queues or
    touching bank timing is the controller's job (the only sanctioned
    write-back is PAR-BS style ``txn.marked`` batch tagging).  Flags
    stores and mutating calls on controller-rooted objects, including
    through local aliases.

SEM022
    **Required overrides present.**  A concrete scheduler must provide
    a real ``select`` (not inherit the base's raising stub) and a
    ``name`` class attribute so the registry and result tables can
    identify it.
"""

from __future__ import annotations

import ast

from repro.analysis.lint import Finding
from repro.analysis.semantic import cfg as cfglib
from repro.analysis.semantic.modgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleGraph,
)

SEM020 = "SEM020"
SEM021 = "SEM021"
SEM022 = "SEM022"

#: Tokens whose appearance marks a statement as consulting an age or
#: starvation signal.
GUARD_TOKENS = {
    "seq", "arrival", "starvation_cap", "starvation_cap_dram_cycles",
    "oldest",
}

#: Attribute writes on foreign objects a scheduler is allowed to make.
SANCTIONED_WRITES = {"marked"}

#: Names that denote controller-owned objects inside scheduler methods.
CONTROLLER_ROOTS = {"controller", "channel", "bank", "banks", "timing"}

#: Methods that mutate DRAM model state when called.
MUTATING_CALLS = {
    "do_activate", "do_precharge", "do_read", "do_write", "block_until",
    "did_activate", "did_cas", "enqueue", "append", "appendleft",
    "extend", "insert", "remove", "pop", "popleft", "clear", "add",
    "discard", "update", "setdefault", "sort", "reverse", "popitem",
}


def _is_scheduler(graph: ModuleGraph, cls: ClassInfo) -> bool:
    return graph.is_subclass_of(cls, "Scheduler")


def _is_interface_root(cls: ClassInfo) -> bool:
    """The ``Scheduler`` base interface itself (not a subclass)."""
    return cls.name == "Scheduler"


def _is_abstract(cls: ClassInfo) -> bool:
    return cls.name.startswith("_")


def _raises_not_implemented(func: FunctionInfo) -> bool:
    for node in ast.walk(func.node):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id == "NotImplementedError":
                return True
    return False


#: Comparison operators that order two values (equality tells you
#: nothing about queueing delay).
_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)

#: Builtins whose result orders their input.
_ORDER_FUNCS = {"min", "max", "sorted"}


def _mentions_token(node: ast.AST, tainted: frozenset[str]) -> bool:
    """Does the expression mention an age token or an age-derived local?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and (
            sub.id in GUARD_TOKENS or sub.id in tainted
        ):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in GUARD_TOKENS:
            return True
    return False


def _tainted_locals(func_node, derives=None) -> frozenset[str]:
    """Local names assigned (anywhere) from an expression that mentions
    an age token, to a fixpoint: ``age = now - txn.arrival`` taints
    ``age``, ``limit = age + slack`` then taints ``limit``.  The
    optional ``derives(value)`` predicate taints additional sources —
    e.g. a sort key returned by an age-bearing ``self._key`` helper."""
    tainted: set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func_node):
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AugAssign):
                value, targets = node.value, [node.target]
            else:
                continue
            if not (
                _mentions_token(value, frozenset(tainted))
                or (derives is not None and derives(value))
            ):
                continue
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name) and sub.id not in tainted:
                        tainted.add(sub.id)
                        changed = True
    return frozenset(tainted)


def _consults_guard(node: ast.AST, tainted: frozenset[str]) -> bool:
    """True iff the node *orders by* an age signal: an ordering
    comparison with an age token (or age-derived local) on either side,
    or ``min``/``max``/``sorted``/``.sort`` whose operands or ``key``
    mention one.  A bare mention (logging, summing) does not count."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Compare):
            sides = [sub.left, *sub.comparators]
            for i, op in enumerate(sub.ops):
                if isinstance(op, _ORDERING_OPS) and (
                    _mentions_token(sides[i], tainted)
                    or _mentions_token(sides[i + 1], tainted)
                ):
                    return True
        elif isinstance(sub, ast.Call):
            fn = sub.func
            if isinstance(fn, ast.Name) and fn.id in _ORDER_FUNCS:
                if any(_mentions_token(a, tainted) for a in sub.args):
                    return True
                if any(
                    kw.arg == "key" and _mentions_token(kw.value, tainted)
                    for kw in sub.keywords
                ):
                    return True
            elif isinstance(fn, ast.Attribute) and fn.attr == "sort":
                if any(
                    kw.arg == "key" and _mentions_token(kw.value, tainted)
                    for kw in sub.keywords
                ):
                    return True
    return False


class SchedulerContractPass:
    """SEM020–SEM022: verify scheduler policies against the base contract."""

    ids = (SEM020, SEM021, SEM022)

    def run(self, graph: ModuleGraph) -> list[Finding]:
        findings: list[Finding] = []
        for cls in graph.all_classes():
            if not _is_scheduler(graph, cls) or _is_interface_root(cls):
                continue
            findings.extend(self._check_mutations(cls))
            if _is_abstract(cls):
                continue  # helpers defer select/_key to concrete subclasses
            findings.extend(self._check_overrides(graph, cls))
            findings.extend(self._check_starvation(graph, cls))
        return findings

    # ------------------------------------------------------------- SEM022

    def _check_overrides(
        self, graph: ModuleGraph, cls: ClassInfo
    ) -> list[Finding]:
        findings: list[Finding] = []
        select = graph.lookup_method(cls, "select")
        if select is None or (
            select.cls is not None
            and _is_interface_root(select.cls)
            and _raises_not_implemented(select)
        ):
            findings.append(
                Finding(
                    rule=SEM022,
                    path=cls.module.path,
                    line=cls.node.lineno,
                    col=cls.node.col_offset,
                    message=(
                        f"{cls.name} never overrides select(): the base "
                        f"interface's stub raises at the first "
                        f"scheduling decision"
                    ),
                )
            )
        if not any("name" in c.class_attrs for c in graph.mro(cls)):
            findings.append(
                Finding(
                    rule=SEM022,
                    path=cls.module.path,
                    line=cls.node.lineno,
                    col=cls.node.col_offset,
                    message=(
                        f"{cls.name} defines no `name` class attribute; "
                        f"the registry and result tables cannot "
                        f"identify it"
                    ),
                )
            )
        return findings

    # ------------------------------------------------------------- SEM020

    def _fn_consults_guard(
        self,
        graph: ModuleGraph,
        cls: ClassInfo,
        func: FunctionInfo,
        seen: set[str],
        depth: int = 3,
    ) -> bool:
        if func.qualname in seen or depth <= 0:
            return False
        seen.add(func.qualname)
        if _consults_guard(func.node, _tainted_locals(func.node)):
            return True
        for node in ast.walk(func.node):
            helper = self._self_call_target(graph, cls, node)
            if helper is not None and self._fn_consults_guard(
                graph, cls, helper, seen, depth - 1
            ):
                return True
        return False

    def _helper_mentions_age(
        self,
        graph: ModuleGraph,
        cls: ClassInfo,
        func: FunctionInfo,
        seen: set[str],
        depth: int = 3,
    ) -> bool:
        """Does the helper's result carry an age signal?  A plain
        *mention* suffices here — ordering a value derived from age
        (``key < best_key`` where ``key = self._key(cand)`` and
        ``_key`` returns ``(..., txn.seq)``) is an age ordering."""
        if func.qualname in seen or depth <= 0:
            return False
        seen.add(func.qualname)
        if _mentions_token(func.node, frozenset()):
            return True
        for node in ast.walk(func.node):
            helper = self._self_call_target(graph, cls, node)
            if helper is not None and self._helper_mentions_age(
                graph, cls, helper, seen, depth - 1
            ):
                return True
        return False

    def _derives_age(
        self, graph: ModuleGraph, cls: ClassInfo, value: ast.AST
    ) -> bool:
        """Does the assigned expression call a self-helper whose body
        touches an age token?"""
        for sub in ast.walk(value):
            helper = self._self_call_target(graph, cls, sub)
            if helper is not None and self._helper_mentions_age(
                graph, cls, helper, set()
            ):
                return True
        return False

    @staticmethod
    def _self_call_target(
        graph: ModuleGraph, cls: ClassInfo, node: ast.AST
    ) -> FunctionInfo | None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            return graph.lookup_method(cls, node.func.attr)
        return None

    def _node_is_guard(
        self,
        graph: ModuleGraph,
        cls: ClassInfo,
        node: cfglib.Node,
        tainted: frozenset[str],
    ) -> bool:
        stmt = node.stmt
        if stmt is None:
            return False
        # Branch headers guard only through their test; loop headers
        # count their whole body (the zero-iteration path exits the
        # loop empty-handed, it does not issue).
        probe: ast.AST = stmt
        if node.kind == cfglib.BRANCH and isinstance(stmt, ast.If):
            probe = stmt.test
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        if _consults_guard(probe, tainted):
            return True
        for sub in ast.walk(probe):
            helper = self._self_call_target(graph, cls, sub)
            if helper is not None and self._fn_consults_guard(
                graph, cls, helper, set()
            ):
                return True
        return False

    def _check_starvation(
        self, graph: ModuleGraph, cls: ClassInfo
    ) -> list[Finding]:
        select = graph.lookup_method(cls, "select")
        if select is None or _raises_not_implemented(select):
            return []  # SEM022 already reported the missing override
        cfg = cfglib.build_cfg(select.node)
        tainted = _tainted_locals(
            select.node,
            derives=lambda value: self._derives_age(graph, cls, value),
        )
        guards = {
            node
            for node in cfg.nodes
            if self._node_is_guard(graph, cls, node, tainted)
        }
        unguarded = cfglib.reachable_avoiding(cfg, guards)
        findings: list[Finding] = []
        for ret in cfg.returns():
            assert isinstance(ret.stmt, ast.Return)
            value = ret.stmt.value
            if value is None or (
                isinstance(value, ast.Constant) and value.value is None
            ):
                continue  # returning "no command this cycle" never starves
            if ret in unguarded and ret not in guards:
                findings.append(
                    Finding(
                        rule=SEM020,
                        path=select.module.path,
                        line=ret.stmt.lineno,
                        col=ret.stmt.col_offset,
                        message=(
                            f"{cls.name}.select() can issue a command "
                            f"along a path that never orders by an age or "
                            f"starvation signal ({', '.join(sorted(GUARD_TOKENS))}); "
                            f"mentioning an age token is not enough — an "
                            f"ordering comparison or min/max/sorted must "
                            f"bound queueing delay on every issue path"
                        ),
                    )
                )
        return findings

    # ------------------------------------------------------------- SEM021

    def _controller_aliases(self, method: FunctionInfo) -> set[str]:
        """Local names bound (anywhere in the method) to an expression
        rooted at a controller-owned object."""
        aliases = set(CONTROLLER_ROOTS)
        changed = True
        while changed:
            changed = False
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not self._rooted_in(node.value, aliases):
                    continue
                for target in node.targets:
                    for name in self._plain_names(target):
                        if name not in aliases:
                            aliases.add(name)
                            changed = True
        return aliases

    @staticmethod
    def _plain_names(target: ast.AST) -> list[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names: list[str] = []
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    names.append(elt.id)
            return names
        return []

    @staticmethod
    def _rooted_in(node: ast.AST, roots: set[str]) -> bool:
        """Does the expression's base name chain start at one of roots?"""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute) and node.attr in roots:
                return True
            node = node.value
        return isinstance(node, ast.Name) and node.id in roots

    def _check_mutations(self, cls: ClassInfo) -> list[Finding]:
        findings: list[Finding] = []
        for mname in sorted(cls.methods):
            method = cls.methods[mname]
            aliases = self._controller_aliases(method)
            txn_roots = {"txn", "cand"}
            for node in ast.walk(method.node):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if not isinstance(
                            target, (ast.Attribute, ast.Subscript)
                        ):
                            continue
                        attr = (
                            target.attr
                            if isinstance(target, ast.Attribute)
                            else None
                        )
                        base = (
                            target.value
                            if isinstance(target, ast.Attribute)
                            else target
                        )
                        if attr in SANCTIONED_WRITES:
                            continue
                        if self._rooted_in(base, aliases) or (
                            attr not in (None,)
                            and self._rooted_in(base, txn_roots)
                        ):
                            what = attr or "an element"
                            findings.append(
                                Finding(
                                    rule=SEM021,
                                    path=cls.module.path,
                                    line=node.lineno,
                                    col=node.col_offset,
                                    message=(
                                        f"{cls.name}.{mname}() writes "
                                        f"{what!r} on controller/request "
                                        f"state; schedulers rank "
                                        f"candidates, the controller "
                                        f"executes them"
                                    ),
                                )
                            )
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ) and node.func.attr in MUTATING_CALLS:
                    if self._rooted_in(node.func.value, aliases):
                        findings.append(
                            Finding(
                                rule=SEM021,
                                path=cls.module.path,
                                line=node.lineno,
                                col=node.col_offset,
                                message=(
                                    f"{cls.name}.{mname}() calls mutating "
                                    f"{node.func.attr}() on controller "
                                    f"state; issuing commands is the "
                                    f"controller's job"
                                ),
                            )
                        )
        return findings
