"""Scheduler contract verification (SEM020–SEM022).

``repro.sched.base.Scheduler`` is a policy interface: the controller
builds admissible candidate commands and the scheduler only *ranks*
them.  Three contract clauses keep a policy from silently breaking the
paper's comparison methodology, and each is checked statically here:

SEM020
    **Starvation/age guard on every issue path.**  The paper's
    criticality schedulers bound queueing delay with a 6000-DRAM-cycle
    starvation cap; every baseline breaks ties by age (``txn.seq`` /
    ``arrival``).  A ``select`` path that can return a candidate
    without consulting *any* age or starvation signal can starve
    requests indefinitely.  Checked on the CFG: every path from entry
    to a ``return <candidate>`` must pass a statement that mentions an
    age token (``seq``, ``arrival``, ``starvation_cap``…) or calls a
    helper (resolved through the MRO) that does.  A loop whose body
    consults a guard counts as guarded — the zero-iteration path
    returns the loop's empty-handed default, not an issued command.

SEM021
    **No direct bank/bus mutation.**  Schedulers observe controller
    state and return a choice; issuing commands, popping queues or
    touching bank timing is the controller's job (the only sanctioned
    write-back is PAR-BS style ``txn.marked`` batch tagging).  Flags
    stores and mutating calls on controller-rooted objects, including
    through local aliases.

SEM022
    **Required overrides present.**  A concrete scheduler must provide
    a real ``select`` (not inherit the base's raising stub) and a
    ``name`` class attribute so the registry and result tables can
    identify it.
"""

from __future__ import annotations

import ast

from repro.analysis.lint import Finding
from repro.analysis.semantic import cfg as cfglib
from repro.analysis.semantic.modgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleGraph,
)

SEM020 = "SEM020"
SEM021 = "SEM021"
SEM022 = "SEM022"

#: Tokens whose appearance marks a statement as consulting an age or
#: starvation signal.
GUARD_TOKENS = {
    "seq", "arrival", "starvation_cap", "starvation_cap_dram_cycles",
    "oldest",
}

#: Attribute writes on foreign objects a scheduler is allowed to make.
SANCTIONED_WRITES = {"marked"}

#: Names that denote controller-owned objects inside scheduler methods.
CONTROLLER_ROOTS = {"controller", "channel", "bank", "banks", "timing"}

#: Methods that mutate DRAM model state when called.
MUTATING_CALLS = {
    "do_activate", "do_precharge", "do_read", "do_write", "block_until",
    "did_activate", "did_cas", "enqueue", "append", "appendleft",
    "extend", "insert", "remove", "pop", "popleft", "clear", "add",
    "discard", "update", "setdefault", "sort", "reverse", "popitem",
}


def _is_scheduler(graph: ModuleGraph, cls: ClassInfo) -> bool:
    return graph.is_subclass_of(cls, "Scheduler")


def _is_interface_root(cls: ClassInfo) -> bool:
    """The ``Scheduler`` base interface itself (not a subclass)."""
    return cls.name == "Scheduler"


def _is_abstract(cls: ClassInfo) -> bool:
    return cls.name.startswith("_")


def _raises_not_implemented(func: FunctionInfo) -> bool:
    for node in ast.walk(func.node):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id == "NotImplementedError":
                return True
    return False


def _mentions_guard(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in GUARD_TOKENS:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in GUARD_TOKENS:
            return True
    return False


class SchedulerContractPass:
    """SEM020–SEM022: verify scheduler policies against the base contract."""

    ids = (SEM020, SEM021, SEM022)

    def run(self, graph: ModuleGraph) -> list[Finding]:
        findings: list[Finding] = []
        for cls in graph.all_classes():
            if not _is_scheduler(graph, cls) or _is_interface_root(cls):
                continue
            findings.extend(self._check_mutations(cls))
            if _is_abstract(cls):
                continue  # helpers defer select/_key to concrete subclasses
            findings.extend(self._check_overrides(graph, cls))
            findings.extend(self._check_starvation(graph, cls))
        return findings

    # ------------------------------------------------------------- SEM022

    def _check_overrides(
        self, graph: ModuleGraph, cls: ClassInfo
    ) -> list[Finding]:
        findings: list[Finding] = []
        select = graph.lookup_method(cls, "select")
        if select is None or (
            select.cls is not None
            and _is_interface_root(select.cls)
            and _raises_not_implemented(select)
        ):
            findings.append(
                Finding(
                    rule=SEM022,
                    path=cls.module.path,
                    line=cls.node.lineno,
                    col=cls.node.col_offset,
                    message=(
                        f"{cls.name} never overrides select(): the base "
                        f"interface's stub raises at the first "
                        f"scheduling decision"
                    ),
                )
            )
        if not any("name" in c.class_attrs for c in graph.mro(cls)):
            findings.append(
                Finding(
                    rule=SEM022,
                    path=cls.module.path,
                    line=cls.node.lineno,
                    col=cls.node.col_offset,
                    message=(
                        f"{cls.name} defines no `name` class attribute; "
                        f"the registry and result tables cannot "
                        f"identify it"
                    ),
                )
            )
        return findings

    # ------------------------------------------------------------- SEM020

    def _fn_consults_guard(
        self,
        graph: ModuleGraph,
        cls: ClassInfo,
        func: FunctionInfo,
        seen: set[str],
        depth: int = 3,
    ) -> bool:
        if func.qualname in seen or depth <= 0:
            return False
        seen.add(func.qualname)
        if _mentions_guard(func.node):
            return True
        for node in ast.walk(func.node):
            helper = self._self_call_target(graph, cls, node)
            if helper is not None and self._fn_consults_guard(
                graph, cls, helper, seen, depth - 1
            ):
                return True
        return False

    @staticmethod
    def _self_call_target(
        graph: ModuleGraph, cls: ClassInfo, node: ast.AST
    ) -> FunctionInfo | None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            return graph.lookup_method(cls, node.func.attr)
        return None

    def _node_is_guard(
        self, graph: ModuleGraph, cls: ClassInfo, node: cfglib.Node
    ) -> bool:
        stmt = node.stmt
        if stmt is None:
            return False
        # Branch headers guard only through their test; loop headers
        # count their whole body (the zero-iteration path exits the
        # loop empty-handed, it does not issue).
        probe: ast.AST = stmt
        if node.kind == cfglib.BRANCH and isinstance(stmt, ast.If):
            probe = stmt.test
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        if _mentions_guard(probe):
            return True
        for sub in ast.walk(probe):
            helper = self._self_call_target(graph, cls, sub)
            if helper is not None and self._fn_consults_guard(
                graph, cls, helper, set()
            ):
                return True
        return False

    def _check_starvation(
        self, graph: ModuleGraph, cls: ClassInfo
    ) -> list[Finding]:
        select = graph.lookup_method(cls, "select")
        if select is None or _raises_not_implemented(select):
            return []  # SEM022 already reported the missing override
        cfg = cfglib.build_cfg(select.node)
        guards = {
            node for node in cfg.nodes if self._node_is_guard(graph, cls, node)
        }
        unguarded = cfglib.reachable_avoiding(cfg, guards)
        findings: list[Finding] = []
        for ret in cfg.returns():
            assert isinstance(ret.stmt, ast.Return)
            value = ret.stmt.value
            if value is None or (
                isinstance(value, ast.Constant) and value.value is None
            ):
                continue  # returning "no command this cycle" never starves
            if ret in unguarded and ret not in guards:
                findings.append(
                    Finding(
                        rule=SEM020,
                        path=select.module.path,
                        line=ret.stmt.lineno,
                        col=ret.stmt.col_offset,
                        message=(
                            f"{cls.name}.select() can issue a command "
                            f"along a path that never consults an age or "
                            f"starvation signal ({', '.join(sorted(GUARD_TOKENS))}); "
                            f"the 6000-dram-cycle cap is not honored on "
                            f"every issue path"
                        ),
                    )
                )
        return findings

    # ------------------------------------------------------------- SEM021

    def _controller_aliases(self, method: FunctionInfo) -> set[str]:
        """Local names bound (anywhere in the method) to an expression
        rooted at a controller-owned object."""
        aliases = set(CONTROLLER_ROOTS)
        changed = True
        while changed:
            changed = False
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not self._rooted_in(node.value, aliases):
                    continue
                for target in node.targets:
                    for name in self._plain_names(target):
                        if name not in aliases:
                            aliases.add(name)
                            changed = True
        return aliases

    @staticmethod
    def _plain_names(target: ast.AST) -> list[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names: list[str] = []
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    names.append(elt.id)
            return names
        return []

    @staticmethod
    def _rooted_in(node: ast.AST, roots: set[str]) -> bool:
        """Does the expression's base name chain start at one of roots?"""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute) and node.attr in roots:
                return True
            node = node.value
        return isinstance(node, ast.Name) and node.id in roots

    def _check_mutations(self, cls: ClassInfo) -> list[Finding]:
        findings: list[Finding] = []
        for mname in sorted(cls.methods):
            method = cls.methods[mname]
            aliases = self._controller_aliases(method)
            txn_roots = {"txn", "cand"}
            for node in ast.walk(method.node):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if not isinstance(
                            target, (ast.Attribute, ast.Subscript)
                        ):
                            continue
                        attr = (
                            target.attr
                            if isinstance(target, ast.Attribute)
                            else None
                        )
                        base = (
                            target.value
                            if isinstance(target, ast.Attribute)
                            else target
                        )
                        if attr in SANCTIONED_WRITES:
                            continue
                        if self._rooted_in(base, aliases) or (
                            attr not in (None,)
                            and self._rooted_in(base, txn_roots)
                        ):
                            what = attr or "an element"
                            findings.append(
                                Finding(
                                    rule=SEM021,
                                    path=cls.module.path,
                                    line=node.lineno,
                                    col=node.col_offset,
                                    message=(
                                        f"{cls.name}.{mname}() writes "
                                        f"{what!r} on controller/request "
                                        f"state; schedulers rank "
                                        f"candidates, the controller "
                                        f"executes them"
                                    ),
                                )
                            )
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ) and node.func.attr in MUTATING_CALLS:
                    if self._rooted_in(node.func.value, aliases):
                        findings.append(
                            Finding(
                                rule=SEM021,
                                path=cls.module.path,
                                line=node.lineno,
                                col=node.col_offset,
                                message=(
                                    f"{cls.name}.{mname}() calls mutating "
                                    f"{node.func.attr}() on controller "
                                    f"state; issuing commands is the "
                                    f"controller's job"
                                ),
                            )
                        )
        return findings
