"""Det-state coverage audit (SEM010).

The determinism hash-chain (PR 2) is only as strong as the state it
folds: a new mutable field on ``ChannelController`` that never reaches
``det_state()`` lets two diverging runs hash identically until the
divergence becomes architecturally visible — exactly the silent class
of bug the chain exists to catch early.  This pass statically
enumerates every attribute a simulator class assigns or mutates outside
``__init__`` and cross-checks it against the fields read by
``det_state()`` methods, ``detchain.snapshot``, and telemetry
registration (``register_metrics``), anywhere in the program.

Coverage is name-level: reading ``bank.open_row`` inside *any*
``det_state`` covers the attribute ``open_row`` — the audit binds
state to the chain by field name, not by alias analysis.  Fields that
are genuinely derived, debug-only, or excluded by design (statistics
settled lazily during fast-forward) live in :data:`ALLOWLIST` with a
rationale, so every exemption is auditable in one place.

SEM010 fires on any remaining mutable attribute.
"""

from __future__ import annotations

import ast

from repro.analysis.lint import Finding
from repro.analysis.semantic.modgraph import ClassInfo, ModuleGraph

SEM010 = "SEM010"

#: Simulator classes audited even when they define no ``det_state`` of
#: their own (their state may be folded by an owning class).
TARGET_CLASS_NAMES = {
    "OutOfOrderCore",
    "ChannelController",
    "MemorySystem",
    "Bank",
    "ChannelTiming",
    "MshrFile",
    "MemoryHierarchy",
}

#: Methods whose attribute reads count as chain/telemetry coverage.
#: ``det_state_scan`` is the full-walk reference implementation of the
#: incrementally maintained cache det_state words — state it reads is
#: folded (via the incremental words it is asserted equal to).
COVERAGE_METHODS = {"det_state", "det_state_scan", "snapshot",
                    "register_metrics"}

#: Container methods that mutate their receiver in place.
MUTATORS = {
    "append", "appendleft", "extend", "insert", "remove", "pop",
    "popleft", "clear", "add", "discard", "update", "setdefault",
    "sort", "reverse", "popitem",
}

#: ``(class name, attribute) -> rationale`` exemptions.  Every entry
#: must say *why* the chain stays sound without the field.
ALLOWLIST: dict[tuple[str, str], str] = {
    # -- OutOfOrderCore ---------------------------------------------------
    ("OutOfOrderCore", "skip_until"):
        "fast-forward bookkeeping: differs between skip and naive runs "
        "by construction; folding it would break the skip contract",
    ("OutOfOrderCore", "_quiet_deltas"):
        "fast-forward bookkeeping (see skip_until)",
    ("OutOfOrderCore", "_quiet_from"):
        "fast-forward bookkeeping (see skip_until)",
    ("OutOfOrderCore", "plan_defer"):
        "fast-forward planning hint; never read by architectural state",
    ("OutOfOrderCore", "_complete"):
        "write-once completion timestamps; divergence surfaces in the "
        "ROB-head/committed det_state words at the next retire",
    ("OutOfOrderCore", "_next_local"):
        "conservative lower bound on the next _wake/_load_issue cycle; "
        "recomputed from those schedules when stale, so it is fully "
        "derived state (see _wake)",
    ("OutOfOrderCore", "_wake"):
        "completion schedule keyed by cycle; folded indirectly via the "
        "det_state occupancy words and the event-queue length",
    ("OutOfOrderCore", "_load_issue"):
        "issue schedule keyed by cycle (see _wake)",
    ("OutOfOrderCore", "_fu_booked"):
        "FU reservation table derived from the issue schedule; pruned "
        "on a fixed cycle mask",
    ("OutOfOrderCore", "_wake_hook"):
        "wiring-time engine callback installed while the core is "
        "quiescent (see MemoryHierarchy._wake_core); not simulation "
        "state — it only tells the wake-driven loop to revisit",
    # -- Bank -------------------------------------------------------------
    ("Bank", "row_hits"):
        "row-locality statistic; excluded from the chain by design "
        "(statistics are settled lazily, see detchain)",
    ("Bank", "row_misses"):
        "row-locality statistic (see row_hits)",
    ("Bank", "row_conflicts"):
        "row-locality statistic (see row_hits)",
    # -- Caches -----------------------------------------------------------
    ("SetAssociativeCache", "hits"):
        "hit/miss statistic; tag-array contents are chained via "
        "det_state's resident/dirty/checksum words instead",
    ("SetAssociativeCache", "misses"):
        "hit/miss statistic (see hits)",
    ("MshrFile", "peak"):
        "occupancy high-watermark statistic; live entries are chained "
        "via the MshrFile det_state words",
    ("MshrFile", "full_rejections"):
        "back-pressure statistic (see peak)",
    # -- MemorySystem -----------------------------------------------------
    ("MemorySystem", "_dram_done"):
        "clock-boundary bookkeeping: a pure function of how far the "
        "cpu clock has advanced, never of simulated state",
    ("MemorySystem", "_chan_wake"):
        "wake-driven clocking bookkeeping: derived from enqueue times "
        "and channel next_wake(), whose inputs (queues, refresh "
        "deadlines) are already folded via each channel's det_state",
    ("MemorySystem", "_chan_settled"):
        "lazy settlement cursor for idle occupancy samples, which are "
        "statistics excluded from the chain (see account_idle)",
    # -- MemoryHierarchy --------------------------------------------------
    ("MemoryHierarchy", "_now"):
        "mirror of the system clock installed via bind_clock; the "
        "chain already folds the sample cycle itself",
    ("MemoryHierarchy", "_wake_core"):
        "wiring-time callback installed via bind_core_waker, not "
        "simulation state",
    # -- Schedulers -------------------------------------------------------
    ("MorseScheduler", "_weights"):
        "learned CMAC weights (floats); any divergence changes the "
        "next decision, which the command-order words catch",
    ("MorseScheduler", "_prev_keys"):
        "SARSA bootstrap bookkeeping derived from the previous "
        "decision (see _weights)",
    ("MorseScheduler", "_prev_q"):
        "SARSA bootstrap bookkeeping (see _prev_keys)",
    ("MorseScheduler", "_rng"):
        "seeded exploration stream; consumed only at decision points, "
        "where command-order words expose divergence",
}

#: Attribute-name prefixes exempt everywhere, with one shared rationale.
ALLOWLIST_PREFIXES: dict[str, str] = {
    "_m_": "telemetry instrument handle bound lazily at registration",
    "_perf": "host-side perf counters (REPRO_PERF): simulator "
    "observability, deliberately outside det_state and every "
    "simulated-machine statistic",
}

#: Class-name substrings never audited (statistics are settled lazily
#: by flush_skip and excluded from the chain by design — see detchain).
EXCLUDED_CLASS_TOKENS = ("Stats",)


def _root_self_attr(node: ast.AST) -> str | None:
    """``self.X[...].y.z`` -> ``"X"``; None when not rooted at self."""
    chain: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    if isinstance(node, ast.Name) and node.id == "self" and chain:
        return chain[-1]
    return None


def _is_target(graph: ModuleGraph, cls: ClassInfo) -> bool:
    if any(token in cls.name for token in EXCLUDED_CLASS_TOKENS):
        return False
    if cls.name in TARGET_CLASS_NAMES:
        return True
    if "det_state" in cls.methods:
        return True
    return graph.is_subclass_of(cls, "Scheduler")


class StateCoveragePass:
    """SEM010: unregistered mutable state on simulator classes."""

    ids = (SEM010,)

    def run(self, graph: ModuleGraph) -> list[Finding]:
        global_reads = self._global_coverage_reads(graph)
        findings: list[Finding] = []
        for cls in graph.all_classes():
            if not _is_target(graph, cls):
                continue
            findings.extend(self._check_class(graph, cls, global_reads))
        return findings

    # ------------------------------------------------------------- reads

    def _global_coverage_reads(self, graph: ModuleGraph) -> set[str]:
        """Attribute names read by any coverage method in the program."""
        reads: set[str] = set()
        for func in graph.all_functions():
            if func.name not in COVERAGE_METHODS:
                continue
            for node in ast.walk(func.node):
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    reads.add(node.attr)
        return reads

    def _class_coverage_reads(
        self, graph: ModuleGraph, cls: ClassInfo
    ) -> set[str]:
        """Self-attribute reads in this class's own coverage methods
        (resolved through the MRO, so an inherited det_state counts)."""
        reads: set[str] = set()
        for name in COVERAGE_METHODS:
            func = graph.lookup_method(cls, name)
            if func is None:
                continue
            for node in ast.walk(func.node):
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    reads.add(node.attr)
        return reads

    # ---------------------------------------------------------- mutations

    def _mutations(self, cls: ClassInfo) -> dict[str, tuple[str, int]]:
        """attr -> (method, line) of its first out-of-init mutation."""
        sites: dict[str, tuple[str, int]] = {}

        def record(attr: str | None, method: str, line: int) -> None:
            if attr is not None and attr not in sites:
                sites[attr] = (method, line)

        for mname in sorted(cls.methods):
            if mname in ("__init__", "__post_init__"):
                continue
            method = cls.methods[mname]
            for node in ast.walk(method.node):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Attribute) and isinstance(
                            target.value, ast.Name
                        ) and target.value.id == "self":
                            record(target.attr, mname, node.lineno)
                        else:
                            record(
                                _root_self_attr(target), mname, node.lineno
                            )
                elif isinstance(node, ast.AugAssign):
                    target = node.target
                    if isinstance(target, ast.Attribute) and isinstance(
                        target.value, ast.Name
                    ) and target.value.id == "self":
                        record(target.attr, mname, node.lineno)
                    else:
                        record(_root_self_attr(target), mname, node.lineno)
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ) and node.func.attr in MUTATORS:
                    record(
                        _root_self_attr(node.func.value), mname, node.lineno
                    )
        return sites

    # ------------------------------------------------------------- checks

    def _allowed(self, cls: ClassInfo, attr: str) -> bool:
        if (cls.name, attr) in ALLOWLIST:
            return True
        return any(attr.startswith(p) for p in ALLOWLIST_PREFIXES)

    def _check_class(
        self, graph: ModuleGraph, cls: ClassInfo, global_reads: set[str]
    ) -> list[Finding]:
        covered = self._class_coverage_reads(graph, cls) | global_reads
        findings: list[Finding] = []
        for attr, (method, line) in sorted(self._mutations(cls).items()):
            if attr in covered or self._allowed(cls, attr):
                continue
            findings.append(
                Finding(
                    rule=SEM010,
                    path=cls.module.path,
                    line=line,
                    col=0,
                    message=(
                        f"{cls.name}.{attr} is mutated in {method}() but "
                        f"never read by det_state()/snapshot/"
                        f"register_metrics and is not allowlisted: "
                        f"unregistered mutable state escapes the "
                        f"determinism chain"
                    ),
                )
            )
        return findings
