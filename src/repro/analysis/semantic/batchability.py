"""Batchability certificates for the per-cycle hot path.

Derives, from the effect summaries of
:mod:`repro.analysis.semantic.effects`, a machine-readable report
(``batchability.json``) classifying every per-cycle hook on the
simulator's hot classes and on every concrete scheduler:

* ``window-invariant`` — safe to evaluate once per ready-window;
* ``monotone-accumulating`` — safe to batch with a closed-form fold
  (all mutations are additive accumulations);
* ``per-cycle-only`` — must keep running every cycle.

The upcoming batching PR must cite these certificates with
``# repro-batch: cert=<Class.method>`` markers (written without the
angle brackets) at each shortcut site;
SEM032 rejects markers whose cited method is (or has become)
per-cycle-only, so a model change that invalidates a certificate
breaks the build instead of silently breaking bit-identity.

CLI: ``python -m repro analyze --batchability batchability.json``.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.analysis.semantic.effects import (
    FnEffects,
    classify,
    infer_effects,
)
from repro.analysis.semantic.modgraph import ClassInfo, ModuleGraph

#: Per-cycle hooks certified on each hot simulator class.
HOOK_TABLE: dict[str, tuple[str, ...]] = {
    "OutOfOrderCore": (
        "step", "step_window", "skip_plan", "begin_skip", "wake_skip",
        "flush_skip", "det_state", "_do_dispatch", "_do_commit",
        "_do_load_issues", "_do_dispatch_window", "_do_commit_window",
    ),
    "MemoryHierarchy": ("load", "store", "can_accept_store", "det_state"),
    "ChannelController": (
        "step", "next_wake", "next_wake_window", "enqueue",
        "account_idle", "account_window", "can_accept", "pending",
        "det_state",
    ),
    "MemorySystem": (
        "step", "step_event", "step_window", "fast_forward",
        "settle_idle", "try_enqueue", "presettle", "pending",
        "next_wake_cpu", "wake_cpu",
    ),
}

#: Hooks certified on every concrete scheduler.
SCHEDULER_HOOKS = (
    "select", "pre_admissible", "admissible", "on_enqueue",
    "on_command", "det_state",
)


def _entry(
    graph: ModuleGraph,
    table: dict[str, FnEffects],
    cls: ClassInfo,
    name: str,
) -> dict | None:
    func = graph.lookup_method(cls, name)
    if func is None:
        return None
    eff = table.get(func.qualname, FnEffects())
    return {
        "class": cls.qualname,
        "method": name,
        "defined_in": func.qualname,
        "classification": classify(eff),
        "effects": {
            "mutates": sorted(eff.mutates),
            "foreign": sorted(eff.foreign),
            "rng": eff.rng,
            "io": eff.io,
            "cycle_dependent": eff.cycle,
            "monotone": bool(
                (eff.mutates or eff.foreign) and not eff.nonmonotone
            ),
        },
        "path": func.module.path,
        "line": func.node.lineno,
    }


def _find_class(graph: ModuleGraph, bare: str) -> ClassInfo | None:
    bucket = [cls for cls in graph.all_classes() if cls.name == bare]
    return bucket[0] if len(bucket) == 1 else None


def _scheduler_name(graph: ModuleGraph, cls: ClassInfo) -> str:
    """The ``name = "..."`` registry identity, through the MRO."""
    for c in graph.mro(cls):
        for stmt in c.node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "name"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    return stmt.value.value
    return cls.name


def build_report(
    graph: ModuleGraph, table: dict[str, FnEffects] | None = None
) -> dict:
    """Certificates for every hot-class and scheduler hook in the graph."""
    if table is None:
        table = infer_effects(graph)
    classes: dict[str, dict] = {}
    for cls_name in sorted(HOOK_TABLE):
        cls = _find_class(graph, cls_name)
        if cls is None:
            continue
        entries = {}
        for hook in HOOK_TABLE[cls_name]:
            entry = _entry(graph, table, cls, hook)
            if entry is not None:
                entries[hook] = entry
        classes[cls_name] = entries
    schedulers: dict[str, dict] = {}
    for cls in graph.all_classes():
        if not graph.is_subclass_of(cls, "Scheduler"):
            continue
        if cls.name == "Scheduler" or cls.name.startswith("_"):
            continue
        entries = {}
        for hook in SCHEDULER_HOOKS:
            entry = _entry(graph, table, cls, hook)
            if entry is not None:
                entries[hook] = entry
        schedulers[_scheduler_name(graph, cls)] = entries
    return {"version": 1, "classes": classes, "schedulers": schedulers}


def write_report(graph: ModuleGraph, out_path: str | Path) -> dict:
    """Build and write ``batchability.json``; returns the report."""
    report = build_report(graph)
    Path(out_path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    return report
