"""Cycle-domain dataflow pass (SEM001–SEM003).

The simulator runs on two clocks — CPU cycles and DRAM command-clock
cycles — plus wall-time constants in nanoseconds and plain counts.  A
CPU-cycle deadline added to a DRAM-cycle counter is type-correct Python
and silently wrong by a factor of the clock ratio.  This pass gives
every expression a *domain* from the lattice::

    unknown  ⊑  {cpu_cycle, dram_cycle, ns, dimensionless}  ⊑  unknown

seeded from annotated ground truth (``ChannelTiming``/``DramTimings``
fields and bank readiness deadlines are dram_cycle, core fetch/skip
state is cpu_cycle, ``refresh_interval_us`` is ns, ``seq`` numbers are
dimensionless) and propagated flow-sensitively through assignments,
attribute stores, calls and returns across the whole module graph.
Multiplying or floor-dividing by a clock-ratio expression
(``cpu_ratio`` et al.) is the only sanctioned cast: ``dram * ratio``
yields cpu_cycle and ``cpu // ratio`` yields dram_cycle, exactly the
conversions ``MemorySystem`` performs at its boundary.

Rules:

=========  =============================================================
SEM001     mixed-domain arithmetic: ``+``/``-`` (or ``min``/``max``)
           combining two different concrete time domains
SEM002     mixed-domain comparison: ordering/equality between two
           different concrete time domains
SEM003     mixed-domain dataflow across a declared boundary: storing
           into a domain-seeded attribute, or passing an argument to a
           domain-seeded parameter, with the wrong clock
=========  =============================================================

Everything unknown stays silent: the pass only reports when *both*
sides of an operation have concrete, different time domains, so partial
seeding cannot produce false positives, only missed findings.
"""

from __future__ import annotations

import ast

from repro.analysis.lint import Finding
from repro.analysis.semantic import cfg as cfglib
from repro.analysis.semantic.dataflow import run_forward
from repro.analysis.semantic.modgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleGraph,
)

CPU = "cpu_cycle"
DRAM = "dram_cycle"
NS = "ns"
DIMLESS = "dimensionless"

#: Domains that denote physical time on a specific clock.
_TIME = (CPU, DRAM, NS)

SEM001 = "SEM001"
SEM002 = "SEM002"
SEM003 = "SEM003"

# ------------------------------------------------------------------ seeds

#: Attribute names with a known domain wherever they appear.  These are
#: the analyzer's hand-written ground truth for state the simulator
#: builds dynamically.  The ``DramTimings`` fields are *not* listed
#: here: they carry unit-bearing type annotations (``DramCycles`` et
#: al. in :mod:`repro.config`), which
#: :func:`seed_attr_domains_from_types` turns into seeds automatically
#: — rename or add a timing field and the analyzer follows.
ATTR_SEEDS: dict[str, str] = {
    # Bank readiness deadlines and channel bus bookkeeping.
    "act_ready": DRAM, "cas_ready": DRAM, "pre_ready": DRAM,
    "last_use": DRAM, "next_cas_allowed": DRAM, "data_bus_free": DRAM,
    "rank_act_ready": DRAM, "rank_read_after_write": DRAM,
    "row_idle_precharge_cycles": DRAM, "starvation_cap_dram_cycles": DRAM,
    "starvation_cap": DRAM, "_next_refresh": DRAM,
    # Transaction / request timestamps are stamped on the DRAM clock.
    "arrival": DRAM,
    # Core-side state runs on the CPU clock.
    "skip_until": CPU, "_fetch_resume": CPU, "_quiet_from": CPU,
    # Explicitly unitless identifiers.
    "seq": DIMLESS, "magnitude": DIMLESS, "open_row": DIMLESS,
    "burst_length": DIMLESS,
}

#: Local/parameter names with a known domain (exact match).
NAME_SEEDS: dict[str, str] = {
    "cpu_now": CPU, "cpu_cycle": CPU, "cpu_done": CPU, "cpu_wake": CPU,
    "dram_now": DRAM, "dram_cycle": DRAM, "dram_done": DRAM,
    "dram_wake": DRAM, "data_end": DRAM, "arrival": DRAM,
}

#: Attribute/name components that denote the CPU-per-DRAM clock ratio;
#: multiplying or floor-dividing by one is the sanctioned domain cast.
CONVERTER_NAMES = {"cpu_ratio", "_cpu_ratio", "_ratio", "ratio",
                   "clock_ratio"}

#: Module prefixes fixing the clock of a bare ``now`` parameter/local.
#: Scheduler subclasses override to dram_cycle wherever they live.
MODULE_NOW_DOMAINS: tuple[tuple[str, str], ...] = (
    ("repro.dram", DRAM),
    ("repro.sched", DRAM),
    ("repro.analysis.protocol", DRAM),
    ("repro.cpu", CPU),
    ("repro.cache", CPU),
    ("repro.sim", CPU),
    ("repro.core", CPU),
    ("repro.telemetry", CPU),
)

#: Variable/attribute names whose referent class is known by convention,
#: used to resolve method calls and attribute domains across objects.
VAR_CLASS_SEEDS: dict[str, str] = {
    "bank": "Bank", "banks": "Bank",
    "core": "OutOfOrderCore", "cores": "OutOfOrderCore",
    "channel": "ChannelController", "channels": "ChannelController",
    "controller": "ChannelController",
    "txn": "Transaction", "cand": "CandidateCommand",
    "timing": "ChannelTiming",
    "memory": "MemorySystem", "memsys": "MemorySystem",
    "hierarchy": "MemoryHierarchy",
    "scheduler": "Scheduler",
    "events": "EventQueue",
}


#: Unit-bearing type-annotation names (defined in :mod:`repro.config`)
#: mapped to the domain they declare.  Any attribute, property return,
#: or ``self.x: T = ...`` assignment annotated with one of these is
#: seeded with the corresponding domain, by *name*, graph-wide.
CYCLE_TYPE_DOMAINS: dict[str, str] = {
    "DramCycles": DRAM,
    "CpuCycles": CPU,
    "Nanos": NS,
}


def _annotation_domain(node: ast.AST | None) -> str | None:
    """Domain declared by a type annotation, unwrapping the common
    spellings: ``DramCycles``, ``"DramCycles"``, ``DramCycles | None``,
    ``Optional[DramCycles]``, ``config.DramCycles``."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return CYCLE_TYPE_DOMAINS.get(node.id)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return CYCLE_TYPE_DOMAINS.get(node.value.strip())
    if isinstance(node, ast.Attribute):
        return CYCLE_TYPE_DOMAINS.get(node.attr)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_domain(node.left)
        return left if left is not None else _annotation_domain(node.right)
    if isinstance(node, ast.Subscript):  # Optional[X], Final[X]
        return _annotation_domain(node.slice)
    return None


def _is_property(fn: FunctionInfo) -> bool:
    for deco in fn.node.decorator_list:
        name = deco.attr if isinstance(deco, ast.Attribute) else getattr(
            deco, "id", None
        )
        if name in ("property", "cached_property"):
            return True
    return False


def seed_attr_domains_from_types(graph: ModuleGraph) -> dict[str, str]:
    """Harvest attribute-domain seeds from unit-bearing annotations.

    Three spellings count, all keyed by attribute *name* (matching how
    :data:`ATTR_SEEDS` is consulted): class-body field annotations
    (dataclass fields), ``-> DramCycles`` returns on properties, and
    annotated instance assignments ``self.x: DramCycles = ...``.  A
    name annotated with two different domains anywhere in the graph is
    dropped entirely — a conflicting seed is worse than no seed.
    """
    seeds: dict[str, str] = {}
    conflicts: set[str] = set()

    def add(name: str, domain: str | None) -> None:
        if domain is None or name in conflicts:
            return
        if seeds.get(name, domain) != domain:
            conflicts.add(name)
            del seeds[name]
            return
        seeds[name] = domain

    for cls in graph.all_classes():
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                add(stmt.target.id, _annotation_domain(stmt.annotation))
        for method in cls.methods.values():
            if _is_property(method):
                add(method.name, _annotation_domain(method.node.returns))
            for node in ast.walk(method.node):
                if (
                    isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Attribute)
                    and isinstance(node.target.value, ast.Name)
                    and node.target.value.id == "self"
                ):
                    add(node.target.attr, _annotation_domain(node.annotation))
    return seeds


def merge_domains(a: object, b: object) -> object:
    """Lattice join used at control-flow merges: disagree -> unknown."""
    return a if a == b else None


def _is_time(domain: object) -> bool:
    return domain in _TIME


def _mixed(a: object, b: object) -> bool:
    return _is_time(a) and _is_time(b) and a != b


def _is_converter(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr in CONVERTER_NAMES
    if isinstance(node, ast.Name):
        return node.id in CONVERTER_NAMES
    return False


def _target_names(target: ast.AST) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for elt in target.elts:
            names.extend(_target_names(elt))
        return names
    return []


class _Scan:
    """One function's flow-sensitive domain analysis."""

    def __init__(
        self,
        graph: ModuleGraph,
        func: FunctionInfo,
        summaries: dict[str, str | None],
        class_attrs: dict[tuple[str, str], str | None],
        findings: list[Finding] | None,
        attr_seeds: dict[str, str] | None = None,
    ) -> None:
        self.graph = graph
        self.func = func
        self.summaries = summaries
        self.class_attrs = class_attrs
        self.findings = findings
        self.attr_seeds = ATTR_SEEDS if attr_seeds is None else attr_seeds
        self._flag = False
        self._returns: list[object] = []

    # --------------------------------------------------------------- seeds

    def param_domain(self, func: FunctionInfo, name: str) -> str | None:
        if "ratio" in name:
            return None
        if name in NAME_SEEDS:
            return NAME_SEEDS[name]
        if name.endswith("_cpu") or name.startswith("cpu_"):
            return CPU
        if name.endswith("_dram") or name.startswith("dram_"):
            return DRAM
        if name == "now":
            return self._now_domain(func)
        return None

    def _now_domain(self, func: FunctionInfo) -> str | None:
        if func.cls is not None and self.graph.is_subclass_of(
            func.cls, "Scheduler"
        ):
            return DRAM
        mod = func.module.name
        for prefix, domain in MODULE_NOW_DOMAINS:
            if mod == prefix or mod.startswith(prefix + "."):
                return domain
        return None

    def initial_env(self) -> dict[str, object]:
        env: dict[str, object] = {}
        for name in self.func.params:
            domain = self.param_domain(self.func, name)
            if domain is not None:
                env[name] = domain
        return env

    # --------------------------------------------------------- resolution

    def receiver_class(self, node: ast.AST) -> ClassInfo | None:
        if isinstance(node, ast.Name):
            if node.id == "self" and self.func.cls is not None:
                return self.func.cls
            bare = VAR_CLASS_SEEDS.get(node.id)
        elif isinstance(node, ast.Attribute):
            bare = VAR_CLASS_SEEDS.get(node.attr)
        elif isinstance(node, ast.Subscript):
            return self.receiver_class(node.value)
        else:
            bare = None
        if bare is None:
            return None
        return self.graph.resolve_class(self.func.module, bare)

    def resolve_call(self, call: ast.Call) -> FunctionInfo | None:
        fn = call.func
        if isinstance(fn, ast.Name):
            mod = self.func.module
            if fn.id in mod.functions:
                return mod.functions[fn.id]
            target = mod.imports.get(fn.id)
            if target:
                owner, _, name = target.rpartition(".")
                owner_mod = self.graph.modules.get(owner)
                if owner_mod and name in owner_mod.functions:
                    return owner_mod.functions[name]
            return None
        if isinstance(fn, ast.Attribute):
            rcls = self.receiver_class(fn.value)
            if rcls is not None:
                return self.graph.lookup_method(rcls, fn.attr)
        return None

    # ------------------------------------------------------------ findings

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if self.findings is None or not self._flag:
            return
        self.findings.append(
            Finding(
                rule=rule,
                path=self.func.module.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    # ----------------------------------------------------------- inference

    def infer(self, node: ast.AST, env: dict[str, object]) -> object:
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return NAME_SEEDS.get(node.id)
        if isinstance(node, ast.Attribute):
            return self._attr_domain(node, env)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                node.value, bool
            ):
                return DIMLESS
            return None
        if isinstance(node, ast.BinOp):
            return self._binop(node, env)
        if isinstance(node, ast.Compare):
            self._compare(node, env)
            return None  # a bool carries no time domain
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.infer(value, env)
            return None
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand, env)
        if isinstance(node, ast.IfExp):
            self.infer(node.test, env)
            body = self.infer(node.body, env)
            orelse = self.infer(node.orelse, env)
            return merge_domains(body, orelse)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.Subscript):
            self.infer(node.slice, env)
            return self.infer(node.value, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.infer(elt, env)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.infer(key, env)
            for value in node.values:
                self.infer(value, env)
            return None
        if isinstance(node, ast.Starred):
            return self.infer(node.value, env)
        return None

    def _attr_domain(self, node: ast.Attribute, env: dict[str, object]) -> object:
        is_self = isinstance(node.value, ast.Name) and node.value.id == "self"
        if is_self and f"self.{node.attr}" in env:
            return env[f"self.{node.attr}"]
        if node.attr in self.attr_seeds:
            return self.attr_seeds[node.attr]
        rcls = self.receiver_class(node.value)
        if rcls is not None:
            for cls in self.graph.mro(rcls):
                domain = self.class_attrs.get((cls.qualname, node.attr), "∅")
                if domain != "∅":
                    return domain
        return None

    def _binop(self, node: ast.BinOp, env: dict[str, object]) -> object:
        # Sanctioned casts first: ratio multiply/divide flips the clock.
        if isinstance(node.op, ast.Mult):
            for operand, other in (
                (node.left, node.right), (node.right, node.left)
            ):
                if _is_converter(operand):
                    domain = self.infer(other, env)
                    return CPU if domain == DRAM else None
        if isinstance(node.op, (ast.FloorDiv, ast.Div)) and _is_converter(
            node.right
        ):
            domain = self.infer(node.left, env)
            return DRAM if domain == CPU else None
        left = self.infer(node.left, env)
        right = self.infer(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if _mixed(left, right):
                self._emit(
                    SEM001, node,
                    f"mixed-domain arithmetic: {left} "
                    f"{'+' if isinstance(node.op, ast.Add) else '-'} {right} "
                    f"(convert through the clock ratio first)",
                )
                return None
            if left == right:
                return left
            if left == DIMLESS:
                return right
            if right == DIMLESS:
                return left
            return left if right is None else right if left is None else None
        if isinstance(node.op, ast.Mult):
            if left == DIMLESS:
                return right
            if right == DIMLESS:
                return left
            return None
        if isinstance(node.op, (ast.FloorDiv, ast.Div)):
            if right == DIMLESS:
                return left
            if _is_time(left) and left == right:
                return DIMLESS
            return None
        if isinstance(node.op, ast.Mod):
            return left if right == DIMLESS else None
        return None

    def _compare(self, node: ast.Compare, env: dict[str, object]) -> None:
        domains = [self.infer(node.left, env)]
        domains += [self.infer(comp, env) for comp in node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(
                op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
            ):
                continue
            left, right = domains[i], domains[i + 1]
            if _mixed(left, right):
                self._emit(
                    SEM002, node,
                    f"mixed-domain comparison: {left} vs {right} "
                    f"(one side is on the wrong clock)",
                )

    def _call(self, node: ast.Call, env: dict[str, object]) -> object:
        fn = node.func
        arg_domains = [self.infer(arg, env) for arg in node.args]
        for kw in node.keywords:
            self.infer(kw.value, env)
        if isinstance(fn, ast.Name):
            if fn.id in ("min", "max") and len(node.args) >= 2:
                concrete = {d for d in arg_domains if _is_time(d)}
                if len(concrete) > 1:
                    self._emit(
                        SEM001, node,
                        f"{fn.id}() over mixed domains "
                        f"{sorted(concrete)}: operands are on different "
                        f"clocks",
                    )
                    return None
                if len(concrete) == 1:
                    return next(iter(concrete))
                return None
            if fn.id == "len":
                return DIMLESS
            if fn.id in ("int", "round", "abs") and node.args:
                return arg_domains[0]
        callee = self.resolve_call(node)
        if callee is None:
            return None
        self._check_args(node, callee, arg_domains, env)
        return self.summaries.get(callee.qualname)

    def _check_args(
        self,
        node: ast.Call,
        callee: FunctionInfo,
        arg_domains: list[object],
        env: dict[str, object],
    ) -> None:
        params = callee.params
        if callee.cls is not None and params and params[0] in ("self", "cls"):
            params = params[1:]
        for param, arg, domain in zip(params, node.args, arg_domains):
            expected = self.param_domain(callee, param)
            if _mixed(expected, domain):
                self._emit(
                    SEM003, arg,
                    f"argument {param!r} of {callee.qualname}() expects "
                    f"{expected} but receives {domain}",
                )
        by_name = dict(zip(params, arg_domains))  # positional, for context
        del by_name
        for kw in node.keywords:
            if kw.arg is None:
                continue
            expected = self.param_domain(callee, kw.arg)
            domain = self.infer(kw.value, env)
            if _mixed(expected, domain):
                self._emit(
                    SEM003, kw.value,
                    f"argument {kw.arg!r} of {callee.qualname}() expects "
                    f"{expected} but receives {domain}",
                )

    # ----------------------------------------------------------- statements

    def _record_class_attr(self, attr: str, domain: object) -> None:
        if self.func.cls is None or not _is_time(domain):
            return
        key = (self.func.cls.qualname, attr)
        current = self.class_attrs.get(key, "∅")
        if current == "∅":
            self.class_attrs[key] = str(domain)
        elif current != domain:
            self.class_attrs[key] = None

    def _assign_target(
        self, target: ast.AST, domain: object, env: dict[str, object],
        node: ast.AST,
    ) -> None:
        if isinstance(target, ast.Name):
            if domain is None:
                env.pop(target.id, None)
            else:
                env[target.id] = domain
            return
        if isinstance(target, ast.Attribute):
            expected = self.attr_seeds.get(target.attr)
            if _mixed(expected, domain):
                self._emit(
                    SEM003, node,
                    f"storing {domain} into {target.attr!r}, which is "
                    f"declared {expected}",
                )
            is_self = (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
            )
            if is_self:
                if domain is None:
                    env.pop(f"self.{target.attr}", None)
                else:
                    env[f"self.{target.attr}"] = domain
                self._record_class_attr(target.attr, domain)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, None, env, node)
            return
        if isinstance(target, ast.Subscript):
            self.infer(target.value, env)
            self.infer(target.slice, env)
            base = target.value
            if isinstance(base, ast.Attribute):
                expected = self.attr_seeds.get(base.attr)
                if _mixed(expected, domain):
                    self._emit(
                        SEM003, node,
                        f"storing {domain} into an element of "
                        f"{base.attr!r}, which is declared {expected}",
                    )

    def apply_node(self, node: cfglib.Node, env: dict[str, object]) -> dict:
        stmt = node.stmt
        if stmt is None:
            return env
        if node.kind == cfglib.BRANCH:
            test = getattr(stmt, "test", None)
            if test is not None:
                self.infer(test, env)
            return env
        if node.kind == cfglib.LOOP:
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                domain = self.infer(stmt.iter, env)
                for name in _target_names(stmt.target):
                    if domain is None:
                        env.pop(name, None)
                    else:
                        env[name] = domain
            elif isinstance(stmt, ast.While):
                self.infer(stmt.test, env)
            return env
        if isinstance(stmt, ast.Assign):
            domain = self.infer(stmt.value, env)
            for target in stmt.targets:
                self._assign_target(target, domain, env, stmt)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                domain = self.infer(stmt.value, env)
                self._assign_target(stmt.target, domain, env, stmt)
            return env
        if isinstance(stmt, ast.AugAssign):
            value = self.infer(stmt.value, env)
            target = self.infer(stmt.target, env)
            if isinstance(stmt.op, (ast.Add, ast.Sub)) and _mixed(
                target, value
            ):
                self._emit(
                    SEM001, stmt,
                    f"mixed-domain arithmetic: {target} "
                    f"{'+=' if isinstance(stmt.op, ast.Add) else '-='} "
                    f"{value}",
                )
            return env
        if isinstance(stmt, ast.Return):
            domain = self.infer(stmt.value, env) if stmt.value else None
            self._returns.append(domain)
            return env
        if isinstance(stmt, ast.Expr):
            self.infer(stmt.value, env)
            return env
        if isinstance(stmt, ast.Assert):
            self.infer(stmt.test, env)
            return env
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.infer(item.context_expr, env)
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        return env

    # ---------------------------------------------------------------- run

    def run(self, flag: bool) -> None:
        cfg = cfglib.build_cfg(self.func.node)
        init = self.initial_env()
        self._flag = False
        in_envs = run_forward(
            cfg, init,
            lambda node, env: self.apply_node(node, env),
            merge_domains,
        )
        self._flag = flag
        self._returns = []
        for node in cfg.nodes:
            env = in_envs.get(node)
            if env is None:
                continue  # statically unreachable
            self.apply_node(node, dict(env))
        summary: object = None
        if self._returns:
            summary = self._returns[0]
            for domain in self._returns[1:]:
                summary = merge_domains(summary, domain)
        if _is_time(summary):
            self.summaries[self.func.qualname] = str(summary)
        else:
            self.summaries.pop(self.func.qualname, None)


class CycleDomainPass:
    """SEM001–SEM003: whole-program cycle-domain checking."""

    ids = (SEM001, SEM002, SEM003)

    def run(self, graph: ModuleGraph) -> list[Finding]:
        summaries: dict[str, str | None] = {}
        class_attrs: dict[tuple[str, str], str | None] = {}
        # Hand-written seeds plus whatever the unit-bearing type
        # annotations declare; annotations win on a name collision.
        attr_seeds = dict(ATTR_SEEDS)
        attr_seeds.update(seed_attr_domains_from_types(graph))
        functions = graph.all_functions()
        # Two summary rounds let return domains and inferred attribute
        # domains flow through call chains before anything is flagged.
        for _ in range(2):
            for func in functions:
                _Scan(
                    graph, func, summaries, class_attrs, None, attr_seeds
                ).run(False)
        findings: list[Finding] = []
        for func in functions:
            _Scan(
                graph, func, summaries, class_attrs, findings, attr_seeds
            ).run(True)
        return findings
