"""Process-safety & concurrency contracts (CONC001–CONC005).

``run_many`` fans simulations out over a *fork* pool, the determinism
verifier re-runs specs in a fresh subprocess, and several processes
share rendezvous files (the engine result cache, stream manifests, the
fleet registry, bench records, the incremental-analysis cache).  The
ROADMAP's distributed experiment service promotes exactly these
boundaries from "one host, one pool" to "many hosts, many queues" — so
this pass certifies them statically, the way the cycle-domain and
effect passes certify virtual-time correctness:

=========  =============================================================
CONC001    mutable module-global state written by code reachable from a
           worker entrypoint — a forked worker mutates its *copy*, the
           parent never sees it (or worse, sees stale pre-fork state),
           so results silently depend on which process ran the spec
CONC002    fork-captured resources crossing the pool boundary: lambdas,
           bound methods, closures, open file handles, locks, or live
           RNG objects passed to ``ProcessPoolExecutor.submit``/``map``
           — handles are duplicated, locks may be held forever, RNG
           state forks and streams collide (inject a seed, not a
           generator; reseed per worker)
CONC003    non-atomic persistence: a raw ``os.replace`` — or a
           write-mode open / ``write_text`` / ``write_bytes`` touching
           a shared on-disk artifact — anywhere outside the single
           sanctioned helper :mod:`repro.util.atomicio`, exactly as
           DET002 allowlists :mod:`repro.util.hostclock` for the host
           clock
CONC004    pickle-boundary audit: a type transitively reachable from
           ``RunSpec``/``SimResult`` carries a raw ``set``/``frozenset``
           payload (iteration order is process-dependent, so two
           bit-identical runs pickle different bytes) or a lambda/bound
           method (unpicklable); ``__getstate__``/``__reduce__`` on the
           class is the sanctioned escape hatch
CONC005    post-fork ``os.environ`` read in worker-reachable code
           outside a sanctioned config-snapshot accessor — env state
           read after the fork may differ from what the parent hashed
           into the cache key, so the worker simulates a different
           machine than the key describes
=========  =============================================================

Worker entrypoints are *derived*, not hardcoded: any callable passed to
``submit``/``map`` on a ``ProcessPoolExecutor`` (or ``multiprocessing``
pool) is a root, and reachability is computed over a whole-program call
graph (direct calls, ``self`` dispatch, module-qualified calls,
function-local imports like ``engine._dispatch``'s, address-taken
callables, and class construction — a constructed class contributes
every method in its static MRO, since any of them may run on the
instance once it crosses the boundary).

Every exemption is a rationale-carrying allowlist entry in this module
(:data:`FORK_LOCAL_GLOBALS`, :data:`ENV_ACCESSORS`,
:data:`WRITER_ALLOWLIST`), so "zero unexplained suppressions" is
auditable by reading one file.  The runtime counterpart is
``tools/conc_stress.py``, which hammers the same artifacts from real
concurrent processes (and SIGKILLs them mid-write) — this pass proves
the discipline is *followed*, the stress harness proves the discipline
is *sufficient*.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.lint import Finding
from repro.analysis.semantic.detcov import MUTATORS
from repro.analysis.semantic.modgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleGraph,
    _resolve_relative,
)

CONC001 = "CONC001"
CONC002 = "CONC002"
CONC003 = "CONC003"
CONC004 = "CONC004"
CONC005 = "CONC005"

#: Modules allowed to host the raw atomic-persistence idioms
#: (``os.replace``, ``O_APPEND`` opens).  Everyone else must call them.
ATOMIC_HELPERS = {"repro.util.atomicio"}

#: ``(module, global)`` -> rationale: module-level mutable state that
#: worker processes may legitimately write.  Everything here must be a
#: process-local *memo of a pure function of its key* — identical in
#: every process that computes it, never read back across the fork.
FORK_LOCAL_GLOBALS: dict[tuple[str, str], str] = {
    ("repro.workloads.synthetic", "_TRACE_CACHE"):
        "pure memo keyed by the full frozen model + generation params; "
        "every process regenerates identical traces, nothing flows back",
}

#: Function qualname -> rationale: sanctioned post-fork environment
#: accessors (the config-snapshot path).  Every entry is a narrow,
#: documented knob reader; simulation code must go through one of these
#: rather than reading ``os.environ`` ad hoc, so the env surface that
#: can diverge from the parent's cache key stays enumerable.
ENV_ACCESSORS: dict[str, str] = {
    "repro.sim.engine.run_one":
        "the per-spec env bridge: exports RunSpec.stream_dir/.engine as "
        "REPRO_STREAM_DIR/REPRO_ENGINE for the run and restores after",
    "repro.sim.runner._env_flag":
        "the sanctioned boolean-knob reader (REPRO_NO_SKIP, "
        "REPRO_VERIFY_SKIP)",
    "repro.sim.runner._run_system":
        "lifts REPRO_STREAM_DIR/REPRO_FLEET_DIR around the verify-skip "
        "cross-check so the reference run cannot clobber the stream",
    "repro.sim.system.System.resolve_engine":
        "engine choice is deliberately outside the cache key (all loops "
        "are bit-identical); reading it post-fork is harmless",
    "repro.telemetry.stream.stream_dir":
        "streaming mirrors telemetry to disk, never changes results; "
        "part of the documented non-key env surface",
    "repro.telemetry.stream._positive_int_env":
        "segment-size/flush knobs for the stream writer (non-key)",
    "repro.telemetry.trace.enabled":
        "trace on/off is in the telemetry fingerprint the parent hashed "
        "into the cache key, so worker and key agree by construction",
    "repro.telemetry.trace.capacity":
        "trace ring capacity; in the telemetry fingerprint (see above)",
    "repro.telemetry.sampler.interval":
        "sampling interval; in the telemetry fingerprint (see above)",
    "repro.telemetry.perfcounters.enabled":
        "host-side perf counters are a pure side channel, excluded from "
        "fingerprints and the cache key by design",
    "repro.telemetry.fleet.fleet_root":
        "fleet registration is host-side bookkeeping, excluded from the "
        "cache key like REPRO_STREAM_DIR",
    "repro.analysis.detchain.interval":
        "det-chain checkpoint cadence; part of the determinism contract "
        "either side of the fork",
    "repro.analysis.effectcheck.enabled":
        "runtime effect verification toggle (debug harness, non-key)",
    "repro.analysis.effectcheck._env_every":
        "effect-verification cadence (debug harness, non-key)",
    "repro.analysis.protocol.sanitize_enabled":
        "protocol sanitizer toggle (debug harness, non-key)",
    "repro.analysis.protocol.ProtocolSanitizer.__init__":
        "starvation-threshold knob for the sanitizer (debug harness)",
}

#: Function qualname -> rationale: writers allowed to bypass the atomic
#: helper for a *single-writer* artifact with its own crash protocol.
WRITER_ALLOWLIST: dict[str, str] = {
    "repro.telemetry.stream._ActiveSegment.__init__":
        "segment files are single-writer incremental JSONL spills; they "
        "are sealed (and only then trusted) through the atomically "
        "replaced manifest, so an atomic whole-file replace is neither "
        "possible nor needed",
}

#: Lower-case substrings marking a path expression (or its enclosing
#: function) as touching a shared on-disk artifact.  Deliberately
#: token-based: the analyzer cannot evaluate path arithmetic, but every
#: shared artifact in the tree is named by one of these.
SHARED_ARTIFACT_TOKENS = (
    "manifest",
    "index.json",
    "index_name",
    "registry",
    "bench_",
    ".pkl",
    "cache_path",
    "_entry_path",
    "run_log",
    "segment",
    "inccache",
)

#: Bare class names whose instances cross the pool/pickle boundary.
PICKLE_ROOTS = ("RunSpec", "SimResult")

#: Methods whose presence certifies a class controls its own pickled
#: form (CONC004 trusts the author's custom payload).
_PICKLE_HOOKS = {"__getstate__", "__reduce__", "__reduce_ex__"}

#: Constructor names producing resources that must not cross a fork.
_HANDLE_CTORS = {"open"}
_LOCK_CTORS = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
_RNG_CTORS = {"Random", "SystemRandom", "default_rng"}

#: Mutable top-level literals / factory calls that make a module global
#: fork-hazardous when written (reads are fine: fork copies are equal).
_MUTABLE_FACTORIES = {
    "dict", "list", "set", "deque", "defaultdict", "Counter", "OrderedDict",
}

_SET_ANNOTATION_RE = re.compile(r"\b(?:set|frozenset)\b")

_POOL_METHODS = {"submit", "map"}


def _chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty when not a name chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return ""


def _mutable_globals(mod) -> dict[str, int]:
    """Module-level names bound to mutable containers -> def line."""
    out: dict[str, int] = {}

    def visit(stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            if value is None or not _is_mutable_literal(value):
                return
            for target in targets:
                if isinstance(target, ast.Name):
                    out[target.id] = stmt.lineno
        elif isinstance(stmt, (ast.If, ast.Try)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    visit(sub)

    for stmt in mod.tree.body:
        visit(stmt)
    return out


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = _chain(node.func)
        return bool(chain) and chain[-1] in _MUTABLE_FACTORIES
    return False


@dataclass
class _PoolSite:
    """One ``pool.submit``/``pool.map`` call."""

    node: ast.Call
    method: str
    callable: ast.AST
    payload: list[ast.AST] = field(default_factory=list)
    #: Resolved entrypoint qualname (reachability root), when the
    #: callable names a function the graph knows.
    entrypoint: str | None = None


@dataclass
class _FnFacts:
    """Everything the pass needs to know about one function."""

    func: FunctionInfo
    #: Callee qualnames (call graph edges, class ctors pre-expanded).
    edges: set[str] = field(default_factory=set)
    pool_sites: list[_PoolSite] = field(default_factory=list)
    #: ``(global name, line, col)`` writes to module-level mutables.
    global_writes: list[tuple[str, int, int]] = field(default_factory=list)
    #: ``(line, col)`` raw environment reads.
    env_reads: list[tuple[int, int]] = field(default_factory=list)


class _Scan(ast.NodeVisitor):
    """One function's facts, extracted in a single AST walk."""

    def __init__(
        self,
        graph: ModuleGraph,
        func: FunctionInfo,
        module_globals: dict[str, int],
    ) -> None:
        self.graph = graph
        self.func = func
        self.facts = _FnFacts(func=func)
        self.module_globals = module_globals
        self.local_imports = self._local_imports()
        self.pool_aliases = self._pool_aliases()
        self.nested_defs = self._nested_defs()
        self.declared_global: set[str] = {
            name
            for node in ast.walk(func.node)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        self.local_bound = self._locally_bound()
        #: Local name -> unparsed assigned value(s), for one-level token
        #: and resource propagation.
        self.local_values = self._local_values()

    # --------------------------------------------------------- environment

    def _local_imports(self) -> dict[str, str]:
        """Function-body imports (``_dispatch`` imports its runners
        locally to break a cycle; the call graph must still see them)."""
        out: dict[str, str] = {}
        for node in ast.walk(self.func.node):
            if isinstance(node, ast.Import):
                for item in node.names:
                    alias = item.asname or item.name.split(".")[0]
                    out[alias] = item.name if item.asname else alias
            elif isinstance(node, ast.ImportFrom):
                src = (
                    _resolve_relative(
                        self.func.module.name, node.level, node.module
                    )
                    if node.level
                    else (node.module or "")
                )
                for item in node.names:
                    if item.name != "*":
                        out[item.asname or item.name] = f"{src}.{item.name}"
        return out

    def _imports(self) -> dict[str, str]:
        merged = dict(self.func.module.imports)
        merged.update(self.local_imports)
        return merged

    def _pool_aliases(self) -> set[str]:
        """Local names bound to a process-pool executor."""
        aliases: set[str] = set()
        for node in ast.walk(self.func.node):
            items: list[tuple[ast.AST, ast.AST | None]] = []
            if isinstance(node, (ast.With, ast.AsyncWith)):
                items = [(i.context_expr, i.optional_vars) for i in node.items]
            elif isinstance(node, ast.Assign):
                items = [(node.value, t) for t in node.targets]
            for value, target in items:
                if not isinstance(target, ast.Name):
                    continue
                if self._is_pool_ctor(value):
                    aliases.add(target.id)
        return aliases

    def _is_pool_ctor(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        chain = _chain(node.func)
        if not chain:
            return False
        if chain[-1] == "ProcessPoolExecutor":
            return True
        if chain[-1] == "Pool":
            head = self._imports().get(chain[0], chain[0])
            return "multiprocessing" in head
        return False

    def _nested_defs(self) -> set[str]:
        return {
            node.name
            for node in ast.walk(self.func.node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not self.func.node
        }

    def _locally_bound(self) -> set[str]:
        bound = set(self.func.params)
        for node in ast.walk(self.func.node):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            elif isinstance(node, ast.For):
                targets = [node.target]
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                targets = [
                    i.optional_vars for i in node.items if i.optional_vars
                ]
            elif isinstance(node, ast.comprehension):
                targets = [node.target]
            for target in targets:
                bound |= self._binding_names(target)
        return bound - self.declared_global

    @classmethod
    def _binding_names(cls, target: ast.AST) -> set[str]:
        """Names a target *binds* (``x = …``, ``x, y = …``) — not names
        it merely mutates through (``x[k] = …``, ``x.attr = …``)."""
        if isinstance(target, ast.Name):
            return {target.id}
        if isinstance(target, ast.Starred):
            return cls._binding_names(target.value)
        if isinstance(target, (ast.Tuple, ast.List)):
            out: set[str] = set()
            for elt in target.elts:
                out |= cls._binding_names(elt)
            return out
        return set()

    def _local_values(self) -> dict[str, list[ast.AST]]:
        out: dict[str, list[ast.AST]] = {}
        for node in ast.walk(self.func.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.setdefault(target.id, []).append(node.value)
        return out

    # ---------------------------------------------------------- resolution

    def resolve(self, node: ast.AST):
        """Resolve a callable/class reference to graph info, or None."""
        chain = _chain(node)
        if not chain:
            return None
        if chain[0] == "self":
            if len(chain) == 2 and self.func.cls is not None:
                return self.graph.lookup_method(self.func.cls, chain[1])
            return None
        mod = self.func.module
        if len(chain) == 1:
            found = mod.functions.get(chain[0]) or mod.classes.get(chain[0])
            if found is not None:
                return found
        target = self._imports().get(chain[0])
        if target is not None:
            full = ".".join([target] + chain[1:])
            owner, _, name = full.rpartition(".")
            owner_mod = self.graph.modules.get(owner)
            if owner_mod is not None:
                found = owner_mod.functions.get(name) or owner_mod.classes.get(
                    name
                )
                if found is not None:
                    return found
            if full in self.graph.classes:
                return self.graph.classes[full]
        resolved = self.graph.resolve_class(mod, ".".join(chain))
        if resolved is not None:
            return resolved
        # ``SomeClass.method()`` (classmethods, static helpers): resolve
        # the prefix as a class.  Return the *class*: the call implies
        # instances cross into this code, so every method may run.
        if len(chain) >= 2:
            prefix = self.graph.resolve_class(mod, ".".join(chain[:-1]))
            if prefix is not None and self.graph.lookup_method(
                prefix, chain[-1]
            ) is not None:
                return prefix
        return None

    def _add_edge(self, resolved) -> None:
        if isinstance(resolved, FunctionInfo):
            self.facts.edges.add(resolved.qualname)
        elif isinstance(resolved, ClassInfo):
            # Once an instance exists in worker code any method may run;
            # fold the whole static MRO in (conservative by design).
            for cls in self.graph.mro(resolved):
                for method in cls.methods.values():
                    self.facts.edges.add(method.qualname)

    # ------------------------------------------------------------- walking

    def run(self) -> _FnFacts:
        for node in ast.walk(self.func.node):
            if isinstance(node, ast.Call):
                self._visit_call(node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._visit_store(node)
            elif isinstance(node, ast.Attribute):
                self._visit_attribute(node)
            elif isinstance(node, ast.Subscript):
                self._visit_subscript(node)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                # `from os import environ` style access.
                target = self._imports().get(node.id)
                if target in ("os.environ", "os.getenv"):
                    self.facts.env_reads.append(
                        (node.lineno, node.col_offset)
                    )
        return self.facts

    def _visit_call(self, node: ast.Call) -> None:
        fn = node.func
        chain = _chain(fn)
        # Pool dispatch site?
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr in _POOL_METHODS
            and isinstance(fn.value, ast.Name)
            and fn.value.id in self.pool_aliases
            and node.args
        ):
            resolved = self.resolve(node.args[0])
            if resolved is not None:
                self._add_edge(resolved)
            self.facts.pool_sites.append(
                _PoolSite(
                    node=node,
                    method=fn.attr,
                    callable=node.args[0],
                    payload=list(node.args[1:]),
                    entrypoint=(
                        resolved.qualname
                        if isinstance(resolved, FunctionInfo)
                        else None
                    ),
                )
            )
            return
        # Container mutator on a module global (CONC001 write).
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr in MUTATORS
            and isinstance(fn.value, ast.Name)
        ):
            self._record_global_write(fn.value, fn.value.id)
        # Call-graph edge.
        resolved = self.resolve(fn)
        if resolved is not None:
            self._add_edge(resolved)
        # Address-taken callables in argument position.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                taken = self.resolve(arg)
                if isinstance(taken, FunctionInfo):
                    self._add_edge(taken)
        # Raw env read (os.environ.get / os.getenv / environ()).
        if chain[:2] == ["os", "environ"] or chain[:2] == ["os", "getenv"]:
            self.facts.env_reads.append((node.lineno, node.col_offset))

    def _visit_store(self, node) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Name):
                if (
                    target.id in self.declared_global
                    and target.id in self.module_globals
                ):
                    self.facts.global_writes.append(
                        (target.id, target.lineno, target.col_offset)
                    )
                continue
            root = target
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name):
                self._record_global_write(root, root.id)

    def _record_global_write(self, node: ast.AST, name: str) -> None:
        if name not in self.module_globals:
            return
        if name in self.local_bound:
            return  # shadowed by a parameter/local of the same name
        self.facts.global_writes.append(
            (name, node.lineno, node.col_offset)
        )

    def _visit_attribute(self, node: ast.Attribute) -> None:
        chain = _chain(node)
        if chain[:2] == ["os", "environ"] and len(chain) == 2:
            self.facts.env_reads.append((node.lineno, node.col_offset))

    def _visit_subscript(self, node: ast.Subscript) -> None:
        # Writes through `GLOBAL[k] = v` are caught by _visit_store; this
        # catches `del GLOBAL[k]` which arrives as a Delete target.
        if isinstance(node.ctx, ast.Del) and isinstance(
            node.value, ast.Name
        ):
            self._record_global_write(node.value, node.value.id)

    # ------------------------------------------------- CONC002 site checks

    def describe_resource(self, expr: ast.AST, depth: int = 0) -> str | None:
        """Human description when ``expr`` is a fork-hazardous resource."""
        if isinstance(expr, (ast.List, ast.Tuple)) and depth == 0:
            for elt in expr.elts:
                desc = self.describe_resource(elt, depth=1)
                if desc is not None:
                    return desc
            return None
        if isinstance(expr, ast.Call):
            chain = _chain(expr.func)
            if chain:
                if chain[-1] in _HANDLE_CTORS:
                    return "an open file handle"
                if chain[-1] in _LOCK_CTORS:
                    return f"a live lock ({chain[-1]}())"
                if chain[-1] in _RNG_CTORS or chain[0] == "random":
                    return "a live RNG object"
            return None
        if isinstance(expr, ast.Name):
            for value in self.local_values.get(expr.id, ()):
                desc = self.describe_resource(value, depth=1)
                if desc is not None:
                    return desc
            return self._resource_name_hint(expr.id)
        if isinstance(expr, ast.Attribute):
            return self._resource_name_hint(expr.attr)
        return None

    @staticmethod
    def _resource_name_hint(name: str) -> str | None:
        lowered = name.lower()
        if lowered == "rng" or lowered.endswith("_rng"):
            return "a live RNG object (by naming convention)"
        if lowered == "lock" or lowered.endswith("_lock"):
            return "a live lock (by naming convention)"
        return None


# ------------------------------------------------------------------ CONC004


class _PickleAudit:
    """Type-reachability walk from the pickle roots (CONC004)."""

    def __init__(self, graph: ModuleGraph) -> None:
        self.graph = graph
        self.findings: list[Finding] = []
        self._seen: set[str] = set()

    def run(self) -> list[Finding]:
        for cls in self.graph.all_classes():
            if cls.name in PICKLE_ROOTS:
                self._visit(cls)
        return self.findings

    def _visit(self, cls: ClassInfo) -> None:
        if cls.qualname in self._seen:
            return
        self._seen.add(cls.qualname)
        if _PICKLE_HOOKS & set(cls.methods):
            return  # custom pickled form: the author controls the payload
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self._check_annotation(cls, stmt)
        init = cls.methods.get("__init__")
        if init is not None:
            self._check_init(cls, init)

    def _check_annotation(self, cls: ClassInfo, stmt: ast.AnnAssign) -> None:
        name = stmt.target.id
        annotation = _unparse(stmt.annotation)
        if _SET_ANNOTATION_RE.search(annotation):
            self.findings.append(
                Finding(
                    rule=CONC004,
                    path=cls.module.path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    message=(
                        f"{cls.name}.{name} is a raw set ({annotation}); "
                        f"its iteration order is process-dependent, so the "
                        f"pickled payload differs between bit-identical "
                        f"runs — use a sorted tuple/list, or give "
                        f"{cls.name} a __getstate__ that normalises it"
                    ),
                )
            )
        for leaf in ast.walk(stmt.annotation):
            dotted = _unparse(leaf) if isinstance(
                leaf, (ast.Name, ast.Attribute)
            ) else None
            if not dotted:
                continue
            resolved = self.graph.resolve_class(cls.module, dotted)
            if resolved is not None:
                self._visit(resolved)
        # field(default_factory=set) and friends.
        if isinstance(stmt.value, ast.Call):
            for kw in stmt.value.keywords:
                if kw.arg != "default_factory":
                    continue
                chain = _chain(kw.value)
                if chain and chain[-1] in ("set", "frozenset"):
                    self.findings.append(
                        Finding(
                            rule=CONC004,
                            path=cls.module.path,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            message=(
                                f"{cls.name}.{name} defaults to a raw set; "
                                f"set payloads pickle in process-dependent "
                                f"order — use a sorted tuple/list"
                            ),
                        )
                    )
                elif chain:
                    resolved = self.graph.resolve_class(
                        cls.module, ".".join(chain)
                    )
                    if resolved is not None:
                        self._visit(resolved)

    def _check_init(self, cls: ClassInfo, init: FunctionInfo) -> None:
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                value = node.value
                if isinstance(value, ast.Lambda):
                    self.findings.append(
                        Finding(
                            rule=CONC004,
                            path=cls.module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"{cls.name}.{target.attr} holds a lambda; "
                                f"lambdas cannot cross the pool's pickle "
                                f"boundary — use a module-level function "
                                f"or shed it in __getstate__"
                            ),
                        )
                    )
                elif (
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                    and self.graph.lookup_method(cls, value.attr) is not None
                ):
                    self.findings.append(
                        Finding(
                            rule=CONC004,
                            path=cls.module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"{cls.name}.{target.attr} captures bound "
                                f"method self.{value.attr}; bound methods "
                                f"drag the whole instance through pickle "
                                f"(or fail outright) — store data, not "
                                f"callables"
                            ),
                        )
                    )
                elif isinstance(value, ast.Set) or (
                    isinstance(value, ast.Call)
                    and _chain(value.func)
                    and _chain(value.func)[-1] in ("set", "frozenset")
                ):
                    self.findings.append(
                        Finding(
                            rule=CONC004,
                            path=cls.module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"{cls.name}.{target.attr} is a raw set; "
                                f"its pickled order is process-dependent "
                                f"— use a sorted tuple/list"
                            ),
                        )
                    )
                elif isinstance(value, ast.Call):
                    chain = _chain(value.func)
                    if chain:
                        resolved = self.graph.resolve_class(
                            cls.module, ".".join(chain)
                        )
                        if resolved is not None:
                            self._visit(resolved)


# --------------------------------------------------------------------- pass


class ConcurrencyPass:
    """CONC001–CONC005: the fork/persistence process-safety contract."""

    ids = (CONC001, CONC002, CONC003, CONC004, CONC005)

    def run(self, graph: ModuleGraph) -> list[Finding]:
        facts: dict[str, _FnFacts] = {}
        globals_by_module = {
            name: _mutable_globals(mod)
            for name, mod in graph.modules.items()
        }
        scans: dict[str, _Scan] = {}
        for func in graph.all_functions():
            scan = _Scan(
                graph, func, globals_by_module.get(func.module.name, {})
            )
            scans[func.qualname] = scan
            facts[func.qualname] = scan.run()

        reachable = self._reachable(facts)
        findings: list[Finding] = []
        findings.extend(self._check_globals(facts, reachable))
        findings.extend(self._check_pool_sites(scans, facts))
        findings.extend(self._check_persistence(graph, scans, facts))
        findings.extend(_PickleAudit(graph).run())
        findings.extend(self._check_env(facts, reachable))
        return findings

    # -------------------------------------------------------- reachability

    @staticmethod
    def _reachable(facts: dict[str, _FnFacts]) -> set[str]:
        """Function qualnames reachable from any pool entrypoint."""
        roots = [
            site.entrypoint
            for fn in facts.values()
            for site in fn.pool_sites
            if site.entrypoint is not None
        ]
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            qualname = stack.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            fn = facts.get(qualname)
            if fn is None:
                continue
            stack.extend(fn.edges - seen)
        return seen

    # ------------------------------------------------------------- CONC001

    @staticmethod
    def _check_globals(
        facts: dict[str, _FnFacts], reachable: set[str]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for qualname in sorted(reachable):
            fn = facts.get(qualname)
            if fn is None:
                continue
            for name, line, col in fn.global_writes:
                if (fn.func.module.name, name) in FORK_LOCAL_GLOBALS:
                    continue
                findings.append(
                    Finding(
                        rule=CONC001,
                        path=fn.func.module.path,
                        line=line,
                        col=col,
                        message=(
                            f"{qualname.rsplit('.', 1)[-1]}() writes "
                            f"module global {name!r} and is reachable from "
                            f"a worker entrypoint; a forked worker mutates "
                            f"its own copy, so the write is lost (or reads "
                            f"stale pre-fork state) — pass state "
                            f"explicitly, or allowlist a pure per-process "
                            f"memo in FORK_LOCAL_GLOBALS with rationale"
                        ),
                    )
                )
        return findings

    # ------------------------------------------------------------- CONC002

    @staticmethod
    def _check_pool_sites(
        scans: dict[str, _Scan], facts: dict[str, _FnFacts]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for qualname in sorted(facts):
            fn = facts[qualname]
            scan = scans[qualname]
            for site in fn.pool_sites:
                findings.extend(
                    ConcurrencyPass._check_site(scan, fn, site)
                )
        return findings

    @staticmethod
    def _check_site(
        scan: _Scan, fn: _FnFacts, site: _PoolSite
    ) -> list[Finding]:
        findings: list[Finding] = []
        path = fn.func.module.path
        target = site.callable
        where = f"pool.{site.method}() in {fn.func.name}()"

        def add(message: str, node: ast.AST) -> None:
            findings.append(
                Finding(
                    rule=CONC002,
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                )
            )

        if isinstance(target, ast.Lambda):
            add(
                f"{where} ships a lambda across the fork/pickle boundary; "
                f"lambdas are unpicklable — use a module-level function",
                target,
            )
        else:
            chain = _chain(target)
            if chain and chain[0] == "self":
                add(
                    f"{where} ships bound method "
                    f"{'.'.join(chain)} across the pool boundary; the "
                    f"whole instance is captured at fork/pickle time — "
                    f"use a module-level function taking explicit state",
                    target,
                )
            elif (
                len(chain) == 1 and chain[0] in scan.nested_defs
            ):
                add(
                    f"{where} ships nested function {chain[0]}(); a "
                    f"closure is unpicklable and silently captures "
                    f"enclosing state — hoist it to module level",
                    target,
                )
        for arg in site.payload:
            desc = scan.describe_resource(arg)
            if desc is not None:
                add(
                    f"{where} passes {desc} to the worker; resources "
                    f"captured at fork time are duplicated or stale — "
                    f"open/construct them inside the worker (RNG: inject "
                    f"a seed and reseed per worker)",
                    arg,
                )
        return findings

    # ------------------------------------------------------------- CONC003

    @staticmethod
    def _check_persistence(
        graph: ModuleGraph,
        scans: dict[str, _Scan],
        facts: dict[str, _FnFacts],
    ) -> list[Finding]:
        findings: list[Finding] = []
        for qualname in sorted(facts):
            fn = facts[qualname]
            if fn.func.module.name in ATOMIC_HELPERS:
                continue
            if qualname in WRITER_ALLOWLIST:
                continue
            scan = scans[qualname]
            for node in ast.walk(fn.func.node):
                if not isinstance(node, ast.Call):
                    continue
                finding = ConcurrencyPass._check_write_call(
                    scan, fn, node
                )
                if finding is not None:
                    findings.append(finding)
        # Module-level writes (rare, but a top-level os.replace would
        # otherwise slip through every function-scoped scan).
        for mod_name in sorted(graph.modules):
            if mod_name in ATOMIC_HELPERS:
                continue
            mod = graph.modules[mod_name]
            in_function = {
                id(n)
                for fn in list(mod.functions.values())
                + [m for c in mod.classes.values() for m in c.methods.values()]
                for n in ast.walk(fn.node)
            }
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Call) and id(node) not in in_function:
                    chain = _chain(node.func)
                    if chain == ["os", "replace"]:
                        findings.append(
                            ConcurrencyPass._replace_finding(mod.path, node)
                        )
        return findings

    @staticmethod
    def _replace_finding(path: str, node: ast.Call) -> Finding:
        return Finding(
            rule=CONC003,
            path=path,
            line=node.lineno,
            col=node.col_offset,
            message=(
                "raw os.replace outside repro.util.atomicio; the atomic "
                "write-fsync-replace idiom lives in one audited helper "
                "(like DET002's hostclock) — call atomicio.write_bytes/"
                "write_text/write_json instead"
            ),
        )

    @staticmethod
    def _check_write_call(
        scan: _Scan, fn: _FnFacts, node: ast.Call
    ) -> Finding | None:
        chain = _chain(node.func)
        if chain == ["os", "replace"]:
            return ConcurrencyPass._replace_finding(fn.func.module.path, node)
        path_expr: ast.AST | None = None
        kind = None
        if chain and chain[-1] == "open" and len(chain) <= 2:
            if chain == ["os", "open"]:
                flags = " ".join(_unparse(a) for a in node.args[1:2])
                if not any(
                    token in flags
                    for token in ("O_WRONLY", "O_RDWR", "O_APPEND", "O_CREAT")
                ):
                    return None
            elif len(chain) == 1:
                mode = ""
                if len(node.args) > 1 and isinstance(
                    node.args[1], ast.Constant
                ):
                    mode = str(node.args[1].value)
                for kw in node.keywords:
                    if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                        mode = str(kw.value.value)
                if not any(ch in mode for ch in "wax+"):
                    return None
            else:
                return None
            path_expr = node.args[0] if node.args else None
            kind = "write-mode open"
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("write_text", "write_bytes")
        ):
            receiver = node.func.value
            if isinstance(receiver, ast.Name):
                target = scan._imports().get(receiver.id, "")
                if target in ATOMIC_HELPERS:
                    return None
            path_expr = receiver
            kind = f".{node.func.attr}()"
        if path_expr is None or kind is None:
            return None
        token = ConcurrencyPass._artifact_token(scan, fn, path_expr)
        if token is None:
            return None
        return Finding(
            rule=CONC003,
            path=fn.func.module.path,
            line=node.lineno,
            col=node.col_offset,
            message=(
                f"{kind} touches shared artifact path (token {token!r}) "
                f"outside repro.util.atomicio; concurrent writers can "
                f"tear it — route through atomicio.write_*/append_* "
                f"(or add a WRITER_ALLOWLIST rationale for a "
                f"single-writer protocol)"
            ),
        )

    @staticmethod
    def _artifact_token(
        scan: _Scan, fn: _FnFacts, path_expr: ast.AST
    ) -> str | None:
        """The shared-artifact token the path (or context) mentions."""
        descs = [_unparse(path_expr), fn.func.qualname]
        for leaf in ast.walk(path_expr):
            if isinstance(leaf, ast.Name):
                descs.extend(
                    _unparse(v) for v in scan.local_values.get(leaf.id, ())
                )
        haystack = " ".join(descs).lower()
        for token in SHARED_ARTIFACT_TOKENS:
            if token in haystack:
                return token
        return None

    # ------------------------------------------------------------- CONC005

    @staticmethod
    def _check_env(
        facts: dict[str, _FnFacts], reachable: set[str]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for qualname in sorted(reachable):
            fn = facts.get(qualname)
            if fn is None or qualname in ENV_ACCESSORS:
                continue
            seen_lines: set[int] = set()
            for line, col in sorted(fn.env_reads):
                if line in seen_lines:
                    continue
                seen_lines.add(line)
                findings.append(
                    Finding(
                        rule=CONC005,
                        path=fn.func.module.path,
                        line=line,
                        col=col,
                        message=(
                            f"{qualname.rsplit('.', 1)[-1]}() reads "
                            f"os.environ and is reachable from a worker "
                            f"entrypoint; post-fork env state can diverge "
                            f"from what the parent hashed into the cache "
                            f"key — snapshot config before the fork, or "
                            f"register a sanctioned accessor in "
                            f"ENV_ACCESSORS with rationale"
                        ),
                    )
                )
        return findings
