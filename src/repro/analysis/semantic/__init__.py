"""Whole-program semantic analyzer for the simulator.

The lint pass (:mod:`repro.analysis.lint`) checks one line at a time;
the passes here understand the *simulator's* semantics across modules:

* :mod:`repro.analysis.semantic.domains` — cycle-domain dataflow
  (SEM001–SEM003): CPU cycles, DRAM command-clock cycles, nanoseconds
  and dimensionless counts must never mix without a sanctioned cast.
* :mod:`repro.analysis.semantic.detcov` — det-state coverage audit
  (SEM010): every mutable field on a simulator class must be folded
  into the determinism hash-chain or explicitly allowlisted.
* :mod:`repro.analysis.semantic.contract` — scheduler contract
  verification (SEM020–SEM022): an age/starvation *ordering* on every
  issue path, no direct bank/bus mutation, required overrides present.
* :mod:`repro.analysis.semantic.effects` — interprocedural
  effect/purity inference (SEM030–SEM032): certified-pure hooks must
  stay pure, RNG/IO must not reach per-cycle model code, and
  ``# repro-batch:`` markers must cite certificates the current
  analysis still grants.  :mod:`repro.analysis.semantic.batchability`
  turns the same inference into ``batchability.json`` — a
  window-invariant / monotone-accumulating / per-cycle-only
  classification of every hot-path hook and scheduler, the proof
  surface for the model-batching work.
* :mod:`repro.analysis.semantic.concurrency` — process-safety
  contract (CONC001–CONC005): no fork-shared mutable globals, no
  fork-captured resources, all shared-artifact writes through
  :mod:`repro.util.atomicio`, a pickle-clean ``RunSpec``/``SimResult``
  surface, and no post-fork ``os.environ`` reads outside sanctioned
  accessors.

Shared infrastructure — the module graph loader
(:mod:`~repro.analysis.semantic.modgraph`), per-function CFG builder
(:mod:`~repro.analysis.semantic.cfg`) and fixpoint dataflow engine
(:mod:`~repro.analysis.semantic.dataflow`) — is reusable by future
passes.

CLI: ``python -m repro analyze [paths...] [--batchability OUT]
[--concurrency] [--cache-dir DIR | --no-cache]``.
"""

from repro.analysis.semantic.driver import (  # noqa: F401
    AnalysisReport,
    CONCURRENCY_RULES,
    SEMANTIC_RULES,
    analyze_paths,
    analyze_source,
    main,
)
