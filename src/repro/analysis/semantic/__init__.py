"""Whole-program semantic analyzer for the simulator.

The lint pass (:mod:`repro.analysis.lint`) checks one line at a time;
the passes here understand the *simulator's* semantics across modules:

* :mod:`repro.analysis.semantic.domains` — cycle-domain dataflow
  (SEM001–SEM003): CPU cycles, DRAM command-clock cycles, nanoseconds
  and dimensionless counts must never mix without a sanctioned cast.
* :mod:`repro.analysis.semantic.detcov` — det-state coverage audit
  (SEM010): every mutable field on a simulator class must be folded
  into the determinism hash-chain or explicitly allowlisted.
* :mod:`repro.analysis.semantic.contract` — scheduler contract
  verification (SEM020–SEM022): starvation caps on every issue path,
  no direct bank/bus mutation, required overrides present.

Shared infrastructure — the module graph loader
(:mod:`~repro.analysis.semantic.modgraph`), per-function CFG builder
(:mod:`~repro.analysis.semantic.cfg`) and fixpoint dataflow engine
(:mod:`~repro.analysis.semantic.dataflow`) — is reusable by future
passes.

CLI: ``python -m repro analyze [paths...]``.
"""

from repro.analysis.semantic.driver import (  # noqa: F401
    AnalysisReport,
    SEMANTIC_RULES,
    analyze_paths,
    analyze_source,
    main,
)
