"""Generic forward fixpoint dataflow engine over the per-function CFG.

A client supplies three things: an initial environment for the entry
node, a *transfer* function mapping (node, in-env) to an out-env, and a
*join* for merging environments at control-flow merges.  Environments
are plain ``dict[str, value]``; the engine iterates a worklist until no
out-environment changes, which terminates as long as the client's value
lattice has finite height (the cycle-domain lattice has height 2).

The engine is deliberately small — passes that need path sensitivity
(the scheduler contract pass) use :func:`cfg.reachable_avoiding`
instead, and passes that need whole-program context run this engine per
function after computing global summaries.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.semantic.cfg import CFG, Node

Env = dict[str, object]


def join_envs(envs: list[Env], merge: Callable[[object, object], object]) -> Env:
    """Key-wise merge; a key missing from one branch merges with None."""
    if not envs:
        return {}
    keys: set[str] = set()
    for env in envs:
        keys.update(env)
    out: Env = {}
    for key in keys:
        value = envs[0].get(key)
        for env in envs[1:]:
            value = merge(value, env.get(key))
        if value is not None:
            out[key] = value
    return out


def run_forward(
    cfg: CFG,
    init: Env,
    transfer: Callable[[Node, Env], Env],
    merge: Callable[[object, object], object],
    max_iterations: int = 10000,
) -> dict[Node, Env]:
    """Iterate to fixpoint; returns each node's *in*-environment.

    ``transfer`` must return a fresh dict (the engine never aliases the
    environments it hands out).  ``merge`` combines two lattice values
    (``None`` = unknown/bottom).
    """
    in_env: dict[Node, Env] = {cfg.entry: dict(init)}
    out_env: dict[Node, Env] = {}
    worklist = [cfg.entry]
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:  # pathological CFG: give up soundly
            break
        node = worklist.pop(0)
        env_in = in_env.get(node, {})
        env_out = transfer(node, dict(env_in))
        if out_env.get(node) == env_out:
            continue
        out_env[node] = env_out
        for succ in node.succs:
            merged = join_envs(
                [out_env[p] for p in succ.preds if p in out_env],
                merge,
            )
            if in_env.get(succ) != merged:
                in_env[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)
            elif succ not in out_env and succ not in worklist:
                worklist.append(succ)
    return in_env
