"""Entry point for the semantic analyzer: ``python -m repro analyze``.

Loads the module graph once, runs every semantic pass over it, applies
the shared ``# repro-lint: disable=`` suppression grammar per file
(including ``disable-file=`` headers), and reports findings in the same
``path:line:col: RULE message`` format as the lint pass so editors and
CI treat both uniformly.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import suppress
from repro.analysis.lint import Finding, iter_python_files
from repro.analysis.semantic.concurrency import ConcurrencyPass
from repro.analysis.semantic.contract import SchedulerContractPass
from repro.analysis.semantic.detcov import StateCoveragePass
from repro.analysis.semantic.domains import CycleDomainPass
from repro.analysis.semantic.effects import EffectPass
from repro.analysis.semantic.modgraph import ModuleGraph

#: rule id -> one-line hazard description (the analyzer's registry).
SEMANTIC_RULES: dict[str, str] = {
    "SEM001": "mixed-domain arithmetic (cpu/dram/ns cycles combined)",
    "SEM002": "mixed-domain comparison (operands on different clocks)",
    "SEM003": "mixed-domain dataflow across a seeded attribute or "
              "parameter boundary",
    "SEM010": "mutable simulator state not covered by det_state()/"
              "telemetry registration",
    "SEM020": "scheduler issue path that never consults an age/"
              "starvation signal",
    "SEM021": "scheduler mutates bank/bus/queue state directly",
    "SEM022": "scheduler missing a required override (select/name)",
    "SEM030": "certified-pure method (det_state/next_wake/can_accept…) "
              "with an undeclared effect",
    "SEM031": "randomness or io inside per-cycle model code",
    "SEM032": "batching shortcut not backed by a current certificate",
    "CONC001": "module-global mutable state written by worker-reachable "
               "code (fork-shared state hazard)",
    "CONC002": "fork-captured resource (handle/lock/RNG/lambda/bound "
               "method) crossing the pool boundary",
    "CONC003": "non-atomic write to a shared on-disk artifact outside "
               "repro.util.atomicio",
    "CONC004": "unpicklable or order-nondeterministic payload reachable "
               "from RunSpec/SimResult",
    "CONC005": "post-fork os.environ read outside a sanctioned "
               "config-snapshot accessor",
}

#: Rule ids the ``--concurrency`` convenience flag selects.
CONCURRENCY_RULES = frozenset(
    rule for rule in SEMANTIC_RULES if rule.startswith("CONC")
)

ALL_PASSES = (
    CycleDomainPass(),
    StateCoveragePass(),
    SchedulerContractPass(),
    EffectPass(),
    ConcurrencyPass(),
)


@dataclass
class AnalysisReport:
    """Outcome of analyzing a set of files."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors


def _partition(
    report: AnalysisReport, findings: list[Finding], sources: dict[str, str]
) -> None:
    """Split raw findings into reported vs suppressed using the shared
    suppression grammar, parsed once per file."""
    maps: dict[str, suppress.SuppressionMap] = {}
    for finding in findings:
        smap = maps.get(finding.path)
        if smap is None:
            smap = suppress.parse_suppressions(sources.get(finding.path, ""))
            maps[finding.path] = smap
        if smap.disabled(finding.line, finding.rule):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)


def analyze_graph(
    graph: ModuleGraph, select: set[str] | None = None
) -> AnalysisReport:
    report = AnalysisReport(files=len(graph.modules))
    report.errors.extend(graph.errors)
    raw: list[Finding] = []
    for pass_ in ALL_PASSES:
        if select is not None and not (set(pass_.ids) & select):
            continue
        raw.extend(pass_.run(graph))
    if select is not None:
        raw = [f for f in raw if f.rule in select]
    sources = {
        mod.path: mod.source for mod in graph.modules.values()
    }
    _partition(report, raw, sources)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def analyze_paths(paths, select: set[str] | None = None) -> AnalysisReport:
    """Analyze every ``*.py`` under the given files/directories as one
    whole-program module graph."""
    graph = ModuleGraph.load(iter_python_files(paths))
    return analyze_graph(graph, select=select)


def analyze_source(
    source: str, path: str = "mod.py", select: set[str] | None = None
) -> AnalysisReport:
    """Analyze one in-memory module (test convenience)."""
    import ast as _ast

    graph = ModuleGraph()
    try:
        tree = _ast.parse(source, filename=path)
    except SyntaxError as exc:
        report = AnalysisReport(files=1)
        report.errors.append(f"{path}: syntax error: {exc}")
        return report
    graph._add_module(Path(path), source, tree)
    return analyze_graph(graph, select=select)


def _default_target() -> list[str]:
    """``src/repro`` relative to this file (works installed or in-tree)."""
    return [str(Path(__file__).resolve().parents[2])]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "whole-program semantic analyzer: cycle domains, det-state "
            "coverage, scheduler contracts (see repro.analysis.semantic)"
        ),
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/repro)")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--concurrency", action="store_true",
                        help="run only the process-safety rules "
                             "(CONC001–CONC005; shorthand for --select)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule id and its hazard description")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print findings silenced by suppressions")
    parser.add_argument("--batchability", default=None, metavar="PATH",
                        help="also write the batchability-certificate "
                             "report (batchability.json) to PATH")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shard-wise incremental cache directory "
                             "(also via REPRO_ANALYZE_CACHE_DIR); warm "
                             "runs re-analyze only changed packages")
    parser.add_argument("--no-cache", action="store_true",
                        help="force whole-program analysis even when a "
                             "cache directory is configured")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(SEMANTIC_RULES):
            print(f"{rule_id}  {SEMANTIC_RULES[rule_id]}")
        return 0

    select = None
    if args.select:
        select = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        unknown = select - set(SEMANTIC_RULES)
        if unknown:
            print(f"unknown rule ids: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    if args.concurrency:
        select = (select or set()) | set(CONCURRENCY_RULES)

    targets = args.paths or _default_target()
    cached = None
    if not args.no_cache:
        from repro.analysis import inccache

        cache_dir = args.cache_dir or inccache.default_cache_dir()
        if cache_dir is not None:
            cached = inccache.analyze_paths_cached(
                targets, select=select, cache_dir=cache_dir
            )
    report = cached.report if cached else analyze_paths(targets, select=select)

    if args.batchability:
        from repro.analysis.semantic.batchability import write_report

        graph = ModuleGraph.load(iter_python_files(targets))
        write_report(graph, args.batchability)

    for finding in report.findings:
        print(finding.render())
    if args.show_suppressed:
        for finding in report.suppressed:
            print(f"[suppressed] {finding.render()}")
    for error in report.errors:
        print(error, file=sys.stderr)
    print(
        f"{report.files} modules, {len(report.findings)} findings, "
        f"{len(report.suppressed)} suppressed"
    )
    if cached is not None:
        print(
            f"cache: {len(cached.hits)} shard hits, "
            f"{len(cached.misses)} re-analyzed"
        )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
