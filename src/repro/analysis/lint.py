"""Custom AST lint pass for simulator-specific hazards.

Generic linters cannot know that ``random.random()`` inside a scheduler
silently poisons every cached experiment, or that a float creeping into a
cycle counter breaks bit-identical fast-forwarding.  This pass encodes
the project's correctness contracts as machine-checked rules over the
Python AST of ``src/repro``:

=========  ================================================================
DET001     module-global ``random`` (or ``numpy.random``) use — unseeded
           and process-global, so results depend on import order
DET002     wall-clock reads (``time.time`` et al.) — host time must never
           reach simulated state; ``repro.util.hostclock`` is the single
           sanctioned API (the only allowlisted module)
DET003     iteration over a ``set`` — Python set order varies across
           processes (PYTHONHASHSEED), so iteration order is nondeterministic
DET004     iteration over a process-ordered mapping (``os.environ``,
           ``globals()``/``locals()``/``vars()``, ``__dict__`` views) —
           their order reflects process history, not simulated events
ARG001     mutable default argument — evaluated once at definition time
           and shared across calls, leaking state between runs
FLT001     float arithmetic assigned to a cycle-counter-like name —
           cycles are exact integers; floats drift and break bit-identity
CFG001     mutation of a frozen config object (``DramConfig`` /
           ``CoreConfig`` / ``timings``) after construction
SCH001     a ``*Scheduler`` class that does not inherit from the
           ``sched.base`` interface
EXC001     bare ``except:`` — swallows ``KeyboardInterrupt`` and hides bugs
EXC002     silent exception handler (body is only ``pass``/``...``) —
           drops errors without a trace
PERF001    list/deque allocated inside a loop of a per-cycle hot method —
           the allocation cost is paid millions of times per run
PERF002    the same ``name.attr`` chain loaded repeatedly in one hot
           loop — bind it to a local before the loop
PERF003    dict/set constructed inside a loop of a per-cycle hot method
=========  ================================================================

Suppression: append ``# repro-lint: disable=<rule>[,<rule>...]`` (or
``disable=all``) to the offending line, or put it on its own line
directly above; ``# repro-lint: disable-file=<rule>[,...]`` in the
module header silences a rule file-wide.  Anything after the rule list is
treated as rationale.  Suppressions are counted and reported so they
stay auditable, and a suppression naming a rule id that no pass
registers is itself an error (SUP001) — a typo'd suppression would
otherwise silently stop suppressing.  The grammar is shared with the
semantic analyzer (see :mod:`repro.analysis.suppress`).

CLI: ``python -m repro lint [paths...]`` or ``tools/lint.py``; exits
nonzero when any unsuppressed finding remains.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import suppress

# --------------------------------------------------------------- findings


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass
class LintReport:
    """Outcome of linting a set of files."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors


# ------------------------------------------------------------- rule base


class Rule:
    """One lint rule: an id, a one-line hazard description, and a check."""

    id: str = ""
    title: str = ""

    def check_module(self, tree: ast.Module, path: str) -> list[Finding]:
        raise NotImplementedError

    def _finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Names the given top-level module is importable under in this file."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == module or item.name.startswith(module + "."):
                    aliases.add((item.asname or item.name).split(".")[0])
    return aliases


def _from_imports(tree: ast.Module, module: str, names: set[str]) -> dict[str, ast.AST]:
    """``from module import name`` bindings of interest: local name -> node."""
    bound: dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for item in node.names:
                if item.name in names:
                    bound[item.asname or item.name] = node
    return bound


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


# ---------------------------------------------------------------- rules


class UnseededRandomRule(Rule):
    """DET001: module-global ``random`` use.

    The ``random`` module's global generator is seeded from the OS, so any
    call on it makes simulation results depend on process history.  All
    randomness must flow through a ``random.Random(seed)`` (or seeded
    numpy ``Generator``) threaded through constructors.
    """

    id = "DET001"
    title = "module-global random use (unseeded nondeterminism)"

    _GLOBAL_FNS = {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "seed", "getrandbits", "betavariate",
        "expovariate", "normalvariate", "triangular", "vonmisesvariate",
    }

    def check_module(self, tree, path):
        findings = []
        aliases = _module_aliases(tree, "random")
        numpy_aliases = _module_aliases(tree, "numpy")
        for name, node in _from_imports(tree, "random", self._GLOBAL_FNS).items():
            findings.append(self._finding(
                path, node,
                f"importing {name!r} from random binds the process-global "
                f"generator; construct a seeded random.Random instead",
            ))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) == 2 and chain[0] in aliases and chain[1] in self._GLOBAL_FNS:
                findings.append(self._finding(
                    path, node,
                    f"call to module-global random.{chain[1]}(); thread a "
                    f"seeded random.Random through the constructor instead",
                ))
            elif (
                len(chain) == 3
                and chain[0] in numpy_aliases
                and chain[1] == "random"
                and chain[2] != "default_rng"
            ):
                findings.append(self._finding(
                    path, node,
                    f"call to numpy's global {'.'.join(chain)}(); use a "
                    f"seeded numpy.random.default_rng(seed) Generator",
                ))
        return findings


class WallClockRule(Rule):
    """DET002: host wall-clock reads in simulator code.

    Host time must never influence simulated state or recorded results
    beyond explicitly-labelled observability fields.  Legitimate
    host-side measurement goes through the single sanctioned API,
    :mod:`repro.util.hostclock` — the only module this rule allowlists —
    so every wall-clock consumer is auditable at that one boundary.
    A raw ``time.*`` read anywhere else still fires and needs a
    ``# repro-lint: disable=DET002`` suppression with rationale.
    """

    id = "DET002"
    title = "wall-clock read in simulation code"

    _TIME_FNS = {"time", "time_ns", "perf_counter", "perf_counter_ns",
                 "monotonic", "monotonic_ns", "process_time"}
    _DATETIME_FNS = {"now", "utcnow", "today"}

    #: The one module allowed to read the host clock directly.
    _SANCTIONED = ("util/hostclock.py", "util\\hostclock.py")

    def check_module(self, tree, path):
        if str(path).replace("\\", "/").endswith(self._SANCTIONED[0]):
            return []
        findings = []
        time_aliases = _module_aliases(tree, "time")
        dt_aliases = _module_aliases(tree, "datetime")
        for name, node in _from_imports(tree, "time", self._TIME_FNS).items():
            findings.append(self._finding(
                path, node, f"importing wall-clock {name!r} from time"))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) == 2 and chain[0] in time_aliases and chain[1] in self._TIME_FNS:
                findings.append(self._finding(
                    path, node,
                    f"wall-clock call time.{chain[1]}(); simulated time must "
                    f"come from the cycle counter",
                ))
            elif (
                len(chain) >= 2
                and chain[0] in dt_aliases
                and chain[-1] in self._DATETIME_FNS
            ):
                findings.append(self._finding(
                    path, node, f"wall-clock call {'.'.join(chain)}()"))
        return findings


class SetIterationRule(Rule):
    """DET003: iterating a ``set``.

    Set iteration order depends on insertion history and element hashes
    (strings vary with PYTHONHASHSEED), so any simulation decision made
    while iterating a set can differ across processes.  Iterate
    ``sorted(the_set)`` or keep an ordered structure instead.
    """

    id = "DET003"
    title = "iteration over a set (order is not deterministic)"

    @staticmethod
    def _is_set_expr(node, local_sets: set[str]) -> str | None:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain in (["set"], ["frozenset"]):
                return f"{chain[0]}(...)"
            if (
                len(chain) >= 2
                and chain[-1] in {"union", "intersection", "difference",
                                  "symmetric_difference"}
                and chain[0] in local_sets
            ):
                return f"set method .{chain[-1]}()"
        if isinstance(node, ast.Name) and node.id in local_sets:
            return f"the set {node.id!r}"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            for side in (node.left, node.right):
                if isinstance(side, ast.Name) and side.id in local_sets:
                    return "a set expression"
        return None

    def _check_scope(self, scope, path, findings):
        # Names bound to set expressions anywhere in this scope body
        # (excluding nested functions, which get their own pass).
        local_sets: set[str] = set()
        nested = []
        for node in ast.walk(scope):
            if node is not scope and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                nested.append(node)
        in_nested = set()
        for fn in nested:
            for node in ast.walk(fn):
                in_nested.add(id(node))
        for node in ast.walk(scope):
            if id(node) in in_nested:
                continue
            if isinstance(node, ast.Assign) and self._is_set_expr(node.value, set()):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_sets.add(target.id)
        for node in ast.walk(scope):
            if id(node) in in_nested:
                continue
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                what = self._is_set_expr(it, local_sets)
                if what:
                    findings.append(self._finding(
                        path, it,
                        f"iterating {what}: set order varies across "
                        f"processes; iterate sorted(...) instead",
                    ))

    def check_module(self, tree, path):
        findings: list[Finding] = []
        scopes = [tree] + [
            node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            self._check_scope(scope, path, findings)
        # Module+function nesting means a `for` inside a function is seen
        # twice (once per scope); deduplicate by location.
        seen = set()
        unique = []
        for f in findings:
            key = (f.line, f.col)
            if key not in seen:
                seen.add(key)
                unique.append(f)
        return unique


class DictOrderRule(Rule):
    """DET004: iteration over a mapping whose order is process-dependent.

    Python dicts preserve insertion order, so iterating a dict the
    simulation built is deterministic.  Some mappings' order instead
    reflects *process* history: ``os.environ`` (inherited environment
    block), ``globals()``/``locals()``/``vars()`` (definition and call
    history), and ``__dict__`` views (attribute-creation order, which
    shifts whenever a construction path changes).  A simulation decision
    or recorded ordering derived from one of these can differ across
    hosts and refactors.  Iterate ``sorted(...)`` instead.
    """

    id = "DET004"
    title = "iteration over a process-ordered mapping"

    _VIEWS = {"items", "keys", "values"}

    @classmethod
    def _base_expr(cls, node):
        """Unwrap ``expr.items()/.keys()/.values()`` to ``expr``."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in cls._VIEWS
            and not node.args
        ):
            return node.func.value
        return node

    def _offender(self, node, os_aliases, environ_names) -> str | None:
        base = self._base_expr(node)
        if isinstance(base, ast.Call):
            chain = _attr_chain(base.func)
            if chain in (["globals"], ["locals"], ["vars"]):
                return f"{chain[0]}()"
            return None
        chain = _attr_chain(base)
        if not chain:
            return None
        if chain[-1] == "__dict__":
            return ".".join(chain)
        if len(chain) == 2 and chain[0] in os_aliases and chain[1] == "environ":
            return "os.environ"
        if len(chain) == 1 and chain[0] in environ_names:
            return "os.environ"
        return None

    def check_module(self, tree, path):
        findings = []
        os_aliases = _module_aliases(tree, "os")
        environ_names = set(_from_imports(tree, "os", {"environ"}))
        for node in ast.walk(tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                what = self._offender(it, os_aliases, environ_names)
                if what:
                    findings.append(self._finding(
                        path, it,
                        f"iterating {what}: its order reflects process "
                        f"history, not simulated events; iterate "
                        f"sorted(...) instead",
                    ))
        return findings


class MutableDefaultRule(Rule):
    """ARG001: mutable default argument.

    A default value is evaluated once, at function definition, and the
    same object is shared by every call that omits the argument.  A
    default list/dict/set that a simulation component then mutates
    carries state from one run into the next — results depend on call
    history, which poisons cached experiments.  Default to ``None`` and
    construct the container inside the body.
    """

    id = "ARG001"
    title = "mutable default argument"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque",
                      "defaultdict", "Counter", "OrderedDict"}

    @classmethod
    def _is_mutable(cls, node) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            return bool(chain) and chain[-1] in cls._MUTABLE_CALLS
        return False

    def check_module(self, tree, path):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            name = getattr(node, "name", "<lambda>")
            defaults = list(node.args.defaults) + list(node.args.kw_defaults)
            for default in defaults:
                if default is not None and self._is_mutable(default):
                    findings.append(self._finding(
                        path, default,
                        f"mutable default in {name}(): evaluated once and "
                        f"shared across calls; default to None and build "
                        f"the container inside the body",
                    ))
        return findings


class FloatCycleRule(Rule):
    """FLT001: float arithmetic stored into a cycle-counter-like name.

    Cycle counters and readiness deadlines are exact integers; float
    results (true division, float literals, ``float()``) drift under
    reordering and break the bit-identical fast-forwarding contract.
    Use ``//`` or wrap the expression in ``int()``/``round()``.
    """

    id = "FLT001"
    title = "float arithmetic on a cycle counter"

    _TOKENS = {"now", "cycle", "cycles", "ready", "arrival",
               "deadline", "wake", "until"}
    _SAFE_WRAPPERS = {"int", "round", "floor", "ceil", "len", "min", "max"}

    @classmethod
    def _cycle_name(cls, target) -> str | None:
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        else:
            return None
        if cls._TOKENS & set(name.lower().split("_")):
            return name
        return None

    def _float_subexpr(self, node) -> ast.AST | None:
        """A float-producing subexpression not neutralised by int()/round()."""
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain and chain[-1] in ("int", "round", "floor", "ceil"):
                return None  # explicitly truncated back to int
            if chain == ["float"]:
                return node
            for arg in node.args:
                found = self._float_subexpr(arg)
                if found is not None:
                    return found
            return None
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return node
            return self._float_subexpr(node.left) or self._float_subexpr(node.right)
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return node
        if isinstance(node, (ast.IfExp,)):
            return (self._float_subexpr(node.body)
                    or self._float_subexpr(node.orelse))
        if isinstance(node, ast.UnaryOp):
            return self._float_subexpr(node.operand)
        return None

    def check_module(self, tree, path):
        findings = []
        for node in ast.walk(tree):
            if isinstance(node, ast.AugAssign):
                name = self._cycle_name(node.target)
                if name is None:
                    continue
                if isinstance(node.op, ast.Div):
                    findings.append(self._finding(
                        path, node,
                        f"true division assigned to cycle counter {name!r}; "
                        f"use //= to keep cycles integral",
                    ))
                    continue
                bad = self._float_subexpr(node.value)
                if bad is not None:
                    findings.append(self._finding(
                        path, node,
                        f"float arithmetic folded into cycle counter {name!r}",
                    ))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    name = self._cycle_name(target)
                    if name is None:
                        continue
                    bad = self._float_subexpr(node.value)
                    if bad is not None:
                        findings.append(self._finding(
                            path, node,
                            f"float-valued expression assigned to cycle "
                            f"counter {name!r}; wrap in int()/round() or use //",
                        ))
                        break
        return findings


class ConfigMutationRule(Rule):
    """CFG001: mutating a frozen config after construction.

    ``DramConfig``/``CoreConfig``/``DramTimings`` are frozen dataclasses:
    every run's cache key hashes them, so in-place mutation (including
    ``object.__setattr__`` back doors) would silently desynchronise
    results from their cache keys.  Use ``.scaled(...)`` /
    ``dataclasses.replace`` to derive a new config instead.
    """

    id = "CFG001"
    title = "mutation of a frozen config object"

    _CONFIG_NAMES = {"config", "cfg", "timings", "dram_config", "core_config",
                     "sysconfig", "system_config"}

    @classmethod
    def _is_config_expr(cls, node) -> bool:
        chain = _attr_chain(node)
        return bool(chain) and chain[-1].lower() in cls._CONFIG_NAMES

    def check_module(self, tree, path):
        findings = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and self._is_config_expr(
                        target.value
                    ):
                        chain = _attr_chain(target)
                        findings.append(self._finding(
                            path, node,
                            f"assignment to {'.'.join(chain)} mutates a frozen "
                            f"config; derive a copy with .scaled()/replace()",
                        ))
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain[-1:] == ["__setattr__"] and node.args:
                    first = node.args[0]
                    if self._is_config_expr(first):
                        findings.append(self._finding(
                            path, node,
                            "object.__setattr__ on a config object bypasses "
                            "dataclass freezing",
                        ))
        return findings


class SchedulerInterfaceRule(Rule):
    """SCH001: a scheduler class outside the ``sched.base`` interface.

    The controller calls ``select`` / ``on_enqueue`` / ``on_command`` and
    relies on the base class's precharge-admissibility policy; a
    ``*Scheduler`` class that does not inherit from the shared base
    silently opts out of those contracts.
    """

    id = "SCH001"
    title = "scheduler class bypasses the sched.base interface"

    def check_module(self, tree, path):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Scheduler"):
                continue
            if node.name.lstrip("_") == "Scheduler" and not node.bases:
                continue  # the base interface itself
            ok = False
            for base in node.bases:
                chain = _attr_chain(base)
                if chain and "Scheduler" in chain[-1]:
                    ok = True
            if not ok:
                findings.append(self._finding(
                    path, node,
                    f"class {node.name} defines a scheduler but does not "
                    f"inherit from repro.sched.base.Scheduler",
                ))
        return findings


class BareExceptRule(Rule):
    """EXC001: bare ``except:``.

    Catches ``KeyboardInterrupt``/``SystemExit`` and every programming
    error alike; name the exception types the handler can actually deal
    with.
    """

    id = "EXC001"
    title = "bare except"

    def check_module(self, tree, path):
        return [
            self._finding(path, node, "bare except: name the exception types")
            for node in ast.walk(tree)
            if isinstance(node, ast.ExceptHandler) and node.type is None
        ]


class SilentHandlerRule(Rule):
    """EXC002: exception handler that silently drops the error.

    A handler whose whole body is ``pass``/``...`` erases the failure
    with no trace — in a simulator this converts crashes into silently
    wrong (and then cached) numbers.  Log, count, re-raise, or annotate
    the line with a suppression stating why dropping is correct.
    """

    id = "EXC002"
    title = "silent exception handler"

    def check_module(self, tree, path):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            body = [
                stmt for stmt in node.body
                if not (isinstance(stmt, ast.Expr)
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, str))
            ]
            if all(
                isinstance(stmt, ast.Pass)
                or (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is Ellipsis)
                for stmt in body
            ):
                findings.append(self._finding(
                    path, node,
                    "exception silently dropped; handle it, count it, or "
                    "suppress with a rationale",
                ))
        return findings


#: Methods on the per-cycle hot path.  Mirrors
#: ``repro.analysis.semantic.effects.PER_CYCLE_HOOKS`` (a test pins the
#: two sets together; lint must not import the semantic layer) plus the
#: hot helpers reached from them every issue.
HOT_METHODS = {
    "step", "step_event", "step_window", "select", "load", "store",
    "lookup", "tick", "on_command", "on_enqueue", "account_idle",
    "account_window", "presettle", "_do_dispatch", "_do_commit",
    "_do_load_issues", "_do_dispatch_window", "_do_commit_window",
    "_execute", "_build_candidates", "_service_refresh",
    # hot helpers on the issue path, not per-cycle hooks themselves
    "_resolve_deps", "try_enqueue", "fast_forward",
}


class HotLoopRule(Rule):
    """Shared machinery for the PERF rules: loops in hot methods.

    A "hot loop" is any ``for``/``while`` inside a method whose name is
    in :data:`HOT_METHODS` — these run every simulated cycle, so an
    allocation or repeated attribute walk inside them is paid millions
    of times per run.  The per-iteration region of a ``for`` loop is its
    body (the iterable expression runs once); a ``while`` loop's test
    re-evaluates every iteration and is included.
    """

    def _hot_functions(self, tree):
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and node.name in HOT_METHODS:
                yield node

    @staticmethod
    def _loops(fn):
        for node in ast.walk(fn):
            if isinstance(node, (ast.For, ast.While)):
                yield node

    @staticmethod
    def _region(loop):
        region = list(loop.body) + list(loop.orelse)
        if isinstance(loop, ast.While):
            region.append(loop.test)
        return region

    @classmethod
    def _walk_region(cls, loop):
        for part in cls._region(loop):
            yield from ast.walk(part)


class LoopAllocationRule(HotLoopRule):
    """PERF001: list/deque allocation inside a hot loop.

    Every iteration pays the allocator; at simulator scale that is
    millions of short-lived objects per run.  Hoist the container out of
    the loop, reuse a preallocated buffer, or append to an accumulator
    created once.  An allocation that genuinely must happen per
    iteration (e.g. handing off an owned list) carries a suppression
    with its amortisation rationale.
    """

    id = "PERF001"
    title = "list allocated inside a per-cycle hot loop"

    _LITERALS = (ast.List, ast.ListComp)
    _CALLS = {"list", "deque"}

    @classmethod
    def _allocation(cls, node) -> str | None:
        if isinstance(node, ast.List) and isinstance(node.ctx, ast.Load):
            return "a list literal"
        if isinstance(node, ast.ListComp):
            return "a list comprehension"
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if len(chain) == 1 and chain[0] in cls._CALLS:
                return f"{chain[0]}(...)"
        return None

    def check_module(self, tree, path):
        findings = []
        seen = set()
        for fn in self._hot_functions(tree):
            for loop in self._loops(fn):
                for node in self._walk_region(loop):
                    what = self._allocation(node)
                    if what is None:
                        continue
                    key = (node.lineno, node.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(self._finding(
                        path, node,
                        f"{what} is allocated every iteration of a loop in "
                        f"hot method {fn.name}(); hoist it out of the loop "
                        f"or reuse a buffer",
                    ))
        return findings


class LoopAttrReloadRule(HotLoopRule):
    """PERF002: the same attribute chain dereferenced repeatedly in one
    hot loop.

    Each ``obj.attr`` load is a dict probe; re-walking the same chain
    on every iteration (or several times per iteration) is pure
    overhead.  Bind the value to a local before the loop (``timing =
    self.timing``) — the idiom already used by the scheduler inner
    loops.  Chains that are re-assigned in the loop, rooted in the loop
    variable, or only ever called as methods are exempt.
    """

    id = "PERF002"
    title = "repeated attribute-chain load in a per-cycle hot loop"

    def check_module(self, tree, path):
        findings = []
        seen = set()
        for fn in self._hot_functions(tree):
            for loop in self._loops(fn):
                self._check_loop(fn, loop, path, findings, seen)
        return findings

    def _check_loop(self, fn, loop, path, findings, seen):
        counts: dict[tuple[str, str], list] = {}
        stored_roots: set[str] = set()
        stored_pairs: set[tuple[str, str]] = set()
        func_ids: set[int] = set()
        if isinstance(loop, ast.For):
            for t in ast.walk(loop.target):
                if isinstance(t, ast.Name):
                    stored_roots.add(t.id)
        for node in self._walk_region(loop):
            if isinstance(node, ast.Call):
                func_ids.add(id(node.func))
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                stored_roots.add(node.id)
        for node in self._walk_region(loop):
            if not isinstance(node, ast.Attribute):
                continue
            chain = _attr_chain(node)
            if len(chain) != 2:
                continue
            pair = (chain[0], chain[1])
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                stored_pairs.add(pair)
                continue
            if id(node) in func_ids:
                continue  # bare method call; nothing to hoist
            bucket = counts.setdefault(pair, [0, node])
            bucket[0] += 1
        for (root, attr), (n, first) in sorted(
            counts.items(), key=lambda kv: (kv[1][1].lineno, kv[1][1].col_offset)
        ):
            if n < 2:
                continue
            if root in stored_roots or (root, attr) in stored_pairs:
                continue
            key = (first.lineno, first.col_offset)
            if key in seen:
                continue
            seen.add(key)
            findings.append(self._finding(
                path, first,
                f"{root}.{attr} is dereferenced {n} times per iteration "
                f"of a loop in hot method {fn.name}(); bind it to a local "
                f"before the loop",
            ))


class LoopContainerBuildRule(HotLoopRule):
    """PERF003: dict/set construction inside a hot loop.

    Dicts and sets are the most expensive containers to build (hashing
    plus table setup); constructing one per iteration on the per-cycle
    path dominates profiles.  Build it once outside the loop and
    ``clear()``/update it, or restructure to avoid the container.
    """

    id = "PERF003"
    title = "dict/set constructed inside a per-cycle hot loop"

    _LITERALS = (ast.Dict, ast.Set, ast.DictComp, ast.SetComp)
    _CALLS = {"dict", "set", "frozenset"}

    @classmethod
    def _construction(cls, node) -> str | None:
        if isinstance(node, ast.Dict):
            return "a dict literal"
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, (ast.DictComp, ast.SetComp)):
            return "a dict/set comprehension"
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if len(chain) == 1 and chain[0] in cls._CALLS:
                return f"{chain[0]}(...)"
        return None

    def check_module(self, tree, path):
        findings = []
        seen = set()
        for fn in self._hot_functions(tree):
            for loop in self._loops(fn):
                for node in self._walk_region(loop):
                    what = self._construction(node)
                    if what is None:
                        continue
                    key = (node.lineno, node.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(self._finding(
                        path, node,
                        f"{what} is built every iteration of a loop in hot "
                        f"method {fn.name}(); build it once outside the "
                        f"loop",
                    ))
        return findings


class SuppressionHygieneRule(Rule):
    """SUP001: suppression comment naming an unknown rule id.

    A ``# repro-lint: disable=``/``disable-file=`` directive naming a
    rule id that neither the lint pass nor the semantic analyzer
    registers suppresses nothing — usually a typo or a leftover after a
    rule rename — yet it reads as if the hazard were audited.  The stale
    directive must name a real rule or be removed.
    """

    id = "SUP001"
    title = "suppression names an unknown rule id"

    def check_module(self, tree, path):
        return []  # needs comment text, not the AST: driven by lint_source


ALL_RULES: tuple[Rule, ...] = (
    UnseededRandomRule(),
    WallClockRule(),
    SetIterationRule(),
    DictOrderRule(),
    MutableDefaultRule(),
    FloatCycleRule(),
    ConfigMutationRule(),
    SchedulerInterfaceRule(),
    BareExceptRule(),
    SilentHandlerRule(),
    LoopAllocationRule(),
    LoopAttrReloadRule(),
    LoopContainerBuildRule(),
    SuppressionHygieneRule(),
)

RULES_BY_ID = {rule.id: rule for rule in ALL_RULES}


# --------------------------------------------------------------- running


def lint_source(
    source: str, path: str = "<string>", select: set[str] | None = None
) -> LintReport:
    """Lint one source string; suppressed findings are reported separately."""
    report = LintReport(files=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.errors.append(f"{path}: syntax error: {exc}")
        return report
    disabled = suppress.parse_suppressions(source)
    rules = [RULES_BY_ID[r] for r in sorted(select)] if select else ALL_RULES
    for rule in rules:
        for finding in rule.check_module(tree, path):
            if disabled.disabled(finding.line, finding.rule):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    if select is None or suppress.SUP001 in select:
        known = suppress.known_rule_ids()
        for line, name in disabled.unknown_mentions(known):
            finding = Finding(
                rule=suppress.SUP001, path=path, line=line, col=0,
                message=(
                    f"suppression names unknown rule {name!r}; no analysis "
                    f"pass registers it, so nothing is being suppressed"
                ),
            )
            if disabled.disabled(line, suppress.SUP001):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def iter_python_files(paths) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return files


def lint_paths(paths, select: set[str] | None = None) -> LintReport:
    """Lint every ``*.py`` under the given files/directories."""
    total = LintReport()
    for path in iter_python_files(paths):
        try:
            source = path.read_text()
        except OSError as exc:
            total.errors.append(f"{path}: {exc}")
            continue
        report = lint_source(source, str(path), select=select)
        total.findings.extend(report.findings)
        total.suppressed.extend(report.suppressed)
        total.errors.extend(report.errors)
        total.files += 1
    return total


def _default_target() -> list[str]:
    """``src/repro`` relative to this file (works installed or in-tree)."""
    return [str(Path(__file__).resolve().parent.parent)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simulator-specific AST lint pass (see repro.analysis.lint)",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/repro)")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule id and its hazard description")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print findings silenced by suppressions")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            doc = (rule.__class__.__doc__ or "").strip().splitlines()
            print(f"{rule.id}  {rule.title}")
            for line in doc[1:]:
                print(f"        {line.strip()}")
            print()
        return 0

    select = None
    if args.select:
        select = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        unknown = select - set(RULES_BY_ID)
        if unknown:
            print(f"unknown rule ids: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    report = lint_paths(args.paths or _default_target(), select=select)
    for finding in report.findings:
        print(finding.render())
    if args.show_suppressed:
        for finding in report.suppressed:
            print(f"[suppressed] {finding.render()}")
    for error in report.errors:
        print(error, file=sys.stderr)
    status = (
        f"{report.files} files, {len(report.findings)} findings, "
        f"{len(report.suppressed)} suppressed"
    )
    print(status)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
