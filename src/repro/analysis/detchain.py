"""Determinism hash-chain: rolling digest of architectural state.

Every ``REPRO_DETCHAIN_EVERY`` CPU cycles (default 1024; ``0`` disables)
the system folds a snapshot of its *architectural* state — core dispatch
and retire pointers, committed counts, cache directory and MSHR
occupancy, memory queue contents, bank open rows, channel bus and
per-rank timing bookkeeping — into a rolling 64-bit FNV-1a digest,
together with the sample cycle itself.  The final digest and the list of
per-sample checkpoints are recorded on the :class:`~repro.sim.stats.SimResult`.

Two runs of the same spec must produce identical chains whether or not
cycle fast-forwarding is enabled, and across processes.  Because the
chain includes the sample cycle and is order-sensitive, any divergence —
a different command order, a request completing one cycle late, a core
committing a different instruction count — changes every subsequent
checkpoint, and :func:`first_divergence` pins the earliest diverging
sample, which bounds the bug to one ``every``-cycle window.

Only state that is provably constant during quiescent fast-forward
windows may be sampled (see ``System.run``): statistics counters are
settled lazily by ``flush_skip`` and are therefore excluded.
"""

from __future__ import annotations

import os

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1

#: Checkpoint lists longer than this are decimated (every other entry
#: dropped) so long runs keep a bounded, evenly spaced history.
_CHECKPOINT_CAP = 4096


def interval() -> int:
    """Sampling period in CPU cycles from the environment (0 = disabled)."""
    raw = os.environ.get("REPRO_DETCHAIN_EVERY", "")
    if not raw:
        return 1024
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_DETCHAIN_EVERY must be an integer, got {raw!r}"
        ) from None
    return max(0, value)


class DetChain:
    """Order-sensitive rolling FNV-1a digest with periodic checkpoints."""

    __slots__ = ("digest", "every", "checkpoints", "samples", "_keep_stride")

    def __init__(self, every: int):
        if every < 1:
            raise ValueError(f"sampling interval must be >= 1, got {every}")
        self.digest = _FNV_OFFSET
        self.every = every
        #: ``(cycle, digest-after-folding-that-sample)`` pairs.
        self.checkpoints: list[tuple[int, int]] = []
        self.samples = 0
        self._keep_stride = 1

    def _fold(self, value: int) -> None:
        h = self.digest
        v = value & _MASK64
        # Mix 8 bytes a byte at a time (FNV-1a), LSB first.
        for _ in range(8):
            h = ((h ^ (v & 0xFF)) * _FNV_PRIME) & _MASK64
            v >>= 8
        self.digest = h

    def sample(self, cycle: int, state: tuple) -> None:
        """Fold one sample: the cycle number, then every state word.

        The fold is inlined (rather than one :meth:`_fold` call per
        word) because chain sampling sits on every engine loop's hot
        path — a ~500-word snapshot is folded every interval.
        """
        h = self.digest
        prime = _FNV_PRIME
        mask = _MASK64
        v = cycle & mask
        for _ in range(8):
            h = ((h ^ (v & 0xFF)) * prime) & mask
            v >>= 8
        for value in state:
            v = value & mask
            for _ in range(8):
                h = ((h ^ (v & 0xFF)) * prime) & mask
                v >>= 8
        self.digest = h
        self.samples += 1
        if self.samples % self._keep_stride == 0:
            self.checkpoints.append((cycle, self.digest))
            if len(self.checkpoints) > _CHECKPOINT_CAP:
                del self.checkpoints[::2]
                self._keep_stride *= 2

    def finalize(self, cycle: int, state: tuple) -> None:
        """Fold the end-of-run state as a final, always-kept checkpoint."""
        self._fold(cycle)
        for value in state:
            self._fold(value)
        self.checkpoints.append((cycle, self.digest))

    def fold_words(self, cycle: int, state: tuple) -> None:
        """Reference per-word fold (kept for cross-checks in tests)."""
        self._fold(cycle)
        for value in state:
            self._fold(value)
        self.samples += 1
        if self.samples % self._keep_stride == 0:
            self.checkpoints.append((cycle, self.digest))
            if len(self.checkpoints) > _CHECKPOINT_CAP:
                del self.checkpoints[::2]
                self._keep_stride *= 2


def snapshot(system) -> tuple:
    """Architectural state vector of a :class:`~repro.sim.system.System`.

    Everything sampled here is constant during quiescent fast-forward
    windows and independent of the ``skip_cycles`` setting, so skip and
    naive runs fold identical values at identical cycles.
    """
    values: list[int] = []
    for core in system.cores:
        values.extend(core.det_state())
    events = system.events
    values.append(len(events))
    nxt = events.next_cycle()
    values.append(-1 if nxt is None else nxt)
    values.extend(system.hierarchy.det_state())
    for channel in system.memory.channels:
        values.extend(channel.det_state())
    return tuple(values)


def first_divergence(chain_a, chain_b):
    """Earliest checkpoint at which two runs' chains disagree.

    ``chain_a`` / ``chain_b`` are checkpoint lists as recorded on
    ``SimResult.det_checkpoints``.  Returns ``None`` when the common
    prefix agrees (including when either list is empty), otherwise a
    dict with the diverging sample's cycle and both digests.
    """
    if not chain_a or not chain_b:
        return None  # a disabled chain carries no divergence evidence
    for (cycle_a, digest_a), (cycle_b, digest_b) in zip(chain_a, chain_b):
        if cycle_a != cycle_b:
            return {
                "cycle": min(cycle_a, cycle_b),
                "kind": "sample-cycle",
                "a": (cycle_a, digest_a),
                "b": (cycle_b, digest_b),
            }
        if digest_a != digest_b:
            return {
                "cycle": cycle_a,
                "kind": "digest",
                "a": (cycle_a, digest_a),
                "b": (cycle_b, digest_b),
            }
    if len(chain_a) != len(chain_b):
        longer = chain_a if len(chain_a) > len(chain_b) else chain_b
        cycle, digest = longer[min(len(chain_a), len(chain_b))]
        return {"cycle": cycle, "kind": "length", "a": None, "b": (cycle, digest)}
    return None
