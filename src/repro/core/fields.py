"""A Fields-style general instruction-criticality predictor — the approach
the paper evaluated and *excluded* (Section 2).

Fields et al. (ISCA 2001) define criticality on the dispatch/execute/
commit dependence graph; practical predictors derived from it favour
long-latency instructions.  As the paper observes, that bias "does not
differentiate amongst memory accesses": every L2-missing load is
long-latency, so all of them are flagged and the memory scheduler gains
nothing.  This module implements such a predictor so the exclusion claim
can be reproduced quantitatively (see ``repro.experiments.ablation``).

The implementation tracks, per static load, the fraction of dynamic
instances whose observed latency exceeded a threshold; loads above a
marking ratio are predicted critical.  Because DRAM-serviced loads all
exceed any L1/L2-scale threshold, the prediction collapses to "is this
load a miss?" — exactly the non-differentiating behaviour the paper
describes.
"""

from __future__ import annotations

from repro.core.provider import CriticalityProvider


class FieldsLikePredictor:
    """Long-latency-biased criticality (per static PC)."""

    def __init__(self, latency_threshold: int = 40, mark_ratio: float = 0.2,
                 entries: int | None = 1024):
        if latency_threshold < 1:
            raise ValueError(
                f"latency_threshold must be >= 1, got {latency_threshold}"
            )
        if not 0.0 < mark_ratio <= 1.0:
            raise ValueError(f"mark_ratio must be in (0, 1], got {mark_ratio}")
        if entries is not None and (entries <= 0 or entries & (entries - 1)):
            raise ValueError(f"entries must be a power of two, got {entries}")
        self.latency_threshold = latency_threshold
        self.mark_ratio = mark_ratio
        self.entries = entries
        self._long: dict[int, int] = {}
        self._total: dict[int, int] = {}

    def _index(self, pc: int) -> int:
        return pc if self.entries is None else pc & (self.entries - 1)

    def record_latency(self, pc: int, latency: int) -> None:
        idx = self._index(pc)
        self._total[idx] = self._total.get(idx, 0) + 1
        if latency >= self.latency_threshold:
            self._long[idx] = self._long.get(idx, 0) + 1

    def is_critical(self, pc: int) -> bool:
        idx = self._index(pc)
        total = self._total.get(idx, 0)
        if not total:
            return False
        return self._long.get(idx, 0) / total >= self.mark_ratio

    def long_latency_ratio(self, pc: int) -> float:
        idx = self._index(pc)
        total = self._total.get(idx, 0)
        return self._long.get(idx, 0) / total if total else 0.0


class FieldsLikeProvider(CriticalityProvider):
    """Provider wrapper: marks loads by long-latency history.

    Latencies are observed at blocked commits (stall length is the
    latency's exposed portion, which is what a Fields-graph edge would
    measure for a commit-blocking load) and at issue time for annotation.
    """

    def __init__(self, latency_threshold: int = 40, mark_ratio: float = 0.2,
                 entries: int | None = 1024):
        self.predictor = FieldsLikePredictor(latency_threshold, mark_ratio, entries)

    def annotate(self, pc: int) -> tuple[bool, int]:
        if self.predictor.is_critical(pc):
            return (True, 1)
        return (False, 0)

    def on_blocked_commit(self, pc: int, stall_cycles: int, cycle: int) -> None:
        self.predictor.record_latency(pc, stall_cycles)

    def on_load_consumers(self, pc: int, count: int) -> None:
        # Non-blocking instances register as short-latency observations.
        self.predictor.record_latency(pc, 0)
