"""Critical Load Prediction Table (Subramaniam et al., HPCA 2009).

The comparison predictor (Section 2): loads with many *direct consumers*
are deemed critical.  The processor counts direct dependents as consumers
enter rename, stores the count in a PC-indexed table, and marks the next
dynamic instance critical if the stored count exceeds a threshold
(application-dependent; the paper picks 3, and also evaluates 2).

Two scheduler-facing configurations:

* CLPT-Binary    — send only the "critical" flag (count >= threshold).
* CLPT-Consumers — send the consumer count itself as a ranked magnitude.
"""

from __future__ import annotations


class CriticalLoadPredictionTable:
    """PC-indexed direct-consumer-count predictor."""

    def __init__(self, entries: int | None = 1024, threshold: int = 3):
        if entries is not None:
            if entries <= 0 or entries & (entries - 1):
                raise ValueError(f"entries must be a power of two, got {entries}")
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.entries = entries
        self.threshold = threshold
        self._table: dict[int, int] = {}

    def _index(self, pc: int) -> int:
        if self.entries is None:
            return pc
        return pc & (self.entries - 1)

    def record_consumers(self, pc: int, count: int) -> None:
        """A dynamic load at ``pc`` was observed with ``count`` consumers."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._table[self._index(pc)] = count

    def consumer_count(self, pc: int) -> int:
        return self._table.get(self._index(pc), 0)

    def is_critical(self, pc: int) -> bool:
        return self.consumer_count(pc) >= self.threshold
