"""Criticality providers: the processor-side half of the proposal.

A provider is attached to each core.  The core calls into it from three
places:

* load issue       — :meth:`annotate` returns the (flag, magnitude) pair to
                     piggyback on the memory request;
* ROB-head block   — :meth:`on_block_start` when a load first blocks commit;
* blocked commit   — :meth:`on_blocked_commit` with the measured stall.

For the CLPT comparator the core additionally reports each dynamic load's
direct-consumer count at commit (:meth:`on_load_consumers`).  The naive
Section-5.1 mechanism has no predictor at all: it promotes the in-flight
request at block time through a side channel.
"""

from __future__ import annotations

from repro.core.cbp import CbpMetric, CommitBlockPredictor
from repro.core.clpt import CriticalLoadPredictionTable


class CriticalityProvider:
    """Base provider: nothing is ever critical (plain FR-FCFS machine)."""

    def annotate(self, pc: int) -> tuple[bool, int]:
        """Criticality (flag, magnitude) to attach to a load's request."""
        return (False, 0)

    def on_block_start(self, pc: int, cycle: int, txn=None) -> None:
        """A load at ``pc`` began blocking the ROB head at ``cycle``.

        ``txn`` is the load's in-flight DRAM transaction, if any — used only
        by the naive forwarding mechanism.
        """

    def on_blocked_commit(self, pc: int, stall_cycles: int, cycle: int) -> None:
        """A blocking load committed after ``stall_cycles`` at the head."""

    def on_load_consumers(self, pc: int, count: int) -> None:
        """A dynamic load retired with ``count`` direct consumers."""

    def tick(self, cycle: int) -> None:
        """Per-cycle housekeeping hook (table resets)."""

    def next_tick_cycle(self, now: int) -> int | None:
        """Earliest future cycle at which :meth:`tick` does real work.

        ``None`` means tick is a no-op (or time-insensitive), letting the
        system skip dead cycles without consulting this provider.  Providers
        whose ``tick`` has per-cycle effects must override this, or runs
        with cycle skipping enabled will not be bit-identical to the naive
        cycle-by-cycle loop.
        """
        return None


class NullProvider(CriticalityProvider):
    """Explicit name for the no-criticality baseline."""


class CbpProvider(CriticalityProvider):
    """Commit Block Predictor provider (the paper's proposal)."""

    def __init__(
        self,
        entries: int | None = 64,
        metric: CbpMetric = CbpMetric.MAX_STALL,
        reset_interval: int | None = None,
        counter=None,
    ):
        self.cbp = CommitBlockPredictor(entries, metric, reset_interval, counter)
        self._binary = metric is CbpMetric.BINARY

    def annotate(self, pc: int) -> tuple[bool, int]:
        magnitude = self.cbp.predict(pc)
        if magnitude <= 0:
            return (False, 0)
        return (True, 1 if self._binary else magnitude)

    def on_block_start(self, pc: int, cycle: int, txn=None) -> None:
        self.cbp.record_block_start(pc)

    def on_blocked_commit(self, pc: int, stall_cycles: int, cycle: int) -> None:
        self.cbp.record_stall(pc, stall_cycles)

    def tick(self, cycle: int) -> None:
        self.cbp.tick(cycle)

    def next_tick_cycle(self, now: int) -> int | None:
        return self.cbp.next_reset_cycle()


class ClptProvider(CriticalityProvider):
    """Subramaniam et al. consumer-count provider.

    ``ranked=False`` is CLPT-Binary (flag only); ``ranked=True`` is
    CLPT-Consumers (consumer count as magnitude).
    """

    def __init__(self, threshold: int = 3, ranked: bool = False,
                 entries: int | None = 1024):
        self.clpt = CriticalLoadPredictionTable(entries=entries, threshold=threshold)
        self.ranked = ranked

    def annotate(self, pc: int) -> tuple[bool, int]:
        if not self.clpt.is_critical(pc):
            return (False, 0)
        return (True, self.clpt.consumer_count(pc) if self.ranked else 1)

    def on_load_consumers(self, pc: int, count: int) -> None:
        self.clpt.record_consumers(pc, count)


class NaiveForwardingProvider(CriticalityProvider):
    """Section 5.1: no predictor; promote the request when the block begins.

    Models the optimistic side channel from ROB to transaction queue: after
    ``forward_latency`` CPU cycles the in-flight transaction (if still
    queued) is flagged critical.  Since our transaction objects are shared
    with the controller, setting the flag is the promotion; the latency is
    modelled by deferring the flag via the core's event queue (the core
    passes a ``defer`` callable at construction).
    """

    def __init__(self, forward_latency: int = 24, defer=None):
        self.forward_latency = forward_latency
        self._defer = defer
        self.promotions = 0

    def bind_defer(self, defer) -> None:
        """Install the event-scheduling callable (done by the core)."""
        self._defer = defer

    def on_block_start(self, pc: int, cycle: int, txn=None) -> None:
        if txn is None:
            return

        def promote():
            txn.critical = True
            txn.magnitude = 1
            self.promotions += 1

        if self._defer is None:
            promote()
        else:
            self._defer(cycle + self.forward_latency, promote)
