"""CBP counter update policies (paper Section 5.3 extension).

The paper sizes its counters from worst-case observed values (Table 5) and
notes: "One could also implement saturation for values that exceed the bit
width, or probabilistic counters for value accumulation [Riley & Zilles],
but we do not explore these."  This module explores them:

* :class:`FullCounter`         — unbounded (the paper's measurement mode).
* :class:`SaturatingCounter`   — clamps at ``2**width - 1``; the hardware
  you would actually build.
* :class:`ProbabilisticCounter` — Riley & Zilles (HPCA 2006) style: above
  a pivot, increments apply with probability 2^-k and add 2^k instead,
  keeping expectation while storing log-compressed state in few bits.

All policies expose ``apply(old, increment) -> new`` for accumulating
metrics (BlockCount / TotalStallTime) and ``store(value) -> stored`` for
value-writing metrics (Last/MaxStallTime).
"""

from __future__ import annotations

import random


class FullCounter:
    """Unbounded counter: exact accumulation (the paper's default)."""

    name = "full"

    def apply(self, old: int, increment: int) -> int:
        return old + increment

    def store(self, value: int) -> int:
        return value


class SaturatingCounter:
    """Clamp at the width's maximum; never wraps."""

    name = "saturating"

    def __init__(self, width: int = 14):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = width
        self.maximum = (1 << width) - 1

    def apply(self, old: int, increment: int) -> int:
        return min(self.maximum, old + increment)

    def store(self, value: int) -> int:
        return min(self.maximum, value)


class ProbabilisticCounter:
    """Probabilistic accumulation above a pivot (Riley & Zilles).

    Values up to ``pivot`` accumulate exactly.  Beyond it, an update of
    ``d`` is applied as ``d * 2**k`` with probability ``2**-k``, where
    ``k`` grows with the stored magnitude — expectation is preserved while
    the counter can be stored in ``log``-ish precision.  A seeded LFSR
    stands in for the hardware's pseudo-random bit source.
    """

    name = "probabilistic"

    def __init__(
        self,
        pivot: int = 1024,
        width: int = 14,
        seed: int = 1,
        rng: random.Random | None = None,
    ):
        if pivot < 1:
            raise ValueError(f"pivot must be >= 1, got {pivot}")
        self.pivot = pivot
        self.maximum = (1 << width) - 1
        # Determinism contract: the pseudo-random bit source is an injectable,
        # seeded stream — never the random module's global state.
        self._rng = rng if rng is not None else random.Random(seed)

    def _shift_for(self, value: int) -> int:
        """How coarse updates are at this magnitude (0 = exact)."""
        shift = 0
        threshold = self.pivot
        while value >= threshold and shift < 8:
            shift += 1
            threshold <<= 1
        return shift

    def apply(self, old: int, increment: int) -> int:
        shift = self._shift_for(old)
        if shift == 0:
            return min(self.maximum, old + increment)
        if self._rng.random() < 1.0 / (1 << shift):
            return min(self.maximum, old + (increment << shift))
        return old

    def store(self, value: int) -> int:
        return min(self.maximum, value)


COUNTER_MODES = {
    "full": FullCounter,
    "saturating": SaturatingCounter,
    "probabilistic": ProbabilisticCounter,
}


def make_counter(mode: str = "full", **kwargs):
    try:
        cls = COUNTER_MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown counter mode {mode!r}; choose from {sorted(COUNTER_MODES)}"
        ) from None
    return cls(**kwargs)
