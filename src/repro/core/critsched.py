"""Criticality-aware FR-FCFS (Section 3.2): the memory-side half.

Two arrangements of criticality within FR-FCFS:

* **Crit-CASRAS** — (1) critical CAS, (2) critical RAS, (3) non-critical
  CAS, (4) non-critical RAS; oldest-first within a group.  Requires an
  extra arbitration level beyond stock FR-FCFS.
* **CASRAS-Crit** — (1) critical CAS, (2) non-critical CAS, (3) critical
  RAS, (4) non-critical RAS.  Implementable by simply prepending the
  criticality magnitude to the age comparator's upper bits, so the paper
  advocates this variant.

Ranked magnitudes order requests within the critical groups (higher
magnitude first, then oldest).  To avoid starvation, a non-critical request
older than ``starvation_cap`` DRAM cycles is promoted to critical with
maximal urgency (Section 3.2; the paper observes the cap is never reached —
we count promotions so experiments can verify the same).
"""

from __future__ import annotations

from repro.sched.base import Scheduler

#: Magnitude assigned to starvation-promoted requests: above any realistic
#: stall-time/blocking-count value.
_PROMOTED_MAGNITUDE = 1 << 28


class _CriticalityScheduler(Scheduler):
    """Shared machinery for both arrangements.

    ``magnitude_shift`` coarsens the ranked comparison: magnitudes are
    compared in ``2**magnitude_shift``-cycle buckets, so requests whose
    stall histories differ by noise keep their age order (and the hardware
    comparator stays narrow).  Binary predictors are unaffected (flag 1 vs
    0 always lands in different buckets only when one side is zero —
    non-critical requests always carry urgency 0).
    """

    def __init__(self, starvation_cap: int = 6000, magnitude_shift: int = 5):
        if starvation_cap <= 0:
            raise ValueError(f"starvation_cap must be positive, got {starvation_cap}")
        if magnitude_shift < 0:
            raise ValueError(f"magnitude_shift must be >= 0, got {magnitude_shift}")
        self.starvation_cap = starvation_cap
        self.magnitude_shift = magnitude_shift
        self._promoted: set[int] = set()

    @property
    def promotions(self) -> int:
        """Distinct requests ever promoted by the starvation cap."""
        return len(self._promoted)

    def det_state(self):
        # Sum over the promoted-seq set is insertion-order independent.
        return (len(self._promoted), sum(self._promoted))

    def _urgency(self, txn, now: int) -> int:
        """Effective criticality magnitude, with the starvation cap applied."""
        if txn.critical:
            return max(1, txn.magnitude >> self.magnitude_shift)
        if not txn.is_write and now - txn.arrival > self.starvation_cap:
            self._promoted.add(txn.seq)
            return _PROMOTED_MAGNITUDE
        return 0

    def pre_admissible(self, cand, controller) -> bool:
        """Criticality-aware open-page policy.

        A critical conflicting request may precharge a row even while
        non-critical hits to it are pending (the paper's "critical RAS"
        outranking non-critical work); rows with pending *critical* hits
        stay protected, as does the idle threshold for non-critical
        conflicts.
        """
        from repro.dram.command import CommandKind

        if cand.kind != CommandKind.PRECHARGE:
            return True
        if cand.txn is not None and cand.txn.critical and not cand.hit_is_critical:
            return True
        if cand.blocked_by_hits:
            return False
        return cand.row_idle >= controller.config.row_idle_precharge_cycles

    def select(self, candidates, controller, now):
        candidates = self.admissible(candidates, controller)
        if not candidates:
            return None
        # All of a core's critical reads share one urgency: the magnitude
        # of the core's *oldest* queued critical read (the request its
        # in-order commit stream is gated on right now).  A uniform
        # per-core value plus the age tiebreak guarantees a core's
        # requests are never served out of program order because of stale
        # table noise — which would waste the entire reordering — while
        # cores still compete by how badly their commit stream is hurting.
        # Hardware cost: one magnitude register per core at the queue.
        core_urgency: dict[int, int] = {}
        for txn in controller.read_queue:
            if txn.critical and txn.core not in core_urgency:
                core_urgency[txn.core] = self._urgency(txn, now)
        best = None
        best_key = None
        for cand in candidates:
            txn = cand.txn
            if txn.is_write:
                urgency = 0
            elif txn.critical:
                urgency = core_urgency.get(txn.core, 0)
            else:
                urgency = self._urgency(txn, now)
            key = self._key(cand, urgency)
            if best is None or key < best_key:
                best = cand
                best_key = key
        return best

    def _key(self, cand, urgency: int):
        raise NotImplementedError


class CritCasRasScheduler(_CriticalityScheduler):
    """Criticality dominates the CAS/RAS split."""

    name = "crit-casras"

    def _key(self, cand, urgency):
        # Sort ascending: critical first (0), then CAS first, then by
        # descending magnitude, then oldest.
        return (urgency == 0, not cand.is_cas, -urgency, cand.txn.seq)


class CasRasCritScheduler(_CriticalityScheduler):
    """CAS/RAS split dominates; criticality refines within each half.

    This is the magnitude-prepended-to-the-age-comparator design the paper
    recommends for hardware.
    """

    name = "casras-crit"

    def _key(self, cand, urgency):
        return (not cand.is_cas, -urgency, cand.txn.seq)
