"""Commit Block Predictor (CBP) — Section 3 of the paper.

A small, tagless, direct-mapped SRAM indexed by a bit substring of the load
PC.  When a load blocks at the head of the ROB, the table entry is annotated;
when a later dynamic instance of the same (aliased) static load issues, the
stored annotation travels with its memory request as a criticality
flag/magnitude.

Five annotation metrics are evaluated (Section 3.1):

* ``BINARY``         — a single saturating bit: "has ever blocked".
* ``BLOCK_COUNT``    — number of times the load blocked the ROB head.
* ``LAST_STALL``     — duration of the most recent head stall.
* ``MAX_STALL``      — largest single observed head stall.
* ``TOTAL_STALL``    — accumulated head-stall cycles.

Stall-time metrics can only be written once the stalled load commits; the
block-count/binary metrics are written when the block begins.  An optional
periodic reset (Section 5.3.2) clears the table every N cycles to combat
aliasing-induced saturation.  ``entries=None`` models the paper's unlimited
fully-associative table (unaliased prediction).
"""

from __future__ import annotations

import enum


class CbpMetric(enum.Enum):
    """How a CBP entry summarises observed ROB-head blocking."""

    BINARY = "Binary"
    BLOCK_COUNT = "BlockCount"
    LAST_STALL = "LastStallTime"
    MAX_STALL = "MaxStallTime"
    TOTAL_STALL = "TotalStallTime"


class CommitBlockPredictor:
    """One per-core CBP table.

    Args:
        entries: power-of-two table size, or None for unlimited (tagless
            aliasing disappears and the dict is keyed by full PC).
        metric: the annotation scheme.
        reset_interval: clear the table every this many CPU cycles
            (None = never; the paper's best finite setting is 100K).
    """

    def __init__(
        self,
        entries: int | None = 64,
        metric: CbpMetric = CbpMetric.MAX_STALL,
        reset_interval: int | None = None,
        counter=None,
    ):
        if entries is not None:
            if entries <= 0 or entries & (entries - 1):
                raise ValueError(f"entries must be a power of two, got {entries}")
        self.entries = entries
        self.metric = metric
        self.reset_interval = reset_interval
        if counter is None:
            from repro.core.counters import FullCounter

            counter = FullCounter()
        elif isinstance(counter, str):
            from repro.core.counters import make_counter

            counter = make_counter(counter)
        self.counter = counter
        self._table: dict[int, int] = {}
        self._next_reset = reset_interval
        # Largest value ever written: Table 5's counter-width evidence.
        self.max_observed = 0
        self.resets = 0

    # -- indexing ----------------------------------------------------------

    def _index(self, pc: int) -> int:
        if self.entries is None:
            return pc
        return pc & (self.entries - 1)

    # -- read path (load issue) ---------------------------------------------

    def predict(self, pc: int) -> int:
        """Criticality magnitude for a load at ``pc`` (0 = not critical)."""
        return self._table.get(self._index(pc), 0)

    # -- write paths ----------------------------------------------------------

    def record_block_start(self, pc: int) -> None:
        """The load at ``pc`` just blocked the ROB head."""
        metric = self.metric
        if metric is CbpMetric.BINARY:
            self._store(pc, 1)
        elif metric is CbpMetric.BLOCK_COUNT:
            idx = self._index(pc)
            self._store_idx(idx, self.counter.apply(self._table.get(idx, 0), 1))

    def record_stall(self, pc: int, stall_cycles: int) -> None:
        """A previously blocking load at ``pc`` committed after stalling."""
        if stall_cycles < 0:
            raise ValueError(f"stall_cycles must be >= 0, got {stall_cycles}")
        metric = self.metric
        if metric is CbpMetric.LAST_STALL:
            self._store(pc, self.counter.store(stall_cycles))
        elif metric is CbpMetric.MAX_STALL:
            idx = self._index(pc)
            stored = self.counter.store(stall_cycles)
            if stored > self._table.get(idx, 0):
                self._store_idx(idx, stored)
        elif metric is CbpMetric.TOTAL_STALL:
            idx = self._index(pc)
            self._store_idx(
                idx, self.counter.apply(self._table.get(idx, 0), stall_cycles)
            )

    def _store(self, pc: int, value: int) -> None:
        self._store_idx(self._index(pc), value)

    def _store_idx(self, idx: int, value: int) -> None:
        self._table[idx] = value
        if value > self.max_observed:
            self.max_observed = value

    # -- periodic reset -----------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Advance the reset clock; call with the current CPU cycle."""
        if self._next_reset is not None and cycle >= self._next_reset:
            self._table.clear()
            self._next_reset = cycle + self.reset_interval
            self.resets += 1

    def next_reset_cycle(self) -> int | None:
        """Cycle of the next pending periodic reset (None = never)."""
        return self._next_reset

    # -- introspection ---------------------------------------------------------

    def occupancy(self) -> int:
        """Number of non-zero entries currently stored."""
        return sum(1 for v in self._table.values() if v)

    @staticmethod
    def counter_width(max_value: int) -> int:
        """Bits needed to store ``max_value`` (Table 5's width column)."""
        return max(1, int(max_value).bit_length())
