"""The paper's contribution: processor-side load-criticality prediction
paired with a lean criticality-aware FR-FCFS memory scheduler."""

from repro.core.cbp import CbpMetric, CommitBlockPredictor
from repro.core.clpt import CriticalLoadPredictionTable
from repro.core.counters import (
    FullCounter,
    ProbabilisticCounter,
    SaturatingCounter,
    make_counter,
)
from repro.core.critsched import CasRasCritScheduler, CritCasRasScheduler
from repro.core.fields import FieldsLikePredictor, FieldsLikeProvider
from repro.core.provider import (
    CbpProvider,
    ClptProvider,
    CriticalityProvider,
    NaiveForwardingProvider,
    NullProvider,
)

__all__ = [
    "CasRasCritScheduler",
    "CbpMetric",
    "CbpProvider",
    "ClptProvider",
    "CommitBlockPredictor",
    "CritCasRasScheduler",
    "CriticalLoadPredictionTable",
    "CriticalityProvider",
    "FieldsLikePredictor",
    "FieldsLikeProvider",
    "FullCounter",
    "NaiveForwardingProvider",
    "NullProvider",
    "ProbabilisticCounter",
    "SaturatingCounter",
    "make_counter",
]
