"""Out-of-order core model: ROB, load/store queues, ROB-head block tracking."""

from repro.cpu.core import CoreStats, OutOfOrderCore
from repro.cpu.instruction import (
    BRANCH,
    FP,
    INT,
    LOAD,
    STORE,
    TYPE_NAMES,
    Trace,
)

__all__ = [
    "BRANCH",
    "CoreStats",
    "FP",
    "INT",
    "LOAD",
    "OutOfOrderCore",
    "STORE",
    "TYPE_NAMES",
    "Trace",
]
