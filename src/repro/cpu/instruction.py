"""Instruction and trace representation.

Traces are dependency-annotated dynamic instruction streams, stored as
parallel lists for compactness and iteration speed.  Each instruction
carries:

* ``itype``   — one of INT / FP / BRANCH / LOAD / STORE;
* ``pc``      — static instruction id (the CBP/CLPT index input);
* ``addr``    — effective address (loads/stores; 0 otherwise);
* ``dep1``, ``dep2`` — backward distances to producer instructions
  (0 = no dependency); and
* ``misp``    — for branches, whether this dynamic instance mispredicts.
"""

from __future__ import annotations

INT = 0
FP = 1
BRANCH = 2
LOAD = 3
STORE = 4

TYPE_NAMES = {INT: "int", FP: "fp", BRANCH: "branch", LOAD: "load", STORE: "store"}


class Trace:
    """One thread's dynamic instruction stream (parallel-list storage)."""

    __slots__ = ("itypes", "pcs", "addrs", "dep1", "dep2", "misp", "name", "prewarm")

    def __init__(self, name: str = "trace"):
        self.name = name
        self.itypes: list[int] = []
        self.pcs: list[int] = []
        self.addrs: list[int] = []
        self.dep1: list[int] = []
        self.dep2: list[int] = []
        self.misp: list[bool] = []
        # Cache pre-warm hints: (base, bytes, level) ranges, where level 1
        # means "resident in this thread's L1 and the L2" and level 2 means
        # "resident in the L2 only".  Models the paper's one-billion-
        # instruction fast-forward before measurement.
        self.prewarm: list[tuple[int, int, int]] = []

    def append(self, itype, pc, addr=0, dep1=0, dep2=0, misp=False) -> None:
        if dep1 < 0 or dep2 < 0:
            raise ValueError("dependency distances must be non-negative")
        self.itypes.append(itype)
        self.pcs.append(pc)
        self.addrs.append(addr)
        self.dep1.append(dep1)
        self.dep2.append(dep2)
        self.misp.append(misp)

    def __len__(self) -> int:
        return len(self.itypes)

    def instruction(self, i: int):
        """(itype, pc, addr, dep1, dep2, misp) for instruction ``i``."""
        return (
            self.itypes[i],
            self.pcs[i],
            self.addrs[i],
            self.dep1[i],
            self.dep2[i],
            self.misp[i],
        )

    def count_type(self, itype: int) -> int:
        return sum(1 for t in self.itypes if t == itype)

    def static_pcs(self, itype: int | None = None) -> set[int]:
        """Distinct PCs, optionally restricted to one instruction type."""
        if itype is None:
            return set(self.pcs)
        return {pc for t, pc in zip(self.itypes, self.pcs) if t == itype}
