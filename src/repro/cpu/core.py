"""Cycle-stepped out-of-order core (paper Table 1 machine).

Modeled structure, per cycle:

* **Dispatch** — in order, up to ``fetch_width`` per cycle, gated by ROB
  space, load/store-queue entries (allocated at dispatch, freed at commit),
  and branch-misprediction refill stalls (resolve + 9-cycle penalty).
* **Execute** — an instruction issues once all producers have completed;
  per-type functional-unit slots bound issues per cycle (2 INT / 2 FP /
  2 branch / 2 load ports / 2 store ports).  Non-memory latencies are
  fixed; loads go to the cache hierarchy and complete when data returns.
* **Commit** — in order, up to ``commit_width`` per cycle.  An incomplete
  load at the ROB head *blocks* commit: this is the event the Commit Block
  Predictor observes (block start) and measures (stall length, written back
  at the blocked load's commit).

The core reports three things to its criticality provider: annotations for
issued loads, block starts, and blocked-commit stall times — plus direct-
consumer counts for the CLPT comparator.
"""

from __future__ import annotations

from repro.config import CoreConfig
from repro.cpu.instruction import BRANCH, FP, INT, LOAD, STORE
from repro.core.provider import CriticalityProvider, NaiveForwardingProvider

_UNKNOWN = -1
# Sentinel for "no locally scheduled wake/issue pending" (see _next_local).
_FAR = 1 << 62

# Dispatch classes precomputed per trace index (_dclass): the per-cycle
# dispatch gate only needs "load / store / mispredicted branch / other",
# not the full itype, and a bytes lookup beats two list indexes plus a
# comparison chain in the hot loop.
_DC_OTHER = 0
_DC_LOAD = 1
_DC_STORE = 2
_DC_MISP_BRANCH = 3


class _Slot:
    """One ROB entry."""

    __slots__ = (
        "idx",
        "itype",
        "pc",
        "addr",
        "deps_pending",
        "ready_base",
        "dispatch_cycle",
        "waiters",
        "blocking_start",
        "handle",
        "consumers",
        "is_misp_branch",
        "issued",
    )

    def __init__(self, idx, itype, pc, addr, dispatch_cycle):
        self.idx = idx
        self.itype = itype
        self.pc = pc
        self.addr = addr
        self.deps_pending = 0
        self.ready_base = dispatch_cycle
        self.dispatch_cycle = dispatch_cycle
        self.waiters = None
        self.blocking_start = -1
        self.handle = None
        self.consumers = 0
        self.is_misp_branch = False
        self.issued = False


class CoreStats:
    """Per-core counters for Figures 1/6/9 and predictor studies."""

    def __init__(self):
        self.committed = 0
        self.cycles = 0
        self.loads = 0
        self.blocking_loads = 0
        self.blocking_dram_loads = 0
        self.blocked_cycles = 0
        self.blocked_dram_cycles = 0
        self.total_block_stall = 0
        self.lq_full_cycles = 0
        self.sq_full_cycles = 0
        self.rob_full_cycles = 0
        self.dispatch_stall_cycles = 0
        self.critical_loads_sent = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


class OutOfOrderCore:
    """One core executing one trace against the shared hierarchy."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        trace,
        hierarchy,
        provider: CriticalityProvider | None = None,
        events=None,
    ):
        self.core_id = core_id
        self.config = config
        self.trace = trace
        self.hierarchy = hierarchy
        self.events = events
        self.provider = provider if provider is not None else CriticalityProvider()
        if isinstance(self.provider, NaiveForwardingProvider) and events is not None:
            self.provider.bind_defer(events.schedule)
        self._n = len(trace)
        self._ptr = 0
        # The ROB always holds the consecutive trace indices
        # [_ptr - _rob_len, _ptr), so the slot for index ``i`` lives at the
        # fixed ring position ``i % rob_entries`` — no head pointer, no
        # index map, no compaction.
        self._rob: list[_Slot | None] = [None] * config.rob_entries
        self._rob_len = 0
        self._complete: list[int] = [_UNKNOWN] * self._n
        # Per-cycle wake lists for deterministic-latency completions.
        self._wake: dict[int, list[_Slot]] = {}
        # Loads scheduled to access the cache at a given cycle.
        self._load_issue: dict[int, list[_Slot]] = {}
        # Functional-unit reservation: per type, cycle -> issues booked.
        self._fu_booked: dict[int, dict[int, int]] = {t: {} for t in range(5)}
        self._fu_caps = {
            INT: config.int_units,
            FP: config.fp_units,
            BRANCH: config.branch_units,
            LOAD: config.load_ports,
            STORE: config.store_ports,
        }
        self._latency = {
            INT: config.int_latency,
            FP: config.fp_latency,
            BRANCH: config.branch_latency,
            STORE: 1,
        }
        self._lq_used = 0
        self._sq_used = 0
        self._fetch_blocker: _Slot | None = None
        self._fetch_resume = 0
        # Precomputed dispatch class per trace index (see _DC_* above).
        # Cached on the trace object — the classes are a pure function of
        # the (append-only) trace contents, and benchmarks/repeat runs
        # rebuild cores from the same traces; the length guard invalidates
        # the cache if the trace grew since it was computed.
        cached = getattr(trace, "_dclass_cache", None)
        if cached is not None and cached[0] == self._n:
            self._dclass = cached[1]
        else:
            itypes = trace.itypes
            misp = trace.misp
            self._dclass = bytes(
                _DC_MISP_BRANCH if (itypes[i] == BRANCH and misp[i])
                else _DC_LOAD if itypes[i] == LOAD
                else _DC_STORE if itypes[i] == STORE
                else _DC_OTHER
                for i in range(self._n)
            )
            try:
                trace._dclass_cache = (self._n, self._dclass)
            # repro-lint: disable=EXC002 slotted stand-in traces need no cache
            except AttributeError:
                pass
        # Conservative lower bound on the earliest cycle in _wake /
        # _load_issue.  Inserts lower it eagerly; consumers recompute the
        # exact minimum when the bound goes stale (<= current cycle).
        # Purely derived state — never observable in results.
        self._next_local = 0
        # Hot-path copies of per-run-constant configuration (attribute
        # loads off ``self`` are cheaper than two-level ``config`` reads
        # in the per-cycle stages).
        self._fetch_width = config.fetch_width
        self._commit_width = config.commit_width
        self._rob_entries = config.rob_entries
        self._lq_entries = config.load_queue_entries
        self._sq_entries = config.store_queue_entries
        self._misp_penalty = config.branch_mispredict_penalty
        self.stats = CoreStats()
        self.done = False
        # Cycle-skipping state (see skip_plan): while quiescent the system
        # may stop stepping this core until ``skip_until``; the per-cycle
        # stat increments it owes are settled lazily by flush_skip.
        self.skip_until = 0
        self._quiet_deltas = None
        self._quiet_from = 0
        # Hysteresis: after skip_plan says "can progress", don't re-plan for
        # a few cycles.  Purely a throughput knob — skipping fewer cycles is
        # always bit-identical, so this can't change results.
        self.plan_defer = 0
        # Duck-typed providers without next_tick_cycle have unknown tick
        # semantics; such cores are never skipped (skip_plan bails).
        self._next_tick = getattr(self.provider, "next_tick_cycle", None)
        # Wake subscription (event engine): installed while the core is
        # quiescent; called whenever ``skip_until`` is cleared so the
        # engine learns about external wakes without scanning cores.
        self._wake_hook = None
        # Event-trace recorder (attached by System under REPRO_TRACE=1).
        self.tracer = None

    # --------------------------------------------------------------- helpers

    def _rob_occupancy(self) -> int:
        return self._rob_len

    def _book_fu(self, itype: int, earliest: int) -> int:
        """Reserve a functional-unit slot of ``itype`` at or after ``earliest``."""
        booked = self._fu_booked[itype]
        cap = self._fu_caps[itype]
        cycle = earliest
        used = booked.get(cycle, 0)
        while used >= cap:
            cycle += 1
            used = booked.get(cycle, 0)
        booked[cycle] = used + 1
        return cycle

    # ----------------------------------------------------------- completions

    def _complete_at(self, slot: _Slot, cycle: int) -> None:
        """Mark ``slot`` complete at ``cycle`` and wake its dependents."""
        self.skip_until = 0  # completions can unblock commit/dispatch
        hook = self._wake_hook
        if hook is not None:
            hook(self)
        self._complete[slot.idx] = cycle
        if slot is self._fetch_blocker:
            self._fetch_blocker = None
            self._fetch_resume = cycle + self._misp_penalty
        waiters = slot.waiters
        if waiters:
            for dep in waiters:
                if cycle > dep.ready_base:
                    dep.ready_base = cycle
                dep.deps_pending -= 1
                if dep.deps_pending == 0:
                    self._schedule_execute(dep, dep.ready_base)
            slot.waiters = None

    def _schedule_execute(self, slot: _Slot, earliest: int) -> None:
        earliest = max(earliest, slot.dispatch_cycle + 1)
        itype = slot.itype
        issue = self._book_fu(itype, earliest)
        if itype == LOAD:
            self._load_issue.setdefault(issue, []).append(slot)
            if issue < self._next_local:
                self._next_local = issue
        else:
            done = issue + self._latency[itype]
            self._wake.setdefault(done, []).append(slot)
            if done < self._next_local:
                self._next_local = done

    def _on_load_done(self, slot: _Slot, cycle: int) -> None:
        self._complete_at(slot, cycle)

    # ---------------------------------------------------------------- stages

    def _do_load_issues(self, now: int) -> None:
        slots = self._load_issue.pop(now, None)
        if not slots:
            return
        hierarchy = self.hierarchy
        provider = self.provider
        load_issue = self._load_issue
        core_id = self.core_id
        stats = self.stats
        tracer = self.tracer
        for slot in slots:
            critical, magnitude = provider.annotate(slot.pc)
            handle = hierarchy.load(
                core_id,
                slot.pc,
                slot.addr,
                critical,
                magnitude,
                lambda done, s=slot: self._on_load_done(s, done),
                now,
            )
            if handle is None:
                # L1 MSHRs full: replay next cycle through a fresh port slot.
                retry = self._book_fu(LOAD, now + 1)
                if retry < self._next_local:
                    self._next_local = retry
                bucket = load_issue.get(retry)
                if bucket is None:
                    # repro-lint: disable=PERF001 fresh owned bucket, first retry only
                    bucket = load_issue[retry] = []
                bucket.append(slot)
                continue
            slot.handle = handle
            slot.issued = True
            if critical:
                stats.critical_loads_sent += 1
                if tracer is not None:
                    tracer.prediction(now, core_id, slot.pc, magnitude)
            stats.loads += 1

    def _do_commit(self, now: int) -> None:
        stats = self.stats
        rob = self._rob
        cap = self._rob_entries
        complete = self._complete
        provider = self.provider
        hierarchy = self.hierarchy
        core_id = self.core_id
        tracer = self.tracer
        committed = 0
        width = self._commit_width
        rob_len = self._rob_len
        first = self._ptr - rob_len
        while committed < width and rob_len:
            head = rob[first % cap]
            done_cycle = complete[head.idx]
            if done_cycle == _UNKNOWN or done_cycle > now:
                if head.itype == LOAD:
                    # Only long-latency (DRAM-serviced) loads count as
                    # ROB-head blockers — the Runahead/CLEAR criterion the
                    # CBP is built on.  Short L1/L2-hit head stalls are not
                    # criticality events.
                    dram_bound = head.handle is not None and head.handle.went_to_dram
                    if head.blocking_start < 0 and dram_bound:
                        head.blocking_start = now
                        stats.blocking_loads += 1
                        stats.blocking_dram_loads += 1
                        provider.on_block_start(
                            head.pc, now, head.handle.txn
                        )
                    stats.blocked_cycles += 1
                    if dram_bound:
                        stats.blocked_dram_cycles += 1
                break
            itype = head.itype
            if itype == STORE and not hierarchy.can_accept_store(core_id):
                # Store buffer full: commit stalls until it drains.
                stats.sq_full_cycles += 1
                break
            if itype == LOAD:
                if head.blocking_start >= 0:
                    stall = now - head.blocking_start
                    stats.total_block_stall += stall
                    if tracer is not None:
                        tracer.block_episode(
                            head.blocking_start, core_id, head.pc, stall
                        )
                    provider.on_blocked_commit(head.pc, stall, now)
                provider.on_load_consumers(head.pc, head.consumers)
                self._lq_used -= 1
            elif itype == STORE:
                self._sq_used -= 1
                hierarchy.store(core_id, head.addr, now)
            rob[first % cap] = None
            first += 1
            rob_len -= 1
            committed += 1
            stats.committed += 1
        self._rob_len = rob_len

    def _do_dispatch(self, now: int) -> None:
        if self._fetch_blocker is not None or now < self._fetch_resume:
            self.stats.dispatch_stall_cycles += 1
            return
        trace = self.trace
        rob = self._rob
        cap = self._rob_entries
        stats = self.stats
        fetch_width = self._fetch_width
        itypes = trace.itypes
        dclass = self._dclass
        n = self._n
        dispatched = 0
        counted_lq_full = False
        ptr = self._ptr
        rob_len = self._rob_len
        # Constant across the loop: dispatch grows ptr and rob_len together.
        first = ptr - rob_len
        while dispatched < fetch_width and ptr < n:
            if rob_len >= cap:
                stats.rob_full_cycles += 1
                break
            cls = dclass[ptr]
            if cls == _DC_LOAD and self._lq_used >= self._lq_entries:
                if not counted_lq_full:
                    stats.lq_full_cycles += 1
                    counted_lq_full = True
                break
            if cls == _DC_STORE and self._sq_used >= self._sq_entries:
                break
            slot = _Slot(ptr, itypes[ptr], trace.pcs[ptr], trace.addrs[ptr], now)
            self._resolve_deps(slot, trace.dep1[ptr], trace.dep2[ptr], first)
            rob[ptr % cap] = slot
            rob_len += 1
            if cls == _DC_LOAD:
                self._lq_used += 1
            elif cls == _DC_STORE:
                self._sq_used += 1
            if slot.deps_pending == 0:
                self._schedule_execute(slot, slot.ready_base)
            ptr += 1
            dispatched += 1
            if cls == _DC_MISP_BRANCH:
                # Fetch stalls until the branch resolves, plus the refill
                # penalty (applied when the branch completes).
                slot.is_misp_branch = True
                self._fetch_blocker = slot
                break
        self._ptr = ptr
        self._rob_len = rob_len

    def _resolve_deps(self, slot: _Slot, d1: int, d2: int, first: int) -> None:
        complete = self._complete
        rob = self._rob
        cap = self._rob_entries
        for dist in (d1, d2):
            if dist <= 0:
                continue
            p = slot.idx - dist
            if p < 0:
                continue
            # In-flight iff still >= the oldest un-committed index; the ring
            # slot at p % cap then necessarily holds producer p.
            producer = rob[p % cap] if p >= first else None
            if producer is not None and producer.itype == LOAD:
                # Direct-consumer count, as CLPT tracks at rename time.
                producer.consumers += 1
            done = complete[p]
            if done == _UNKNOWN:
                if producer is None:
                    continue
                if producer.waiters is None:
                    # repro-lint: disable=PERF001 one owned list per producer, amortised
                    producer.waiters = []
                producer.waiters.append(slot)
                slot.deps_pending += 1
            elif done > slot.ready_base:
                slot.ready_base = done

    # ------------------------------------------------------------------ step

    def step(self, now: int) -> None:
        """Advance one CPU cycle."""
        if self.done:
            return
        wake = self._wake.pop(now, None)
        if wake:
            for slot in wake:
                self._complete_at(slot, now)
        self._do_load_issues(now)
        self._do_commit(now)
        self._do_dispatch(now)
        self.provider.tick(now)
        if now & 16383 == 0 and now:
            self._prune_fu_bookings(now)
        self.stats.cycles = now + 1
        if self._ptr >= self._n and not self._rob_len:
            self.done = True

    # ------------------------------------------------------ windowed stepping
    #
    # The batched engine advances a core over spans of cycles in one call
    # instead of one step() per cycle.  Soundness rests on the batchability
    # certificates (DESIGN.md section 5.8): during a span in which no global
    # event runs and no other core steps, the only state this core observes
    # changing is its own — local wakes (_wake/_load_issue), which the span
    # is clamped to, and global events the span's own cycles schedule, which
    # are re-checked after every consumed cycle.  Within those clamps each
    # windowed stage replays the naive per-cycle stage exactly, so every
    # counter, provider callback, and tracer record lands on the same
    # virtual cycle as in the per-cycle loop.

    def step_window(self, now: int, limit: int) -> int:
        """Advance from cycle ``now`` toward ``limit``; return cycles consumed.

        The caller (the batched engine) guarantees that over ``[now, limit)``
        no global event is due, no DRAM edge needs stepping, and no other
        core is active.  At least one cycle is always consumed.
        """
        events = self.events
        n = self._n
        wake_sched = self._wake
        load_issue = self._load_issue
        c = now
        while True:
            # Exact earliest local wake/load-issue, recomputed when the
            # eager lower bound has gone stale.
            nl = self._next_local
            if nl <= c:
                nl = _FAR
                if wake_sched:
                    nl = min(wake_sched)
                if load_issue:
                    m = min(load_issue)
                    if m < nl:
                        nl = m
                self._next_local = nl
            if nl <= c:
                # Completions or load issues due this cycle: full step.
                self.step(c)
                c += 1
            else:
                end = nl if nl < limit else limit
                consumed = 0
                blocker = self._fetch_blocker
                resume = self._fetch_resume
                rob_len = self._rob_len
                ptr = self._ptr
                if blocker is not None or c < resume or ptr >= n:
                    # Dispatch provably inert through ``end``: commit-only
                    # window.  The stall flag flips at fetch_resume, so the
                    # span must not straddle it.
                    if blocker is None and c < resume and resume < end:
                        end = resume
                    if rob_len:
                        stalled = blocker is not None or c < resume
                        consumed = self._do_commit_window(c, end, stalled)
                elif rob_len:
                    head = self._rob[(ptr - rob_len) % self._rob_entries]
                    hdone = self._complete[head.idx]
                    if hdone == _UNKNOWN or hdone >= end:
                        consumed = self._do_dispatch_window(c, end)
                    elif hdone > c:
                        # Head completes mid-span: dispatch-only until then.
                        consumed = self._do_dispatch_window(c, hdone)
                    # else: commit can proceed at ``c`` too — mixed cycle.
                else:
                    consumed = self._do_dispatch_window(c, end)
                if consumed:
                    c += consumed
                else:
                    self.step(c)
                    c += 1
            if self.done or c >= limit:
                break
            # Cycles just consumed may have scheduled global events
            # (hierarchy accesses, store retries, provider defers); they
            # bound how much further this window may reach.
            if events is not None:
                ev = events.next_cycle()
                if ev is not None and ev < limit:
                    limit = ev
                    if c >= limit:
                        break
            # Bulk-account provably quiet stretches without returning to
            # the engine loop (same contract as begin_skip/flush_skip).
            if self.plan_defer:
                self.plan_defer -= 1
                continue
            plan = self.skip_plan(c - 1)
            if plan is None:
                self.plan_defer = 3
                continue
            wake, deltas = plan
            target = limit if wake is None else (wake if wake < limit else limit)
            if target > c:
                # repro-batch: cert=OutOfOrderCore.skip_plan
                self._account_quiet(deltas, target - c)
                self.stats.cycles = target
                c = target
                if c >= limit:
                    break
        return c - now

    def _do_commit_window(self, now: int, end: int, stalled: bool) -> int:
        """Run commit-only cycles over ``[now, end)``; return cycles consumed.

        Caller guarantees dispatch cannot act over the consumed span and no
        local wakes or load issues fall inside it.  Each consumed cycle
        replays the naive cycle exactly: the commit stage (including
        blocked-head accounting), the dispatch stall counter when
        ``stalled``, and the provider tick.  Stops after the first cycle
        that retires nothing — the engine's skip path handles the rest.
        """
        stats = self.stats
        rob = self._rob
        cap = self._rob_entries
        complete = self._complete
        provider = self.provider
        hierarchy = self.hierarchy
        core_id = self.core_id
        tracer = self.tracer
        width = self._commit_width
        events = self.events
        rob_len = self._rob_len
        first = self._ptr - rob_len
        c = now
        while c < end:
            committed = 0
            while committed < width and rob_len:
                head = rob[first % cap]
                done_cycle = complete[head.idx]
                if done_cycle == _UNKNOWN or done_cycle > c:
                    if head.itype == LOAD:
                        dram_bound = (
                            head.handle is not None and head.handle.went_to_dram
                        )
                        if head.blocking_start < 0 and dram_bound:
                            head.blocking_start = c
                            stats.blocking_loads += 1
                            stats.blocking_dram_loads += 1
                            provider.on_block_start(head.pc, c, head.handle.txn)
                        stats.blocked_cycles += 1
                        if dram_bound:
                            stats.blocked_dram_cycles += 1
                    break
                itype = head.itype
                if itype == STORE and not hierarchy.can_accept_store(core_id):
                    stats.sq_full_cycles += 1
                    break
                if itype == LOAD:
                    if head.blocking_start >= 0:
                        stall = c - head.blocking_start
                        stats.total_block_stall += stall
                        if tracer is not None:
                            tracer.block_episode(
                                head.blocking_start, core_id, head.pc, stall
                            )
                        provider.on_blocked_commit(head.pc, stall, c)
                    provider.on_load_consumers(head.pc, head.consumers)
                    self._lq_used -= 1
                elif itype == STORE:
                    self._sq_used -= 1
                    hierarchy.store(core_id, head.addr, c)
                rob[first % cap] = None
                first += 1
                rob_len -= 1
                committed += 1
                stats.committed += 1
            if stalled:
                stats.dispatch_stall_cycles += 1
            provider.tick(c)
            c += 1
            if self._ptr >= self._n and not rob_len:
                self.done = True
                break
            if committed == 0:
                # Commit went quiet: hand the remaining span back so the
                # engine's skip path can bulk-account it.
                break
            # Stores/provider ticks this cycle may have scheduled events.
            if events is not None:
                ev = events.next_cycle()
                if ev is not None and ev < end:
                    end = ev
        self._rob_len = rob_len
        self.stats.cycles = c
        return c - now

    def _do_dispatch_window(self, now: int, end: int) -> int:
        """Run dispatch-only cycles over ``[now, end)``; return cycles consumed.

        Caller guarantees the ROB head (if any) cannot commit before
        ``end`` and dispatch is not fetch-stalled.  Each consumed cycle
        replays the naive cycle exactly: the commit stage reduced to its
        blocked-head accounting, then dispatch, then the provider tick.
        Newly scheduled local wakes shrink the span as they appear.
        """
        stats = self.stats
        trace = self.trace
        rob = self._rob
        cap = self._rob_entries
        complete = self._complete
        provider = self.provider
        fetch_width = self._fetch_width
        itypes = trace.itypes
        dclass = self._dclass
        events = self.events
        n = self._n
        ptr = self._ptr
        rob_len = self._rob_len
        first = ptr - rob_len
        c = now
        while c < end:
            if rob_len:
                head = rob[first % cap]
                hdone = complete[head.idx]
                if hdone != _UNKNOWN and hdone <= c:
                    break  # head became committable: window over
                if head.itype == LOAD:
                    dram_bound = (
                        head.handle is not None and head.handle.went_to_dram
                    )
                    if head.blocking_start < 0 and dram_bound:
                        head.blocking_start = c
                        stats.blocking_loads += 1
                        stats.blocking_dram_loads += 1
                        provider.on_block_start(head.pc, c, head.handle.txn)
                    stats.blocked_cycles += 1
                    if dram_bound:
                        stats.blocked_dram_cycles += 1
            dispatched = 0
            counted_lq_full = False
            while dispatched < fetch_width and ptr < n:
                if rob_len >= cap:
                    stats.rob_full_cycles += 1
                    break
                cls = dclass[ptr]
                if cls == _DC_LOAD and self._lq_used >= self._lq_entries:
                    if not counted_lq_full:
                        stats.lq_full_cycles += 1
                        counted_lq_full = True
                    break
                if cls == _DC_STORE and self._sq_used >= self._sq_entries:
                    break
                slot = _Slot(ptr, itypes[ptr], trace.pcs[ptr], trace.addrs[ptr], c)
                self._resolve_deps(slot, trace.dep1[ptr], trace.dep2[ptr], first)
                rob[ptr % cap] = slot
                rob_len += 1
                if cls == _DC_LOAD:
                    self._lq_used += 1
                elif cls == _DC_STORE:
                    self._sq_used += 1
                if slot.deps_pending == 0:
                    self._schedule_execute(slot, slot.ready_base)
                ptr += 1
                dispatched += 1
                if cls == _DC_MISP_BRANCH:
                    slot.is_misp_branch = True
                    self._fetch_blocker = slot
                    break
            provider.tick(c)
            c += 1
            if self._fetch_blocker is not None or dispatched == 0:
                # Fetch just stalled, or dispatch went quiet: hand the rest
                # of the span back to the engine's skip path.
                break
            # Clamp to wakes scheduled by this cycle's own dispatches and
            # to events scheduled by the provider tick.
            nl = self._next_local
            if nl < end:
                end = nl
            if events is not None:
                ev = events.next_cycle()
                if ev is not None and ev < end:
                    end = ev
        self._ptr = ptr
        self._rob_len = rob_len
        self.stats.cycles = c
        return c - now

    # -------------------------------------------------------- cycle skipping

    def skip_plan(self, now: int):
        """Classify the core's state after cycle ``now`` for fast-forwarding.

        Returns ``None`` when the core could make progress at ``now + 1``
        (the system must keep stepping cycle by cycle), otherwise a pair
        ``(wake, deltas)``:

        * ``wake`` — earliest future cycle at which stepping this core might
          change its state (``None`` = only external events can wake it);
        * ``deltas`` — the per-cycle stat increments the naive loop would
          apply while the state holds, as a tuple ``(blocked, blocked_dram,
          sq_full, dispatch_stall, rob_full, lq_full)``.

        The classification mirrors :meth:`step` exactly; anything uncertain
        returns ``None`` so skipping stays conservative (and therefore
        bit-identical to the cycle-by-cycle loop).
        """
        next_tick = self._next_tick
        if next_tick is None:
            return None  # provider tick semantics unknown: never skip
        blocked = blocked_dram = sq_full = stall = rob_full = lq_full = 0
        head_done = -1

        rob_len = self._rob_len
        if rob_len:
            head = self._rob[(self._ptr - rob_len) % self._rob_entries]
            done_cycle = self._complete[head.idx]
            if done_cycle == _UNKNOWN or done_cycle > now:
                head_done = done_cycle
                if head.itype == LOAD:
                    dram_bound = (
                        head.handle is not None and head.handle.went_to_dram
                    )
                    if dram_bound and head.blocking_start < 0:
                        # First blocked cycle not yet accounted: step it.
                        return None
                    blocked = 1
                    if dram_bound:
                        blocked_dram = 1
            elif head.itype == STORE and not self.hierarchy.can_accept_store(
                self.core_id
            ):
                sq_full = 1
            else:
                return None  # head commits next cycle

        fetch_resume = 0
        if self._fetch_blocker is not None:
            stall = 1
        elif now + 1 < self._fetch_resume:
            fetch_resume = self._fetch_resume
            stall = 1
        elif self._ptr < self._n:
            if rob_len >= self._rob_entries:
                rob_full = 1
            else:
                itype = self.trace.itypes[self._ptr]
                if itype == LOAD and self._lq_used >= self._lq_entries:
                    lq_full = 1
                elif (
                    itype == STORE
                    and self._sq_used >= self._sq_entries
                ):
                    pass  # dispatch stalls silently on a full store queue
                else:
                    return None  # dispatch proceeds next cycle

        # Quiescent: gather the cycles at which stepping could matter again.
        wake = None
        if self._wake:
            wake = min(self._wake)
        if self._load_issue:
            first = min(self._load_issue)
            if wake is None or first < wake:
                wake = first
        if head_done > now and (wake is None or head_done < wake):
            wake = head_done
        if fetch_resume and (wake is None or fetch_resume < wake):
            wake = fetch_resume
        tick = next_tick(now)
        if tick is not None:
            tick = max(tick, now + 1)
            if wake is None or tick < wake:
                wake = tick
        return wake, (blocked, blocked_dram, sq_full, stall, rob_full, lq_full)

    def begin_skip(self, plan, now: int, forever: int) -> None:
        """Enter the quiescent state ``skip_plan`` classified at ``now``."""
        wake, deltas = plan
        self._quiet_deltas = deltas
        self._quiet_from = now + 1
        self.skip_until = wake if wake is not None else forever

    def wake_skip(self) -> None:
        """External state change: the core must be stepped again."""
        self.skip_until = 0
        hook = self._wake_hook
        if hook is not None:
            hook(self)

    def flush_skip(self, now: int) -> None:
        """Settle the stat increments owed for cycles skipped before ``now``."""
        deltas = self._quiet_deltas
        self._quiet_deltas = None
        self.skip_until = 0
        skipped = now - self._quiet_from
        if deltas is None or skipped <= 0:
            return
        self._account_quiet(deltas, skipped)
        self.stats.cycles = now

    def _account_quiet(self, deltas, skipped: int) -> None:
        """Apply ``skipped`` cycles' worth of a skip_plan deltas tuple."""
        blocked, blocked_dram, sq_full, stall, rob_full, lq_full = deltas
        stats = self.stats
        if blocked:
            stats.blocked_cycles += skipped
        if blocked_dram:
            stats.blocked_dram_cycles += skipped
        if sq_full:
            stats.sq_full_cycles += skipped
        if stall:
            stats.dispatch_stall_cycles += skipped
        if rob_full:
            stats.rob_full_cycles += skipped
        if lq_full:
            stats.lq_full_cycles += skipped

    def _prune_fu_bookings(self, now: int) -> None:
        """Drop functional-unit reservations for cycles already past."""
        for itype, booked in self._fu_booked.items():
            if len(booked) > 64:
                self._fu_booked[itype] = {
                    c: n for c, n in booked.items() if c > now
                }

    # -------------------------------------------------------------- telemetry

    def register_metrics(self, registry, prefix: str) -> None:
        """Register this core's instruments under ``prefix``.

        Sampled gauges change only inside :meth:`step` or completion
        events — never during a quiescent fast-forward window — so the
        interval sampler's stream is skip-invariant.  Lazily-settled
        per-cycle stall counters (``blocked_cycles`` et al.) must never
        be sampled and are exposed unsampled only.
        """
        stats = self.stats
        registry.gauge(f"{prefix}.committed",
                       lambda: stats.committed, sampled=True)
        registry.gauge(f"{prefix}.loads", lambda: stats.loads, sampled=True)
        registry.gauge(f"{prefix}.critical_loads_sent",
                       lambda: stats.critical_loads_sent, sampled=True)
        registry.gauge(f"{prefix}.rob_occupancy",
                       self._rob_occupancy, sampled=True)
        registry.gauge(f"{prefix}.blocking_dram_loads",
                       lambda: stats.blocking_dram_loads)
        registry.gauge(f"{prefix}.blocked_dram_cycles",
                       lambda: stats.blocked_dram_cycles)

    # -------------------------------------------------------------- inspection

    def det_state(self) -> tuple[int, ...]:
        """Architectural state words for the determinism hash-chain.

        Every field is constant while the core is quiescent (they only
        change inside :meth:`step` or in completion events, both of which
        end a fast-forward window), so skip and naive runs sample
        identical values.  Statistics counters are excluded — they are
        settled lazily by :meth:`flush_skip`.
        """
        rob_len = self._rob_len
        head = (
            self._rob[(self._ptr - rob_len) % self._rob_entries]
            if rob_len
            else None
        )
        return (
            1 if self.done else 0,
            self.stats.committed,
            self._ptr,
            rob_len,
            -1 if head is None else head.idx,
            self._lq_used,
            self._sq_used,
            self._fetch_resume,
            -1 if self._fetch_blocker is None else self._fetch_blocker.idx,
        )

    def rob_occupancy(self) -> int:
        return self._rob_occupancy()

    @property
    def instructions_remaining(self) -> int:
        return self._n - self._ptr
