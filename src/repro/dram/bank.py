"""Per-bank state machine and timing bookkeeping.

Each bank tracks its open row and the earliest DRAM cycle at which each
command class may legally issue, derived from the DDR3 timing constraints
that are *local to the bank*:

* ACTIVATE after PRECHARGE: tRP
* ACTIVATE after previous ACTIVATE (same bank): tRC
* READ/WRITE after ACTIVATE: tRCD
* PRECHARGE after ACTIVATE: tRAS
* PRECHARGE after READ: tRTP
* PRECHARGE after WRITE: tWL + burst + tWR (write recovery)

Cross-bank and cross-rank constraints (tRRD, tCCD, tWTR, tRTRS, data-bus
occupancy) live in :mod:`repro.dram.channel`.
"""

from __future__ import annotations

from repro.config import DramTimings


class Bank:
    """One DRAM bank: open-row state plus earliest-issue times."""

    __slots__ = (
        "rank",
        "index",
        "open_row",
        "act_ready",
        "cas_ready",
        "pre_ready",
        "_t",
        "row_hits",
        "row_misses",
        "row_conflicts",
        "opened_by",
        "last_use",
    )

    def __init__(self, rank: int, index: int, timings: DramTimings):
        self.rank = rank
        self.index = index
        self.open_row: int | None = None
        # seq of the transaction whose ACTIVATE opened the current row
        # (-1 when closed): used to classify reads as row-buffer hits.
        self.opened_by = -1
        # Last cycle the open row was touched (ACT or CAS): the open-page
        # policy refuses conflict precharges until the row has idled.
        self.last_use = 0
        # Earliest cycles at which each command class may issue here.
        self.act_ready = 0
        self.cas_ready = 0
        self.pre_ready = 0
        self._t = timings
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0

    # -- state queries -----------------------------------------------------

    def is_open(self) -> bool:
        return self.open_row is not None

    def classify(self, row: int) -> str:
        """'hit' (row open), 'closed' (precharged), or 'conflict'."""
        if self.open_row is None:
            return "closed"
        return "hit" if self.open_row == row else "conflict"

    # -- command effects ---------------------------------------------------

    def do_activate(self, row: int, now: int, opened_by: int = -1) -> None:
        """Open ``row``; caller has verified ``now >= act_ready``."""
        t = self._t
        self.open_row = row
        self.opened_by = opened_by
        self.last_use = now
        self.cas_ready = max(self.cas_ready, now + t.tRCD)
        self.pre_ready = max(self.pre_ready, now + t.tRAS)
        self.act_ready = max(self.act_ready, now + t.tRC)
        self.row_misses += 1

    def do_read(self, now: int) -> None:
        t = self._t
        # PRE must wait read-to-precharge.
        self.pre_ready = max(self.pre_ready, now + t.tRTP)
        self.last_use = now
        self.row_hits += 1

    def do_write(self, now: int) -> None:
        t = self._t
        # Write recovery: data lands at now+tWL, occupies burst, then tWR.
        self.pre_ready = max(self.pre_ready, now + t.tWL + t.burst_cycles + t.tWR)
        self.last_use = now
        self.row_hits += 1

    def do_precharge(self, now: int) -> None:
        """Close the open row; caller has verified ``now >= pre_ready``."""
        t = self._t
        self.open_row = None
        self.opened_by = -1
        self.act_ready = max(self.act_ready, now + t.tRP)
        self.row_conflicts += 1

    def block_until(self, cycle: int) -> None:
        """Make the bank unavailable until ``cycle`` (used by refresh)."""
        self.act_ready = max(self.act_ready, cycle)
        self.cas_ready = max(self.cas_ready, cycle)
        self.pre_ready = max(self.pre_ready, cycle)
