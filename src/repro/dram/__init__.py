"""Detailed DDR3 DRAM model: banks, ranks, channels, timing, scheduling.

The model is command-level: the controller issues ACT/PRE/RD/WR/REF commands
subject to the full Table-3 timing set, one command per channel per DRAM
command-clock cycle, with burst-length-8 data-bus occupancy and per-rank
refresh.
"""

from repro.dram.addressmap import AddressMap, DramLocation
from repro.dram.bank import Bank
from repro.dram.channel import ChannelTiming
from repro.dram.command import CandidateCommand, CommandKind
from repro.dram.controller import ChannelController, MemorySystem
from repro.dram.transaction import Transaction

__all__ = [
    "AddressMap",
    "Bank",
    "CandidateCommand",
    "ChannelController",
    "ChannelTiming",
    "CommandKind",
    "DramLocation",
    "MemorySystem",
    "Transaction",
]
