"""Physical-address decomposition under page interleaving (paper Table 3).

Consecutive row-buffer-sized pages are striped across channels, then banks,
then ranks, so a streaming access pattern spreads across channels while each
page stays within one row (maximising open-page hits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DramConfig


@dataclass(frozen=True)
class DramLocation:
    """Where one physical address lives in the DRAM topology."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int


class AddressMap:
    """Maps physical addresses to (channel, rank, bank, row, column).

    Layout, from least-significant: column offset within the row buffer,
    channel index, bank index, rank index, row index.  This is the "page
    interleaving" policy named in Table 3.
    """

    def __init__(self, config: DramConfig):
        self._row_bytes = config.row_buffer_bytes
        self._channels = config.channels
        self._ranks = config.ranks_per_channel
        self._banks = config.banks_per_rank
        self._rows = config.rows_per_bank

    def locate(self, address: int) -> DramLocation:
        """Decompose a physical byte address."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        column = address % self._row_bytes
        page = address // self._row_bytes
        channel = page % self._channels
        page //= self._channels
        bank = page % self._banks
        page //= self._banks
        rank = page % self._ranks
        page //= self._ranks
        row = page % self._rows
        return DramLocation(channel, rank, bank, row, column)

    def compose(self, loc: DramLocation) -> int:
        """Inverse of :meth:`locate` (up to row aliasing)."""
        page = loc.row
        page = page * self._ranks + loc.rank
        page = page * self._banks + loc.bank
        page = page * self._channels + loc.channel
        return page * self._row_bytes + loc.column

    @property
    def row_bytes(self) -> int:
        return self._row_bytes
