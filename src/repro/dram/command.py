"""DRAM command vocabulary shared by the controller and all schedulers."""

from __future__ import annotations

import enum


class CommandKind(enum.IntEnum):
    """The five DDR3 commands the controller can issue."""

    ACTIVATE = 0
    PRECHARGE = 1
    READ = 2
    WRITE = 3
    REFRESH = 4


class CandidateCommand:
    """A command that could legally issue this DRAM cycle.

    The controller derives at most one candidate per queued transaction (the
    next command that transaction needs) plus precharge candidates for row
    conflicts, and hands the ready ones to the scheduler, which picks one.

    Attributes:
        kind: the command type.
        txn: the transaction this command advances (None for refresh-driven
            precharges).
        rank, bank: target bank coordinates within the channel.
        row: target row (for ACTIVATE) or open row (for PRECHARGE).
        is_cas: True for READ/WRITE — the "column" commands FR-FCFS favours.
    """

    __slots__ = (
        "kind", "txn", "rank", "bank", "row", "is_cas",
        "blocked_by_hits", "hit_is_critical", "row_idle",
    )

    def __init__(self, kind, txn, rank, bank, row,
                 blocked_by_hits=False, hit_is_critical=False, row_idle=1 << 30):
        self.kind = kind
        self.txn = txn
        self.rank = rank
        self.bank = bank
        self.row = row
        self.is_cas = kind == CommandKind.READ or kind == CommandKind.WRITE
        # Precharge-policy metadata (meaningful for PRECHARGE candidates):
        # whether the open row still has queued row hits, whether any such
        # hit is itself critical, and how long the row has been idle.
        self.blocked_by_hits = blocked_by_hits
        self.hit_is_critical = hit_is_critical
        self.row_idle = row_idle

    def __repr__(self):
        return (
            f"CandidateCommand({self.kind.name}, rank={self.rank}, "
            f"bank={self.bank}, row={self.row}, txn={self.txn!r})"
        )
