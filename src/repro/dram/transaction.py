"""Memory transactions: the unit queued at the controller.

A transaction is one cache-line read or write.  Reads carry the
processor-side criticality annotation (the few extra address-bus bits the
paper adds in Section 3.2) plus bookkeeping used by the comparison
schedulers (thread id, arrival order) and by the statistics machinery.
"""

from __future__ import annotations

from repro.dram.addressmap import DramLocation


class Transaction:
    """One DRAM read or write request.

    Attributes:
        address: physical byte address of the line.
        loc: decomposed DRAM coordinates.
        is_write: write transactions come from dirty L2 evictions.
        core: issuing core id (-1 for writes with no attributable core).
        pc: static PC of the triggering load (reads only; 0 otherwise).
        critical: processor-side criticality flag.
        magnitude: ranked criticality magnitude (0 when binary/uncritical).
        arrival: DRAM-cycle arrival time at the controller.
        seq: global arrival sequence number (the age comparator input).
        callback: invoked as ``callback(dram_cycle_done)`` when the data
            burst completes (reads) or the write is issued to the bank.
        row_hit: filled at CAS time for statistics.
    """

    __slots__ = (
        "address",
        "loc",
        "is_write",
        "core",
        "pc",
        "critical",
        "magnitude",
        "arrival",
        "seq",
        "callback",
        "row_hit",
        "is_prefetch",
        "marked",
    )

    def __init__(
        self,
        address: int,
        loc: DramLocation,
        is_write: bool = False,
        core: int = -1,
        pc: int = 0,
        critical: bool = False,
        magnitude: int = 0,
        callback=None,
        is_prefetch: bool = False,
    ):
        self.address = address
        self.loc = loc
        self.is_write = is_write
        self.core = core
        self.pc = pc
        self.critical = critical
        self.magnitude = magnitude
        self.arrival = 0
        self.seq = 0
        self.callback = callback
        self.row_hit = False
        self.is_prefetch = is_prefetch
        # PAR-BS batch mark; unused by other schedulers.
        self.marked = False

    def __repr__(self):
        kind = "W" if self.is_write else "R"
        crit = f" crit={self.magnitude}" if self.critical else ""
        return f"Txn[{kind} core={self.core} {self.loc}{crit} seq={self.seq}]"
