"""Memory controller: per-channel transaction queues + command arbitration.

Each channel has its own controller (the paper's quad-channel system has
four independent arbiters).  Every DRAM command-clock cycle, a controller:

1. services any due refresh (precharging open banks, then issuing REF);
2. derives the set of *legally issuable* candidate commands from its
   read queue (and write queue, when draining);
3. asks its scheduler to pick one, and executes it.

Reads complete when their data burst finishes; the completion callback is
fired with the DRAM cycle of burst end, which :class:`MemorySystem`
translates into a CPU-cycle event for the cache hierarchy.

Write handling: writes (dirty L2 evictions) sit in a separate write queue
and are drained in batches when the queue passes a high watermark or the
read queue is empty — standard practice that keeps the read path (the
paper's subject) clean.
"""

from __future__ import annotations

from repro.analysis.protocol import maybe_attach
from repro.config import DramConfig
from repro.dram.addressmap import AddressMap
from repro.dram.bank import Bank
from repro.dram.channel import ChannelTiming
from repro.dram.command import CandidateCommand, CommandKind
from repro.dram.transaction import Transaction
from repro.telemetry.registry import LatencyHistogram


class ChannelStats:
    """Per-channel counters the experiments aggregate."""

    __slots__ = (
        "reads_done",
        "writes_done",
        "activates",
        "precharges",
        "refreshes",
        "row_hit_reads",
        "busy_cycles",
        "queue_occupancy_sum",
        "queue_samples",
        "critical_queue_cycles",
        "multi_critical_queue_cycles",
        "starvation_promotions",
        "crit_wait",
        "noncrit_wait",
        "write_wait_sum",
    )

    def __init__(self):
        self.reads_done = 0
        self.writes_done = 0
        self.activates = 0
        self.precharges = 0
        self.refreshes = 0
        self.row_hit_reads = 0
        self.busy_cycles = 0
        self.queue_occupancy_sum = 0
        self.queue_samples = 0
        self.critical_queue_cycles = 0
        self.multi_critical_queue_cycles = 0
        self.starvation_promotions = 0
        # Queueing delay (arrival -> CAS issue), in DRAM cycles, split by
        # criticality flag; the component scheduling redistributes.
        self.crit_wait = LatencyHistogram()
        self.noncrit_wait = LatencyHistogram()
        self.write_wait_sum = 0


class ChannelController:
    """One DRAM channel: banks, timing, queues, and a pluggable scheduler."""

    def __init__(self, channel_id: int, config: DramConfig, scheduler):
        self.channel_id = channel_id
        self.config = config
        t = config.timings
        self.timings = t
        self.scheduler = scheduler
        self.banks = [
            [Bank(r, b, t) for b in range(config.banks_per_rank)]
            for r in range(config.ranks_per_channel)
        ]
        self.timing = ChannelTiming(t, config.ranks_per_channel)
        self.read_queue: list[Transaction] = []
        self.write_queue: list[Transaction] = []
        self.queue_capacity = config.transaction_queue_entries
        self.write_capacity = config.transaction_queue_entries
        # Write-drain hysteresis.
        self._drain_high = max(4, config.transaction_queue_entries // 2)
        self._drain_low = max(1, config.transaction_queue_entries // 8)
        self._draining = False
        # Stagger per-rank refresh deadlines so REFs don't collide.
        interval = t.refresh_interval_cycles
        stride = max(1, interval // max(1, config.ranks_per_channel))
        self._next_refresh = [
            interval + r * stride for r in range(config.ranks_per_channel)
        ]
        self._refresh_due = [False] * config.ranks_per_channel
        self.stats = ChannelStats()
        self._seq = 0
        # Shadow protocol oracle (attached only under REPRO_SANITIZE=1):
        # observes every command this controller issues and re-checks the
        # JEDEC constraints from its own bookkeeping.
        self.sanitizer = maybe_attach(self)
        # Event-trace recorder (attached by System under REPRO_TRACE=1);
        # timestamps are emitted in CPU cycles so all lanes share an axis.
        self.trace = None
        self._cpu_ratio = config.cpu_ratio

    # -- queue interface ----------------------------------------------------

    def can_accept(self, is_write: bool) -> bool:
        queue = self.write_queue if is_write else self.read_queue
        cap = self.write_capacity if is_write else self.queue_capacity
        return len(queue) < cap

    def enqueue(self, txn: Transaction, now: int) -> None:
        """Add a transaction; caller must have checked :meth:`can_accept`."""
        txn.arrival = now
        txn.seq = self._seq
        self._seq += 1
        if txn.is_write:
            self.write_queue.append(txn)
        else:
            self.read_queue.append(txn)
        self.scheduler.on_enqueue(txn, now)

    def pending(self) -> int:
        return len(self.read_queue) + len(self.write_queue)

    # -- per-DRAM-cycle operation --------------------------------------------

    def step(self, now: int) -> None:
        """Issue at most one command on this channel at DRAM cycle ``now``."""
        stats = self.stats
        nreads = len(self.read_queue)
        # Sample occupancy every DRAM cycle (empty cycles included), so
        # queue_occupancy_sum / queue_samples is a true time average rather
        # than an average over non-empty cycles only.
        stats.queue_occupancy_sum += nreads
        stats.queue_samples += 1
        if nreads:
            ncrit = 0
            for txn in self.read_queue:
                if txn.critical:
                    ncrit += 1
                    if ncrit > 1:
                        break
            if ncrit >= 1:
                stats.critical_queue_cycles += 1
            if ncrit > 1:
                stats.multi_critical_queue_cycles += 1

        if self._service_refresh(now):
            return
        if not self.read_queue and not self.write_queue:
            return

        candidates = self._build_candidates(now)
        if not candidates:
            return
        chosen = self.scheduler.select(candidates, self, now)
        if self.scheduler._m_decisions is not None:
            self.scheduler.note_decision(chosen)
        if chosen is not None:
            self._execute(chosen, now)
            self.scheduler.on_command(chosen, now)

    def next_wake(self, dram_now: int) -> int:
        """Earliest DRAM cycle > ``dram_now`` at which stepping matters.

        With transactions queued (or a refresh sequence in flight) the
        channel must be stepped on every DRAM clock edge; otherwise nothing
        happens until the earliest per-rank refresh deadline.
        """
        if self.read_queue or self.write_queue or any(self._refresh_due):
            return dram_now + 1
        return max(min(self._next_refresh), dram_now + 1)

    def next_wake_window(self, dram_now: int) -> int:
        """Timing-aware :meth:`next_wake` for the batched engine.

        With only reads queued, no write drain in progress, and no refresh
        due, no command can legally issue before the earliest *bank-ready*
        cycle among the queued reads: a row hit waits for ``cas_ready``, a
        closed bank for ``act_ready``, a row conflict for ``pre_ready``.
        Rank-level constraints (``cas_issue_ok``/``can_activate``/tFAW) can
        only delay issue further, so ignoring them keeps the bound a sound
        lower one — waking early merely replays an idle cycle.  The bound
        is capped at the earliest per-rank refresh deadline.  Every skipped
        cycle provably generates zero candidates and leaves det_state
        untouched; the per-cycle occupancy statistics it owes are settled
        by :meth:`account_window`.

        Write drain and refresh fall back to per-edge stepping: the drain
        hysteresis flips ``_draining`` (det_state) cycle by cycle, and a
        refresh sequence issues multi-cycle command trains.
        """
        if self.write_queue or self._draining or any(self._refresh_due):
            return self.next_wake(dram_now)
        reads = self.read_queue
        if not reads:
            return max(min(self._next_refresh), dram_now + 1)
        banks = self.banks
        best = min(self._next_refresh)
        for txn in reads:
            loc = txn.loc
            bank = banks[loc.rank][loc.bank]
            open_row = bank.open_row
            if open_row == loc.row:
                ready = bank.cas_ready
            elif open_row is None:
                ready = bank.act_ready
            else:
                ready = bank.pre_ready
            if ready < best:
                best = ready
                if best <= dram_now + 1:
                    return dram_now + 1
        return best if best > dram_now + 1 else dram_now + 1

    def account_idle(self, cycles: int) -> None:
        """Record ``cycles`` empty-queue DRAM cycles skipped by fast-forward."""
        self.stats.queue_samples += cycles

    def account_window(self, cycles: int) -> None:
        """Settle ``cycles`` skipped DRAM cycles whose queues were constant.

        The batched engine's windows (:meth:`next_wake_window`) leave a
        channel unstepped while transactions are queued but no command can
        legally issue.  The per-cycle statistics those cycles owe —
        occupancy and criticality-presence counters — are settled here in
        bulk against the constant queue, exactly as :meth:`step` would
        have accumulated them one cycle at a time.
        """
        if cycles <= 0:
            return
        stats = self.stats
        reads = self.read_queue
        nreads = len(reads)
        stats.queue_occupancy_sum += nreads * cycles
        stats.queue_samples += cycles
        if nreads:
            ncrit = 0
            for txn in reads:
                if txn.critical:
                    ncrit += 1
                    if ncrit > 1:
                        break
            if ncrit >= 1:
                stats.critical_queue_cycles += cycles
            if ncrit > 1:
                stats.multi_critical_queue_cycles += cycles

    def det_state(self) -> list[int]:
        """Architectural state words for the determinism hash-chain.

        Everything here is constant while the channel is idle (queues and
        bank state only change when commands execute), so fast-forwarded
        and cycle-by-cycle runs sample identical values — statistics
        counters are deliberately excluded.
        """
        values = [len(self.read_queue), len(self.write_queue), self._seq,
                  1 if self._draining else 0]
        for txn in self.read_queue:
            values += (txn.seq, txn.address, 1 if txn.critical else 0)
        for txn in self.write_queue:
            values += (txn.seq, txn.address)
        for rank_banks in self.banks:
            for bank in rank_banks:
                values.append(-1 if bank.open_row is None else bank.open_row)
                values.append(bank.opened_by)
                values += (bank.act_ready, bank.cas_ready, bank.pre_ready,
                           bank.last_use)
        values += self.timing.det_state()
        values += self.scheduler.det_state()
        values += self._next_refresh
        values.append(sum(1 << i for i, due in enumerate(self._refresh_due) if due))
        return values

    # -- refresh ------------------------------------------------------------

    def _service_refresh(self, now: int) -> bool:
        """Handle due refreshes; returns True if this cycle's slot was used."""
        t = self.timings
        tRFC = t.tRFC
        refresh_due = self._refresh_due
        next_refresh = self._next_refresh
        stats = self.stats
        sanitizer = self.sanitizer
        trace = self.trace
        ratio = self._cpu_ratio
        channel_id = self.channel_id
        for rank in range(self.config.ranks_per_channel):
            if not refresh_due[rank]:
                if now >= next_refresh[rank]:
                    refresh_due[rank] = True
                else:
                    continue
            # Precharge any open bank first (one command per cycle).
            banks = self.banks[rank]
            all_closed = True
            for bank in banks:
                if bank.is_open():
                    all_closed = False
                    if now >= bank.pre_ready:
                        bank.do_precharge(now)
                        stats.precharges += 1
                        if sanitizer is not None:
                            sanitizer.on_precharge(rank, bank.index, now)
                        if trace is not None:
                            trace.command(
                                now * ratio, channel_id, rank, bank.index,
                                "PRE", -1, t.tRP * ratio,
                            )
                        return True
            if not all_closed:
                continue
            if all(now >= bank.act_ready for bank in banks):
                done = now + tRFC
                for bank in banks:
                    bank.block_until(done)
                next_refresh[rank] += t.refresh_interval_cycles
                refresh_due[rank] = False
                stats.refreshes += 1
                if sanitizer is not None:
                    sanitizer.on_refresh(rank, now)
                if trace is not None:
                    trace.command(
                        now * ratio, channel_id, rank, 0,
                        "REF", -1, tRFC * ratio,
                    )
                return True
        return False

    # -- candidate generation -------------------------------------------------

    def _drain_writes_now(self) -> bool:
        if self.config.unified_queue:
            return bool(self.write_queue)
        if self._draining:
            if len(self.write_queue) <= self._drain_low:
                self._draining = False
        elif len(self.write_queue) >= self._drain_high or (
            not self.read_queue and self.write_queue
        ):
            self._draining = True
        return self._draining

    def _build_candidates(self, now: int):
        """One legally issuable command per transaction needing service."""
        work = self.read_queue
        if self._drain_writes_now():
            work = self.read_queue + self.write_queue

        # Banks whose open row still has pending hits: precharging them is
        # a *policy* decision, so candidates carry the metadata and the
        # scheduler decides (FR-FCFS never closes such a row; criticality
        # schedulers may, for a sufficiently urgent conflict).
        banks = self.banks
        protected = set()
        protected_critical = set()
        for txn in work:
            loc = txn.loc
            bank = banks[loc.rank][loc.bank]
            if bank.open_row == loc.row:
                key = (loc.rank, loc.bank)
                protected.add(key)
                if txn.critical:
                    protected_critical.add(key)

        timing = self.timing
        activate = CommandKind.ACTIVATE
        precharge = CommandKind.PRECHARGE
        candidates = []
        seen_bank_cmd = set()
        for txn in work:
            loc = txn.loc
            rank, bindex, row = loc.rank, loc.bank, loc.row
            if self._refresh_due[rank]:
                continue
            bank = banks[rank][bindex]
            open_row = bank.open_row
            if open_row == row:
                if now >= bank.cas_ready and timing.cas_issue_ok(
                    rank, txn.is_write, now
                ):
                    kind = CommandKind.WRITE if txn.is_write else CommandKind.READ
                    candidates.append(CandidateCommand(kind, txn, rank, bindex, row))
            elif open_row is None:
                key = (activate, rank, bindex)
                if key in seen_bank_cmd:
                    continue
                if now >= bank.act_ready and timing.can_activate(rank, now):
                    seen_bank_cmd.add(key)
                    candidates.append(
                        CandidateCommand(activate, txn, rank, bindex, row)
                    )
            else:
                key = (precharge, rank, bindex)
                if key in seen_bank_cmd:
                    continue
                if now >= bank.pre_ready:
                    seen_bank_cmd.add(key)
                    bkey = (rank, bindex)
                    candidates.append(
                        CandidateCommand(
                            precharge, txn, rank, bindex, open_row,
                            blocked_by_hits=bkey in protected,
                            hit_is_critical=bkey in protected_critical,
                            row_idle=now - bank.last_use,
                        )
                    )
        return candidates

    # -- command execution ------------------------------------------------------

    def _execute(self, cmd: CandidateCommand, now: int) -> None:
        bank = self.banks[cmd.rank][cmd.bank]
        stats = self.stats
        sanitizer = self.sanitizer
        trace = self.trace
        stats.busy_cycles += 1
        kind = cmd.kind
        if kind == CommandKind.ACTIVATE:
            if sanitizer is not None:
                sanitizer.on_activate(cmd.rank, cmd.bank, cmd.row, now)
            bank.do_activate(cmd.row, now, opened_by=cmd.txn.seq)
            self.timing.did_activate(cmd.rank, now)
            stats.activates += 1
            if trace is not None:
                ratio = self._cpu_ratio
                trace.command(now * ratio, self.channel_id, cmd.rank, cmd.bank,
                              "ACT", cmd.row, self.timings.tRCD * ratio)
        elif kind == CommandKind.PRECHARGE:
            if sanitizer is not None:
                sanitizer.on_precharge(cmd.rank, cmd.bank, now)
            bank.do_precharge(now)
            stats.precharges += 1
            if trace is not None:
                ratio = self._cpu_ratio
                trace.command(now * ratio, self.channel_id, cmd.rank, cmd.bank,
                              "PRE", cmd.row, self.timings.tRP * ratio)
        elif kind == CommandKind.READ:
            txn = cmd.txn
            # A read is a row-buffer hit if it reused a row someone else's
            # ACTIVATE (or a previous access) opened.
            txn.row_hit = bank.opened_by != txn.seq
            bank.do_read(now)
            data_end = self.timing.did_cas(cmd.rank, False, now)
            if sanitizer is not None:
                sanitizer.on_cas(
                    cmd.rank, cmd.bank, cmd.row, now, False, data_end, txn.arrival
                )
            self.read_queue.remove(txn)
            stats.reads_done += 1
            if txn.row_hit:
                stats.row_hit_reads += 1
            wait = now - txn.arrival
            if txn.critical:
                stats.crit_wait.record(wait)
            else:
                stats.noncrit_wait.record(wait)
            if trace is not None:
                ratio = self._cpu_ratio
                trace.command(now * ratio, self.channel_id, cmd.rank, cmd.bank,
                              "READ", cmd.row, (data_end - now) * ratio)
            if txn.callback is not None:
                txn.callback(data_end)
        elif kind == CommandKind.WRITE:
            txn = cmd.txn
            bank.do_write(now)
            data_end = self.timing.did_cas(cmd.rank, True, now)
            if sanitizer is not None:
                sanitizer.on_cas(
                    cmd.rank, cmd.bank, cmd.row, now, True, data_end, txn.arrival
                )
            self.write_queue.remove(txn)
            stats.writes_done += 1
            stats.write_wait_sum += now - txn.arrival
            if trace is not None:
                ratio = self._cpu_ratio
                trace.command(now * ratio, self.channel_id, cmd.rank, cmd.bank,
                              "WRITE", cmd.row, (data_end - now) * ratio)
            if txn.callback is not None:
                txn.callback(data_end)
        else:
            raise ValueError(f"scheduler returned unexpected command {cmd!r}")

    # -- telemetry -----------------------------------------------------------

    def register_metrics(self, registry, prefix: str) -> None:
        """Register this channel's instruments under ``prefix``.

        Sampled gauges are all command-driven (they change only when a
        DRAM command executes, which never happens inside a quiescent
        fast-forward window), so the interval sampler reads identical
        values in skip and no-skip runs.  The per-cycle occupancy
        accumulators (``queue_occupancy_sum``/``queue_samples``) are
        settled lazily by :meth:`account_idle` and are deliberately NOT
        sampled.
        """
        stats = self.stats
        registry.histogram(f"{prefix}.crit_wait", stats.crit_wait)
        registry.histogram(f"{prefix}.noncrit_wait", stats.noncrit_wait)
        registry.gauge(f"{prefix}.read_queue",
                       lambda: len(self.read_queue), sampled=True)
        registry.gauge(f"{prefix}.write_queue",
                       lambda: len(self.write_queue), sampled=True)
        registry.gauge(f"{prefix}.reads_done",
                       lambda: stats.reads_done, sampled=True)
        registry.gauge(f"{prefix}.row_hit_reads",
                       lambda: stats.row_hit_reads, sampled=True)
        registry.gauge(f"{prefix}.writes_done", lambda: stats.writes_done)
        registry.gauge(f"{prefix}.activates", lambda: stats.activates)
        registry.gauge(f"{prefix}.precharges", lambda: stats.precharges)
        registry.gauge(f"{prefix}.refreshes", lambda: stats.refreshes)
        self.scheduler.register_metrics(registry, f"{prefix}.sched")


class MemorySystem:
    """All channels plus the CPU-clock/DRAM-clock boundary.

    The CPU domain calls :meth:`step` once per CPU cycle; the controllers
    advance on DRAM command-clock boundaries (every
    ``cpu_cycles_per_dram_cycle`` CPU cycles).  Read completions are returned
    as ``(txn, cpu_cycle)`` pairs for the cache hierarchy to consume.
    """

    def __init__(self, config: DramConfig, scheduler_factory):
        self.config = config
        self.address_map = AddressMap(config)
        self.channels = [
            ChannelController(c, config, scheduler_factory(c))
            for c in range(config.channels)
        ]
        self._ratio = config.cpu_ratio
        # Wake-driven clocking (the event engine, see repro.sim.system):
        # per channel, the DRAM cycle at which it must next be stepped and
        # the DRAM cycle *after* the last one whose idle occupancy sample
        # has been accounted.  ``try_enqueue`` keeps the wake current in
        # every engine, so the bookkeeping never needs re-wiring when the
        # loop implementation is switched mid-experiment.
        self._chan_wake = [0] * config.channels
        self._chan_settled = [0] * config.channels
        # Batched-engine mode flag (set by System._run_batched before any
        # stepping): gaps between channel wakes may then span cycles with
        # *queued* work, so lazily settled samples must go through
        # account_window (occupancy + criticality presence with the
        # constant queue) instead of account_idle, and queue mutations
        # must pre-settle the open gap first (try_enqueue / presettle).
        self._batched = False
        # Host-side perf counters (REPRO_PERF=1): set by System when
        # enabled, else None.  Host observability only — never part of
        # det_state or any simulated-machine statistic.
        self._perf = None

    # -- request path -----------------------------------------------------------

    def make_transaction(self, address: int, **kwargs) -> Transaction:
        return Transaction(address, self.address_map.locate(address), **kwargs)

    def try_enqueue(self, txn: Transaction, cpu_now: int) -> bool:
        """Queue ``txn`` if its channel has room; False => caller retries."""
        ch = txn.loc.channel
        channel = self.channels[ch]
        if not channel.can_accept(txn.is_write):
            return False
        # Wake registration: the channel becomes serviceable at the first
        # DRAM edge at or after ``cpu_now``.  Enqueues only happen in the
        # event phase — before :meth:`step_event` for the same cycle — so
        # an enqueue landing exactly on an edge is serviced at that edge,
        # matching the per-cycle loops.
        wake = (cpu_now + self._ratio - 1) // self._ratio
        if self._batched:
            # Settle the open gap with the queue as it was: every edge
            # before ``wake`` sampled the pre-enqueue occupancy.
            gap = wake - self._chan_settled[ch]
            if gap > 0:
                channel.account_window(gap)
                self._chan_settled[ch] = wake
        channel.enqueue(txn, cpu_now // self._ratio)
        if wake < self._chan_wake[ch]:
            self._chan_wake[ch] = wake
        return True

    def presettle(self, txn: Transaction, cpu_now: int, event_phase: bool) -> None:
        """Settle a channel's open gap before ``txn``'s flags mutate.

        The batched engine settles skipped DRAM cycles lazily with the
        queue state current *at settlement time*, so a criticality bump on
        a queued transaction would otherwise be visible retroactively in
        the lazily-settled criticality counters.  Settling the bumped
        transaction's channel first — up to the last DRAM edge that
        sampled the old flags — keeps them bit-identical to the per-cycle
        loops.  The boundary depends on the caller's phase: a DRAM edge
        shares its CPU cycle with event-phase work that *precedes* it (the
        edge samples the new flags) but with core-phase work that
        *follows* it (the edge already sampled the old flags).
        """
        if not self._batched:
            return
        ratio = self._ratio
        if event_phase:
            boundary = -(-cpu_now // ratio)
        else:
            boundary = cpu_now // ratio + 1
        ch = txn.loc.channel
        gap = boundary - self._chan_settled[ch]
        if gap > 0:
            self.channels[ch].account_window(gap)
            self._chan_settled[ch] = boundary

    # -- clocking ----------------------------------------------------------------

    def step(self, cpu_now: int) -> None:
        """Advance controllers if ``cpu_now`` is a DRAM clock edge.

        Completion delivery happens through each transaction's callback,
        which receives the DRAM cycle at which its data burst ends.
        """
        if cpu_now % self._ratio:
            return
        dram_now = cpu_now // self._ratio
        for channel in self.channels:
            channel.step(dram_now)

    def dram_to_cpu(self, dram_cycle: int) -> int:
        return dram_cycle * self._ratio

    def finish_sanitize(self, cpu_now: int) -> None:
        """End-of-run protocol checks (refresh cadence) on every channel."""
        dram_now = cpu_now // self._ratio
        for channel in self.channels:
            if channel.sanitizer is not None:
                channel.sanitizer.finish(dram_now)

    def pending(self) -> int:
        return sum(channel.pending() for channel in self.channels)

    # -- cycle skipping ----------------------------------------------------------

    def next_wake_cpu(self, cpu_now: int) -> int:
        """Earliest CPU cycle > ``cpu_now`` at which a controller must step."""
        ratio = self._ratio
        dram_now = cpu_now // ratio
        next_edge = (dram_now + 1) * ratio
        best = None
        for channel in self.channels:
            wake = channel.next_wake(dram_now) * ratio
            if wake < next_edge:
                wake = next_edge
            if best is None or wake < best:
                best = wake
        return best if best is not None else next_edge

    def fast_forward(self, start_cpu: int, end_cpu: int) -> None:
        """Account for the DRAM clock edges inside ``[start_cpu, end_cpu)``.

        Fast-forward windows never contain an edge with queued work (see
        :meth:`next_wake_cpu`), so the only bookkeeping the skipped edges
        would have done is sampling an occupancy of zero.
        """
        ratio = self._ratio
        edges = (end_cpu - 1) // ratio - (start_cpu - 1) // ratio
        if edges <= 0:
            return
        for channel in self.channels:
            channel.account_idle(edges)

    # -- wake-driven clocking (event engine) -------------------------------------

    def step_event(self, cpu_now: int) -> None:
        """Like :meth:`step`, but only steps channels that are *due*.

        A channel is due when its registered wake (``_chan_wake``, kept
        current by :meth:`try_enqueue` and by ``next_wake`` after every
        step) has arrived.  A non-due channel has empty queues, no refresh
        in flight, and every per-rank refresh deadline in the future, so
        the step it skips would have done exactly one thing: sample an
        occupancy of zero (``queue_samples += 1``).  That sample is
        settled lazily — :meth:`ChannelController.account_idle` on the
        next step or at :meth:`settle_idle` — which is bit-identical
        because occupancy accumulators are statistics outside the
        determinism chain and deliberately never sampled by telemetry
        (see :meth:`ChannelController.register_metrics`).
        """
        if cpu_now % self._ratio:
            return
        dram_now = cpu_now // self._ratio
        wakes = self._chan_wake
        settled = self._chan_settled
        perf = self._perf
        for i, channel in enumerate(self.channels):
            if wakes[i] > dram_now:
                continue
            gap = dram_now - settled[i]
            if gap > 0:
                channel.account_idle(gap)
            channel.step(dram_now)
            settled[i] = dram_now + 1
            wakes[i] = channel.next_wake(dram_now)
            if perf is not None:
                perf.chan_wake_republishes += 1

    def step_window(self, cpu_now: int) -> None:
        """Batched-engine analog of :meth:`step_event`.

        Identical structure, but wakes are timing-aware
        (:meth:`ChannelController.next_wake_window`): a channel may sleep
        across cycles with *queued* work when no command can legally issue
        before its registered wake.  Such gaps owe per-cycle occupancy and
        criticality statistics, settled in bulk by ``account_window``
        against the queue that was constant throughout the gap (enqueues
        and criticality bumps pre-settle, see :meth:`try_enqueue` /
        :meth:`presettle`).
        """
        if cpu_now % self._ratio:
            return
        dram_now = cpu_now // self._ratio
        wakes = self._chan_wake
        settled = self._chan_settled
        perf = self._perf
        for i, channel in enumerate(self.channels):
            if wakes[i] > dram_now:
                continue
            gap = dram_now - settled[i]
            if gap > 0:
                # repro-batch: cert=ChannelController.account_window
                channel.account_window(gap)
            channel.step(dram_now)
            settled[i] = dram_now + 1
            # repro-batch: cert=ChannelController.next_wake_window
            wakes[i] = channel.next_wake_window(dram_now)
            if perf is not None:
                perf.chan_wake_republishes += 1

    def wake_cpu(self, cpu_now: int) -> int:
        """O(channels) equivalent of :meth:`next_wake_cpu` for the event
        engine: earliest CPU cycle > ``cpu_now`` at which stepping a
        channel matters, read from the registered wakes instead of
        re-deriving every channel's ``next_wake``."""
        ratio = self._ratio
        next_edge = (cpu_now // ratio + 1) * ratio
        wake = min(self._chan_wake) * ratio
        return wake if wake > next_edge else next_edge

    def settle_idle(self, cpu_end: int) -> None:
        """Account every not-yet-settled idle edge before ``cpu_end``.

        The per-cycle loops sample channel occupancy at every DRAM edge in
        ``[0, cpu_end)``; the event engine defers idle samples, so the end
        of the run (or any point statistics are read) must settle the
        tail.
        """
        edge_count = (cpu_end - 1) // self._ratio + 1 if cpu_end > 0 else 0
        settled = self._chan_settled
        batched = self._batched
        for i, channel in enumerate(self.channels):
            gap = edge_count - settled[i]
            if gap > 0:
                if batched:
                    channel.account_window(gap)
                else:
                    channel.account_idle(gap)
                settled[i] = edge_count
