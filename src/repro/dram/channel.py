"""Channel- and rank-level timing constraints.

Constraints enforced here, on top of the per-bank rules in
:mod:`repro.dram.bank`:

* tRRD  — ACTIVATE-to-ACTIVATE minimum between banks of the same rank.
* tFAW  — at most four ACTIVATEs to a rank within any rolling window.
* tCCD  — CAS-to-CAS minimum on the channel.
* tWTR  — WRITE-to-READ turnaround within a rank (from end of write data).
* tRTRS — rank-to-rank data-bus switch penalty.
* Data-bus occupancy — each burst owns the channel data bus for
  ``burst_length/2`` cycles; bursts may not overlap.
* Read-after-write / write-after-read bus ordering falls out of the data-bus
  occupancy model plus tWTR.
"""

from __future__ import annotations

from collections import deque

from repro.config import DramCycles, DramTimings


class ChannelTiming:
    """Tracks shared-channel timing state and answers "can CAS issue now?"."""

    __slots__ = (
        "_t",
        "next_cas_allowed",
        "data_bus_free",
        "last_data_rank",
        "rank_act_ready",
        "rank_read_after_write",
        "rank_act_history",
        "_tFAW",
    )

    def __init__(self, timings: DramTimings, ranks: int):
        self._t = timings
        # Earliest cycle any CAS may issue (tCCD).
        self.next_cas_allowed = 0
        # Cycle at which the data bus becomes free.
        self.data_bus_free = 0
        # Rank that last drove the data bus (for tRTRS).
        self.last_data_rank = -1
        # Per-rank earliest ACTIVATE (tRRD).
        self.rank_act_ready = [0] * ranks
        # Per-rank earliest READ after a WRITE to that rank (tWTR).
        self.rank_read_after_write = [0] * ranks
        # Per-rank issue cycles of the last four ACTIVATEs (tFAW window).
        self.rank_act_history = [deque(maxlen=4) for _ in range(ranks)]
        self._tFAW: DramCycles = timings.effective_tFAW

    # -- legality checks ---------------------------------------------------

    def can_activate(self, rank: int, now: int) -> bool:
        if now < self.rank_act_ready[rank]:
            return False
        history = self.rank_act_history[rank]
        # Four ACTIVATEs already in flight within the window: the fifth
        # must wait until the oldest ages out (rolling tFAW).
        if len(history) == 4 and now < history[0] + self._tFAW:
            return False
        return True

    def cas_issue_ok(self, rank: int, is_write: bool, now: int) -> bool:
        """True if a CAS to ``rank`` may issue at ``now``.

        The data bus is modelled as a small queue: a CAS whose natural
        data start (tCL/tWL after issue) would collide with the previous
        burst has its data pushed back to the bus-free point (plus tRTRS
        on a rank switch).  Without this, a same-rank row-hit train that
        fills every tCCD slot would lock all other ranks out of the
        candidate set indefinitely — a greedy arbiter can never "wait two
        cycles" for a rank switch.  The push-back is bounded by
        tRTRS + burst, so the idealisation is at most a couple of cycles.
        """
        if now < self.next_cas_allowed:
            return False
        if not is_write and now < self.rank_read_after_write[rank]:
            return False
        return True

    # -- inspection --------------------------------------------------------

    def det_state(self) -> list[int]:
        """Architectural state words for the determinism hash-chain.

        Every field only changes in :meth:`did_activate`/:meth:`did_cas`
        — i.e. when a command executes, which never happens inside a
        quiescent fast-forward window — so the whole vector, including
        the per-rank arrays, is window-constant.
        """
        values = [self.next_cas_allowed, self.data_bus_free, self.last_data_rank]
        values += self.rank_act_ready
        values += self.rank_read_after_write
        for history in self.rank_act_history:
            values.append(len(history))
            values += history
        return values

    # -- command effects ---------------------------------------------------

    def did_activate(self, rank: int, now: int) -> None:
        self.rank_act_ready[rank] = max(self.rank_act_ready[rank], now + self._t.tRRD)
        self.rank_act_history[rank].append(now)

    def did_cas(self, rank: int, is_write: bool, now: int) -> int:
        """Record a CAS issue; returns the cycle the data burst completes."""
        t = self._t
        self.next_cas_allowed = max(self.next_cas_allowed, now + t.tCCD)
        data_start = now + (t.tWL if is_write else t.tCL)
        bus_free = self.data_bus_free
        if self.last_data_rank not in (-1, rank):
            bus_free += t.tRTRS
        if data_start < bus_free:
            data_start = bus_free
        data_end = data_start + t.burst_cycles
        self.data_bus_free = data_end
        self.last_data_rank = rank
        if is_write:
            # Reads to this rank must wait tWTR after the write data ends.
            self.rank_read_after_write[rank] = max(
                self.rank_read_after_write[rank], data_end + t.tWTR
            )
        return data_end
