"""Fleet registry: index many streaming runs under one root directory.

``repro watch DIR`` monitors *one* run's stream.  A sweep
(``experiment all``, a bench suite, a multi-seed study) launches many
runs at once, and finding their stream directories by hand defeats the
point of live observability.  Setting ``REPRO_FLEET_DIR=<root>`` makes
every run index itself:

* a run that begins streaming (explicit ``REPRO_STREAM_DIR`` or not)
  registers its stream directory in ``<root>/.registry/<run_id>.json``;
* runs with no explicit stream directory are *allocated* one under the
  root (``<root>/<label>-<pid>/``), so ``REPRO_FLEET_DIR`` alone is
  enough to make a whole sweep observable;
* ``<root>/INDEX.json`` is a materialized view over the entry files,
  rebuilt after every registration with the same atomic
  write-fsync-replace discipline as the stream manifests.

Crash safety mirrors the stream layer: entry files are written
atomically, the index is a pure derivation of them (a torn or
half-registered run can at worst be *absent* from one index rebuild,
never corrupt it), and a SIGKILL'd run leaves its entry plus a
``running`` manifest — the fleet dashboard shows it as such instead of
losing it.  Registry state is host-side bookkeeping only: it never
touches simulated state, the determinism chain, or the engine cache
key (``REPRO_FLEET_DIR`` is deliberately absent from
``config_fingerprint``, like ``REPRO_STREAM_DIR``).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.telemetry import stream as stream_mod
from repro.util import atomicio, hostclock

INDEX_NAME = "INDEX.json"
REGISTRY_DIRNAME = ".registry"

#: Statuses a fleet run can be in.  The first four come straight from
#: the run's stream manifest; the rest are registry-side degradations.
STATUSES = (
    "running", "complete", "failed", "cache-replay",
    "starting",  # registered, but no manifest written yet
    "missing",   # registered, but the stream directory is gone
    "corrupt",   # manifest exists but does not parse
)


def fleet_root() -> str | None:
    """Fleet root from ``REPRO_FLEET_DIR`` (None = disabled)."""
    raw = os.environ.get("REPRO_FLEET_DIR", "")
    return raw or None


def enabled() -> bool:
    return fleet_root() is not None


def is_fleet_root(directory: str | os.PathLike) -> bool:
    """True when ``directory`` looks like a registry root, not a run."""
    directory = Path(directory)
    return (
        (directory / REGISTRY_DIRNAME).is_dir()
        or (directory / INDEX_NAME).is_file()
    )


def _slug(text: str) -> str:
    """Filesystem-safe run-directory stem from a run label."""
    cleaned = [
        ch if ch.isalnum() or ch in "-_." else "-" for ch in text.strip()
    ]
    slug = "".join(cleaned).strip("-.")
    return slug or "run"


class RunRegistry:
    """Reader/writer for one fleet root's run index.

    Writers only ever (1) create their own run directory, (2) atomically
    replace their own entry file, and (3) rebuild the shared index from
    whatever entries exist — so concurrent registrations from a worker
    pool never clobber each other, and the index is always a parseable
    snapshot (possibly one registration behind).
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.registry_dir = self.root / REGISTRY_DIRNAME

    # -- writer side --------------------------------------------------------

    def allocate(self, label: str | None = None) -> Path:
        """Create and return a fresh run directory under the root.

        Uniqueness across concurrent processes comes from the exclusive
        ``mkdir``: the first process to claim a name wins, losers retry
        with a counter suffix.
        """
        stem = f"{_slug(label or 'run')}-{os.getpid()}"
        self.root.mkdir(parents=True, exist_ok=True)
        attempt = 0
        while True:
            name = stem if attempt == 0 else f"{stem}-{attempt}"
            path = self.root / name
            try:
                path.mkdir(parents=False, exist_ok=False)
            except FileExistsError:
                attempt += 1
                continue
            return path

    def run_id_for(self, directory: str | os.PathLike) -> str:
        """Stable registry id for a stream directory.

        Directories under the root use their name; outside directories
        (an explicit ``REPRO_STREAM_DIR`` elsewhere) get a path-hash
        suffix so two same-named runs cannot collide.
        """
        directory = Path(directory)
        resolved = directory.resolve()
        if resolved.parent == self.root.resolve():
            return resolved.name
        digest = hashlib.sha256(str(resolved).encode()).hexdigest()[:8]
        return f"{_slug(resolved.name)}-{digest}"

    def register(
        self, directory: str | os.PathLike, label: str | None = None
    ) -> str:
        """Record a run's stream directory; returns its registry id."""
        directory = Path(directory)
        run_id = self.run_id_for(directory)
        entry = {
            "version": 1,
            "run_id": run_id,
            "dir": str(directory.resolve()),
            "label": label,
            "pid": os.getpid(),
            "registered_unix": hostclock.walltime(),
        }
        self.registry_dir.mkdir(parents=True, exist_ok=True)
        atomicio.write_json(self.registry_dir / f"{run_id}.json", entry)
        self.rebuild_index()
        return run_id

    def rebuild_index(self) -> None:
        """Rematerialize ``INDEX.json`` from the entry files (atomic).

        Concurrent registrations each rebuild from whatever entries
        exist at that instant; the atomic replace means a reader always
        parses a complete snapshot, at worst one registration behind.
        """
        index = {
            "version": 1,
            "root": str(self.root.resolve()),
            "runs": self.entries(),
        }
        atomicio.write_json(self.root / INDEX_NAME, index)

    # -- reader side --------------------------------------------------------

    def entries(self) -> list[dict]:
        """Registered runs, oldest first.  The entry files are the truth
        (``INDEX.json`` is only a convenience view); unreadable entries
        are skipped, never fatal."""
        out = []
        if not self.registry_dir.is_dir():
            return out
        for path in sorted(self.registry_dir.glob("*.json")):
            try:
                entry = json.loads(path.read_text())
            # a concurrent writer's not-yet-replaced tmp or a torn disk
            # must degrade to "entry missing", not break every reader
            # repro-lint: disable=EXC002 tolerant registry read
            except (OSError, ValueError):
                continue
            if isinstance(entry, dict) and entry.get("run_id"):
                out.append(entry)
        out.sort(key=lambda e: (e.get("registered_unix", 0.0), e["run_id"]))
        return out

    def runs(self) -> list[dict]:
        """Entries joined with each run's *live* stream-manifest state.

        Every returned dict has ``run_id``, ``dir``, ``label``, and
        ``status`` (one of :data:`STATUSES`); runs with a readable
        manifest also carry ``manifest`` for drill-down rendering.
        """
        out = []
        for entry in self.entries():
            info = dict(entry)
            directory = Path(entry.get("dir", ""))
            manifest = None
            if not directory.is_dir():
                info["status"] = "missing"
            else:
                try:
                    manifest = stream_mod.read_manifest(
                        directory, missing_ok=True
                    )
                except stream_mod.StreamError:
                    info["status"] = "corrupt"
                else:
                    if manifest is None:
                        info["status"] = "starting"
                    else:
                        info["status"] = manifest.get("status", "?")
                        info["label"] = (
                            manifest.get("label") or info.get("label")
                        )
            info["manifest"] = manifest
            out.append(info)
        return out

    def find(self, key: str) -> dict | None:
        """Look a run up by registry id (exact) or label (exact)."""
        entries = self.entries()
        for entry in entries:
            if entry.get("run_id") == key:
                return entry
        for entry in entries:
            if entry.get("label") == key:
                return entry
        return None
