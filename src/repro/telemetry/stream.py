"""Streaming trace/metrics writer: spill telemetry to disk *during* a run.

The in-memory trace ring (:mod:`repro.telemetry.trace`) drops its oldest
events once ``REPRO_TRACE_CAP`` is exceeded, and the interval sampler's
series only reach the user when the run returns.  For long-horizon runs
(the paper's Table-4 mixes run hundreds of millions of cycles) that
means silent event loss and zero mid-run visibility.  This module adds
a buffered, skip-aware **streaming writer**:

* ``REPRO_STREAM_DIR=<dir>`` enables it; every trace event and every
  interval sample is appended to JSONL *segment* files in that directory
  as it is recorded, so a run of unbounded length loses nothing even
  when the ring wraps.
* Segments are sealed — flushed, ``fsync``'d, and recorded in an
  atomically-replaced ``MANIFEST.json`` — either when they reach
  ``REPRO_STREAM_SEGMENT`` records or at periodic flush points folded on
  the **virtual cycle axis** (``REPRO_STREAM_FLUSH_EVERY`` CPU cycles),
  exactly like the determinism hash-chain and the interval sampler.
  Both triggers are pure functions of the (mode-invariant) record stream
  and the virtual clock, so the streamed bytes are bit-identical across
  skip / no-skip / fresh-subprocess runs.
* A crash (or ``SIGKILL``) can tear at most the *active* segment — the
  one file per stream not yet listed in the manifest.  Everything the
  manifest names parses clean; readers either refuse the torn tail with
  a clear error (the default for exports) or salvage the complete lines
  (``--allow-torn``, and the tolerant tailing used by ``repro watch``).

Streamed event lines are byte-identical to
:func:`repro.telemetry.trace.to_jsonl` output, so the post-run ring is
always a suffix of the streamed stream (the differential oracle in
``tests/test_stream_differential.py`` pins this).  Sample lines carry
``{"cycle": C, "values": [...]}`` rows aligned with the manifest's
``series`` name list, at full resolution — streaming never decimates,
only the bounded in-memory copy does.

The stream directory is deliberately **excluded** from the engine's
cache key (like the skip setting): streaming changes where telemetry
lands, never what the simulation computes.  A cache-replayed run writes
a ``status: "cache-replay"`` manifest instead of a stream so that
``repro watch`` can degrade gracefully.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.telemetry import trace as trace_mod
from repro.util import atomicio

MANIFEST_NAME = "MANIFEST.json"

_DEFAULT_SEGMENT_RECORDS = 8192
_DEFAULT_FLUSH_EVERY = 65536  # CPU cycles between virtual-axis flush points

#: Stream kinds and their segment-file prefixes.
KINDS = ("events", "samples")


class StreamError(ValueError):
    """A stream directory is missing, corrupt, or unusable."""


class TornTailError(StreamError):
    """The stream's unsealed tail is torn (writer crashed or is live)."""


# ------------------------------------------------------------- environment


def stream_dir() -> str | None:
    """Stream directory from ``REPRO_STREAM_DIR`` (None = disabled)."""
    raw = os.environ.get("REPRO_STREAM_DIR", "")
    return raw or None


def enabled() -> bool:
    return stream_dir() is not None


def _positive_int_env(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def segment_records() -> int:
    """Records per segment before an automatic seal (count-pure)."""
    return _positive_int_env("REPRO_STREAM_SEGMENT", _DEFAULT_SEGMENT_RECORDS)


def flush_every() -> int:
    """Virtual-cycle flush cadence in CPU cycles."""
    return _positive_int_env("REPRO_STREAM_FLUSH_EVERY", _DEFAULT_FLUSH_EVERY)


# ------------------------------------------------------------------ writer


class _ActiveSegment:
    """One open, not-yet-sealed segment file."""

    __slots__ = ("path", "fh", "count", "nbytes", "last_cycle")

    def __init__(self, path: Path):
        self.path = path
        self.fh = open(path, "w")
        self.count = 0
        self.nbytes = 0
        self.last_cycle = 0


class StreamWriter:
    """Incremental JSONL spiller for trace events and sampled series.

    One writer serves one simulation run.  All methods are cheap enough
    for the recording hot paths: an ``event()`` is one dict build, one
    ``json.dumps``, and one buffered ``write``; sealing (fsync + manifest
    replace) happens only at segment boundaries.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        segment_cap: int | None = None,
        flush_cycles: int | None = None,
    ):
        self.directory = Path(directory)
        self.segment_cap = (
            segment_cap if segment_cap is not None else segment_records()
        )
        self.flush_cycles = (
            flush_cycles if flush_cycles is not None else flush_every()
        )
        self.next_flush = self.flush_cycles
        self._active: dict[str, _ActiveSegment | None] = {k: None for k in KINDS}
        self._next_index = {k: 0 for k in KINDS}
        self._sealed: dict[str, list[dict]] = {k: [] for k in KINDS}
        self._totals = {k: 0 for k in KINDS}
        self.label: str | None = None
        self.series: list[str] = []
        self.status = "running"
        self._closed = False

    @classmethod
    def from_env(cls) -> "StreamWriter | None":
        directory = stream_dir()
        if directory:
            return cls(directory)
        # No explicit stream directory, but a fleet root
        # (REPRO_FLEET_DIR): allocate a run directory under it so every
        # run of a sweep streams — and registers — automatically.
        from repro.telemetry import fleet

        root = fleet.fleet_root()
        if root:
            return cls(fleet.RunRegistry(root).allocate())
        return None

    # -- lifecycle ----------------------------------------------------------

    def begin(self, label: str, series: list[str] | None = None) -> None:
        """Create/clear the stream directory and write the first manifest."""
        self.label = label
        self.series = list(series or [])
        self.directory.mkdir(parents=True, exist_ok=True)
        for stale in self._stream_files():
            stale.unlink()
        self._write_manifest()
        # Fleet registration (REPRO_FLEET_DIR): index this stream in the
        # run registry so `repro watch <root>` can find it.  Imported
        # lazily — fleet depends on this module for manifest reading.
        from repro.telemetry import fleet

        root = fleet.fleet_root()
        if root:
            fleet.RunRegistry(root).register(self.directory, label)

    def _stream_files(self):
        for kind in KINDS:
            yield from sorted(self.directory.glob(f"{kind}-*.jsonl"))
        for name in (MANIFEST_NAME, "timeline.json"):
            path = self.directory / name
            if path.exists():
                yield path

    # -- recording ----------------------------------------------------------

    def event(self, event: tuple) -> None:
        """Spill one raw trace-ring tuple (same bytes as ``to_jsonl``)."""
        record = trace_mod.event_dict(event)
        line = json.dumps(record, sort_keys=True) + "\n"
        self._append("events", line, record["ts"])

    def sample(self, cycle: int, values: list) -> None:
        """Spill one interval-sampler row (aligned with ``self.series``)."""
        line = json.dumps(
            {"cycle": cycle, "values": list(values)}, sort_keys=True
        ) + "\n"
        self._append("samples", line, cycle)

    def _append(self, kind: str, line: str, cycle: int) -> None:
        active = self._active[kind]
        if active is None:
            index = self._next_index[kind]
            self._next_index[kind] = index + 1
            active = _ActiveSegment(
                self.directory / f"{kind}-{index:06d}.jsonl"
            )
            self._active[kind] = active
        active.fh.write(line)
        active.count += 1
        active.nbytes += len(line)
        active.last_cycle = cycle
        if active.count >= self.segment_cap:
            self._seal(kind)
            self._write_manifest()

    # -- sealing ------------------------------------------------------------

    def _seal(self, kind: str) -> bool:
        """Make the active segment durable; returns True if one was sealed."""
        active = self._active[kind]
        if active is None or active.count == 0:
            return False
        active.fh.flush()
        os.fsync(active.fh.fileno())
        active.fh.close()
        self._sealed[kind].append({
            "file": active.path.name,
            "count": active.count,
            "bytes": active.nbytes,
            "last_cycle": active.last_cycle,
        })
        self._totals[kind] += active.count
        self._active[kind] = None
        return True

    def flush_upto(self, limit: int) -> None:
        """Seal at every due flush point in ``[next_flush, limit)``.

        Flush points live on the virtual cycle axis, so the skipping loop
        calls this with its fast-forward target and the records buffered
        at each due point are exactly what the naive loop would have
        buffered — segment boundaries come out bit-identical either way.
        """
        if self.next_flush >= limit:
            return
        sealed = False
        while self.next_flush < limit:
            for kind in KINDS:
                sealed = self._seal(kind) or sealed
            self.next_flush += self.flush_cycles
        if sealed:
            self._write_manifest()

    def finalize(self, cycles: int, trace_dropped: int = 0) -> None:
        """Seal everything and mark the stream complete."""
        if self._closed:
            return
        self._closed = True
        for kind in KINDS:
            self._seal(kind)
        self.status = "complete"
        self._write_manifest(cycles=cycles, trace_dropped=trace_dropped)

    def abort(self) -> None:
        """Failure cleanup: drop the torn tail, mark the stream failed.

        Sealed segments are durable evidence and stay; the unsealed
        active files (whose contents never reached a manifest) are
        removed so a failed run leaves no ambiguous half-written tail.
        """
        if self._closed:
            return
        self._closed = True
        self.status = "failed"
        for kind in KINDS:
            active = self._active[kind]
            if active is None:
                continue
            self._active[kind] = None
            try:
                active.fh.close()
                active.path.unlink()
            # abort() runs on the failure path; a second error here must
            # not mask the original exception
            # repro-lint: disable=EXC002 best-effort failure cleanup
            except OSError:
                pass
        try:
            self._write_manifest()
        # repro-lint: disable=EXC002 best-effort failure cleanup
        except OSError:
            pass

    # -- manifest -----------------------------------------------------------

    def _manifest(self, cycles: int | None = None, trace_dropped: int = 0):
        return {
            "version": 1,
            "status": self.status,
            "label": self.label,
            "series": list(self.series),
            "segment_records": self.segment_cap,
            "flush_every": self.flush_cycles,
            "events": {
                "segments": list(self._sealed["events"]),
                "total": self._totals["events"],
            },
            "samples": {
                "segments": list(self._sealed["samples"]),
                "total": self._totals["samples"],
            },
            "cycles": cycles,
            "trace_dropped": trace_dropped,
        }

    def _write_manifest(self, cycles: int | None = None,
                        trace_dropped: int = 0) -> None:
        write_manifest(
            self.directory, self._manifest(cycles, trace_dropped)
        )


def write_manifest(directory: str | os.PathLike, manifest: dict) -> None:
    """Atomically replace ``MANIFEST.json`` (write, fsync, rename)."""
    atomicio.write_json(Path(directory) / MANIFEST_NAME, manifest)


def write_cache_replay_manifest(directory: str | os.PathLike,
                                label: str | None = None) -> None:
    """Mark a stream directory as satisfied from the engine result cache.

    A cache hit never re-simulates, so there is nothing to stream; the
    marker lets ``repro watch`` explain that instead of waiting forever.
    Existing stream data (from the original, uncached run) is preserved.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    existing = read_manifest(directory, missing_ok=True)
    if existing is not None and existing.get("status") == "complete":
        return  # a finished stream already lives here; keep it
    write_manifest(directory, {
        "version": 1,
        "status": "cache-replay",
        "label": label,
        "series": [],
        "events": {"segments": [], "total": 0},
        "samples": {"segments": [], "total": 0},
        "cycles": None,
        "trace_dropped": 0,
    })


# ------------------------------------------------------------------ reader


def read_manifest(directory: str | os.PathLike,
                  missing_ok: bool = False) -> dict | None:
    """Load ``MANIFEST.json``; None when absent and ``missing_ok``."""
    path = Path(directory) / MANIFEST_NAME
    try:
        text = path.read_text()
    except FileNotFoundError:
        if missing_ok:
            return None
        raise StreamError(
            f"no stream manifest at {path} (is this a REPRO_STREAM_DIR?)"
        ) from None
    try:
        manifest = json.loads(text)
    except ValueError:
        raise StreamError(
            f"stream manifest {path} is not valid JSON; the directory is "
            f"corrupt (manifest writes are atomic, so this was not a crash)"
        ) from None
    if not isinstance(manifest, dict) or "status" not in manifest:
        raise StreamError(f"stream manifest {path} has no status field")
    return manifest


def _sealed_names(manifest: dict, kind: str) -> list[str]:
    return [s["file"] for s in manifest.get(kind, {}).get("segments", [])]


def segment_paths(directory: str | os.PathLike, kind: str) -> list[Path]:
    """All on-disk segment files of ``kind``, in stream order.

    A directory that does not exist (yet) simply has no segments —
    ``Path.glob`` would raise ``FileNotFoundError`` on some Python
    versions, which turned ``repro watch <not-yet-created-dir>`` into a
    traceback instead of a "waiting…" placeholder.
    """
    try:
        return sorted(Path(directory).glob(f"{kind}-*.jsonl"))
    except OSError:
        return []


def iter_records(
    directory: str | os.PathLike,
    kind: str = "events",
    manifest: dict | None = None,
    tolerant: bool = False,
):
    """Yield parsed records from every segment of ``kind``, in order.

    Sealed segments (listed in the manifest) must parse completely —
    corruption there is a hard :class:`StreamError` since they were
    fsync'd behind an atomic manifest update.  The *active* tail segment
    may be torn: with ``tolerant`` its complete lines are salvaged and a
    broken final line is skipped; otherwise tearing raises
    :class:`TornTailError`.
    """
    directory = Path(directory)
    if manifest is None:
        manifest = read_manifest(directory)
    sealed = set(_sealed_names(manifest, kind))
    for path in segment_paths(directory, kind):
        is_sealed = path.name in sealed
        with open(path) as fh:
            text = fh.read()
        lines = text.split("\n")
        trailing = lines.pop()  # "" iff the file ends with a newline
        for lineno, line in enumerate(lines, start=1):
            try:
                yield json.loads(line)
            except ValueError:
                if is_sealed:
                    raise StreamError(
                        f"sealed segment {path.name} line {lineno} is not "
                        f"valid JSON — the stream directory is corrupt"
                    ) from None
                if tolerant:
                    return
                raise TornTailError(
                    f"segment {path.name} line {lineno} is torn (the "
                    f"writing run crashed or is still live)"
                ) from None
        if trailing:
            if is_sealed:
                raise StreamError(
                    f"sealed segment {path.name} does not end with a "
                    f"newline — the stream directory is corrupt"
                )
            if not tolerant:
                raise TornTailError(
                    f"segment {path.name} ends mid-record (the writing "
                    f"run crashed or is still live)"
                )
            return


def read_samples(
    directory: str | os.PathLike,
    manifest: dict | None = None,
    tolerant: bool = True,
) -> tuple[list[int], dict[str, list]]:
    """Sampled series from the stream: ``(cycles, {name: values})``.

    Unlike ``SimResult.timeseries`` this is the *full-resolution* stream
    (streaming never decimates).  Series names come from the manifest.
    """
    if manifest is None:
        manifest = read_manifest(directory)
    names = list(manifest.get("series", []))
    cycles: list[int] = []
    series: dict[str, list] = {name: [] for name in names}
    for record in iter_records(directory, "samples", manifest, tolerant):
        values = record.get("values", [])
        if len(values) != len(names):
            raise StreamError(
                f"sample row at cycle {record.get('cycle')} has "
                f"{len(values)} values for {len(names)} series"
            )
        cycles.append(record["cycle"])
        for name, value in zip(names, values):
            series[name].append(value)
    return cycles, series


class StreamTail:
    """Incremental reader: each :meth:`poll` yields newly-complete lines.

    Tracks a byte offset per segment file, so repeated polling of a live
    stream is O(new data), not O(stream).  A partial final line (being
    written right now, or torn by a crash) is buffered until its newline
    arrives and never yielded incomplete.
    """

    def __init__(self, directory: str | os.PathLike, kind: str = "events"):
        self.directory = Path(directory)
        self.kind = kind
        self._offsets: dict[str, int] = {}
        self._partial: dict[str, str] = {}

    def poll(self) -> list[str]:
        lines: list[str] = []
        for path in segment_paths(self.directory, self.kind):
            name = path.name
            offset = self._offsets.get(name, 0)
            try:
                with open(path) as fh:
                    fh.seek(offset)
                    chunk = fh.read()
            except OSError:
                continue  # segment vanished mid-poll (writer cleanup)
            if not chunk:
                continue
            self._offsets[name] = offset + len(chunk)
            chunk = self._partial.pop(name, "") + chunk
            parts = chunk.split("\n")
            tail = parts.pop()
            if tail:
                self._partial[name] = tail
            lines.extend(part for part in parts if part)
        return lines


# ----------------------------------------------------------- finalization


def finalize_chrome(
    directory: str | os.PathLike,
    out_path: str | os.PathLike,
    label: str | None = None,
    allow_torn: bool = False,
) -> dict:
    """Convert a streamed event log into one Chrome ``trace_event`` file.

    Produces the same schema as the post-run exporter
    (:func:`repro.telemetry.trace.to_chrome_trace`) but builds it
    incrementally from the JSONL segments, so arbitrarily long streams
    finalize in bounded memory.  Returns a summary dict.

    By default refuses a stream whose manifest is not ``complete``
    (crashed or still-running writer) — pass ``allow_torn`` to export
    only the durable prefix.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    status = manifest.get("status")
    if status == "cache-replay":
        raise StreamError(
            f"stream at {directory} is a cache-replay marker: the run was "
            f"satisfied from the result cache and streamed nothing "
            f"(rerun with --no-cache to stream a fresh simulation)"
        )
    if status != "complete" and not allow_torn:
        raise TornTailError(
            f"stream at {directory} is not finalized (status {status!r}): "
            f"the writing run is still live or crashed mid-segment; pass "
            f"--allow-torn to export only the fsync'd sealed segments"
        )
    if label is None:
        label = manifest.get("label") or "repro"
    dropped = manifest.get("trace_dropped") or 0
    count = 0
    with open(out_path, "w") as fh:
        writer = trace_mod.ChromeTraceWriter(fh, label=label)
        for record in iter_records(
            directory, "events", manifest, tolerant=allow_torn
        ):
            writer.add(record)
            count += 1
        writer.finalize(dropped=dropped)
    return {"events": count, "dropped": dropped, "status": status,
            "label": label}
