"""Typed instruments and the per-system metric registry.

Three instrument kinds cover everything the simulator measures:

* :class:`Counter` — a monotonic integer, bumped on events (commands
  issued, scheduler decisions).
* :class:`Gauge` — a zero-state view over live state (queue length) or an
  existing counter attribute; reads go through a callable so the gauge
  never duplicates (and can never desynchronise from) the source.
* :class:`LatencyHistogram` — fixed power-of-two integer-cycle buckets
  with exact ``total``/``count``/``max``/``min``, so means are
  bit-identical to the summed counters they replace while p50/p90/p99
  and tail shape become visible.

A :class:`MetricRegistry` is created per :class:`~repro.sim.system.System`;
components register their instruments under dotted names
(``chan0.read_queue``, ``hier.crit_latency``) during construction.  The
registry is the single naming spine the interval sampler, the CLI
``stats`` renderer, and ``SimResult.metrics`` all consume.

Determinism contract: every registered value must be *window-constant* —
unchanged during quiescent fast-forward windows — before it may be
marked ``sampled=True``, because the interval sampler reads it at
virtual-cycle points inside skipped windows (see
:mod:`repro.telemetry.sampler`).  Counters bumped from lazily-settled
per-cycle stats (``blocked_cycles`` et al.) must therefore never be
sampled, only snapshotted at end of run.
"""

from __future__ import annotations

#: Bucket count: bucket ``i`` holds values with ``bit_length() == i``
#: (bucket 0 holds exactly 0), so bucket upper bounds are ``2**i - 1``.
#: 48 buckets cover every latency a 2**48-cycle run could produce.
HISTOGRAM_BUCKETS = 48


class Counter:
    """Monotonic event counter."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def read(self) -> int:
        return self.value


class Gauge:
    """A read-through view: ``read()`` evaluates the bound callable."""

    __slots__ = ("fn",)
    kind = "gauge"

    def __init__(self, fn):
        self.fn = fn

    def read(self):
        return self.fn()


class LatencyHistogram:
    """Fixed-bucket integer latency distribution.

    Buckets are powers of two (`bit_length` indexing), so recording is a
    few integer operations and the bucket layout is identical for every
    run — a precondition for folding histogram state into result
    fingerprints and the determinism hash-chain.  ``total`` and ``count``
    are exact, so ``mean`` reproduces the old hand-rolled ``sum/count``
    statistics bit for bit; percentiles are bucket upper bounds
    (conservative, deterministic integers).
    """

    __slots__ = ("counts", "count", "total", "max", "min")
    kind = "histogram"

    def __init__(self):
        self.counts = [0] * HISTOGRAM_BUCKETS
        self.count = 0
        self.total = 0
        self.max = 0
        self.min = -1

    def record(self, value: int) -> None:
        idx = value.bit_length() if value > 0 else 0
        if idx >= HISTOGRAM_BUCKETS:
            idx = HISTOGRAM_BUCKETS - 1
        self.counts[idx] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if self.min < 0 or value < self.min:
            self.min = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: int) -> int:
        """Upper bound of the bucket holding the ``p``-th percentile.

        ``p`` is an integer in (0, 100]; arithmetic is pure-integer so
        the answer is deterministic across platforms.
        """
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if not self.count:
            return 0
        rank = max(1, (p * self.count + 99) // 100)
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= rank:
                return (1 << i) - 1 if i else 0
        return (1 << HISTOGRAM_BUCKETS) - 1  # unreachable

    def state(self) -> tuple:
        """Hashable exact state (for fingerprints and the det-chain)."""
        occupied = tuple(
            (i, n) for i, n in enumerate(self.counts) if n
        )
        return (occupied, self.count, self.total, self.max, self.min)

    def summary(self) -> dict:
        """Snapshot dict for reports: count, mean, tail percentiles, and
        the occupied ``(bucket_index, n)`` pairs for shape rendering."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
            "min": self.min if self.min >= 0 else 0,
            "buckets": [[i, n] for i, n in enumerate(self.counts) if n],
        }

    def read(self) -> dict:
        return self.summary()

    def __repr__(self):
        return (
            f"LatencyHistogram(count={self.count}, mean={self.mean:.1f}, "
            f"p99={self.percentile(99) if self.count else 0}, max={self.max})"
        )


class MetricRegistry:
    """Dotted-name registry of instruments for one simulated system."""

    def __init__(self):
        self._instruments: dict[str, object] = {}
        self._sampled: list[str] = []

    # -- registration -------------------------------------------------------

    def register(self, name: str, instrument, sampled: bool = False):
        if name in self._instruments:
            raise ValueError(f"instrument {name!r} already registered")
        if sampled and instrument.kind == "histogram":
            raise ValueError(
                f"{name!r}: sample a histogram via gauges over its "
                f"count/total, not the histogram itself"
            )
        self._instruments[name] = instrument
        if sampled:
            self._sampled.append(name)
        return instrument

    def counter(self, name: str, sampled: bool = False) -> Counter:
        return self.register(name, Counter(), sampled=sampled)

    def gauge(self, name: str, fn, sampled: bool = False) -> Gauge:
        return self.register(name, Gauge(fn), sampled=sampled)

    def histogram(
        self, name: str, hist: LatencyHistogram | None = None
    ) -> LatencyHistogram:
        return self.register(name, hist if hist is not None else LatencyHistogram())

    # -- reading ------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str):
        return self._instruments.get(name)

    def read(self, name: str):
        return self._instruments[name].read()

    def names(self) -> list[str]:
        return list(self._instruments)

    def sampled_items(self) -> list[tuple[str, object]]:
        """(name, instrument) pairs flagged for interval sampling."""
        return [(name, self._instruments[name]) for name in self._sampled]

    def histograms(self) -> list[tuple[str, LatencyHistogram]]:
        return [
            (name, inst)
            for name, inst in self._instruments.items()
            if inst.kind == "histogram"
        ]

    def snapshot(self) -> dict:
        """Plain-data snapshot of every instrument (picklable, hashable
        after :func:`repro.sim.stats._freeze`)."""
        return {name: inst.read() for name, inst in self._instruments.items()}
