"""`repro watch`: live terminal monitor for a streaming simulation.

Tails the sampled-series stream that a running simulation spills into
its ``REPRO_STREAM_DIR`` (see :mod:`repro.telemetry.stream`) and renders
a small dashboard of derived series — system IPC, per-channel read-queue
occupancy and row-hit rate, and critical/non-critical DRAM load latency
— as unicode sparklines, refreshed in place until the run's manifest
reports completion.

The monitor is a pure *reader*: it never touches simulated state, uses
only tolerant tail reads (a torn final line is simply not yet a sample),
and degrades gracefully when the "run" was satisfied from the engine's
result cache (the engine leaves a ``cache-replay`` marker manifest
explaining that nothing will be streamed).

``follow_events`` is the same idea for the raw event stream
(``repro trace --from-stream DIR --follow``): print each streamed JSONL
event line as it lands.
"""

from __future__ import annotations

import json
import sys
import time

from repro.sim.report import sparkline
from repro.telemetry import stream as stream_mod

_CLEAR = "\x1b[2J\x1b[H"  # ANSI: clear screen + home cursor


class _SampleFeed:
    """Accumulates sampled rows from a (possibly live) stream tail."""

    def __init__(self, directory):
        self.directory = directory
        self._tail = stream_mod.StreamTail(directory, "samples")
        self.cycles: list[int] = []
        self.rows: list[list] = []

    def poll(self) -> int:
        """Ingest newly-complete sample lines; returns how many."""
        fresh = 0
        for line in self._tail.poll():
            try:
                record = json.loads(line)
            # a torn line mid-write is not yet a sample; the tail
            # re-delivers it once its newline lands
            # repro-lint: disable=EXC002 tolerant live tailing
            except ValueError:
                continue
            self.cycles.append(record.get("cycle", 0))
            self.rows.append(record.get("values", []))
            fresh += 1
        return fresh


def _column(names: list[str], rows: list[list], name: str) -> list:
    try:
        idx = names.index(name)
    except ValueError:
        return []
    return [row[idx] for row in rows if idx < len(row)]


def _deltas(values: list) -> list:
    """Per-interval increments of a cumulative counter series."""
    return [b - a for a, b in zip(values, values[1:])]


def _ratio_series(num: list, den: list) -> list:
    return [n / d if d else 0.0 for n, d in zip(num, den)]


def derive_series(
    names: list[str], cycles: list[int], rows: list[list]
) -> list[tuple[str, list, str]]:
    """Dashboard series from raw sampled rows: (label, values, fmt).

    All derivations are interval deltas of cumulative counters (IPC,
    row-hit rate, latency means) or instantaneous gauges (queue
    occupancy), so they are meaningful regardless of sampling stride.
    """
    out: list[tuple[str, list, str]] = []
    dt = _deltas(cycles)
    committed_cols = [
        _column(names, rows, name)
        for name in names
        if name.startswith("core") and name.endswith(".committed")
    ]
    if committed_cols and dt:
        total = [sum(col[i] for col in committed_cols)
                 for i in range(len(rows))]
        out.append(("IPC (system)", _ratio_series(_deltas(total), dt),
                    "{:.2f}"))
    channels = sorted(
        {name.split(".")[0] for name in names
         if name.startswith("chan") and name.endswith(".read_queue")}
    )
    for chan in channels:
        queue = _column(names, rows, f"{chan}.read_queue")
        if queue:
            out.append((f"{chan} read queue", queue, "{:.0f}"))
        hits = _deltas(_column(names, rows, f"{chan}.row_hit_reads"))
        reads = _deltas(_column(names, rows, f"{chan}.reads_done"))
        if hits and reads:
            out.append((f"{chan} row-hit rate", _ratio_series(hits, reads),
                        "{:.2f}"))
    for kind in ("crit", "noncrit"):
        totals = _deltas(_column(names, rows, f"hier.{kind}_latency_total"))
        counts = _deltas(_column(names, rows, f"hier.{kind}_latency_count"))
        if totals and counts:
            out.append((f"{kind} load latency",
                        _ratio_series(totals, counts), "{:.0f}"))
    return out


def render_frame(
    manifest: dict | None,
    feed: _SampleFeed,
    width: int = 40,
) -> str:
    """One dashboard frame as text (no ANSI — the caller positions it)."""
    lines: list[str] = []
    if manifest is None:
        lines.append("waiting for a stream manifest "
                     f"in {feed.directory} ...")
        return "\n".join(lines)
    label = manifest.get("label") or "?"
    status = manifest.get("status", "?")
    lines.append(f"{label}  [{status}]")
    if feed.cycles:
        lines.append(
            f"cycle {feed.cycles[-1]:,}  ({len(feed.cycles)} samples)"
        )
    else:
        lines.append("no samples yet (is REPRO_SAMPLE_EVERY set?)")
    lines.append("")
    names = list(manifest.get("series", []))
    for title, values, fmt in derive_series(names, feed.cycles, feed.rows):
        if not values:
            continue
        latest = fmt.format(values[-1])
        lines.append(f"{title:<22} {sparkline(values, width):<{width}} "
                     f"{latest:>8}")
    return "\n".join(lines)


def watch(
    directory,
    interval: float = 1.0,
    once: bool = False,
    frames: int | None = None,
    out=None,
    run: str | None = None,
) -> int:
    """Tail a stream directory and render the dashboard until done.

    ``directory`` may be a single run's stream directory or a fleet
    root (``REPRO_FLEET_DIR``): a root renders the multi-run fleet
    table instead, and ``run`` drills back down into one of its
    registered runs by registry id or label.

    ``once`` renders a single frame and returns; ``frames`` bounds the
    number of refreshes (for CI).  Returns a shell exit code.
    """
    from repro.telemetry import fleet

    out = out or sys.stdout
    if run is not None:
        registry = fleet.RunRegistry(directory)
        entry = registry.find(run)
        if entry is None:
            known = ", ".join(
                e["run_id"] for e in registry.entries()
            ) or "(none registered)"
            out.write(f"error: no run {run!r} in fleet root {directory}; "
                      f"known runs: {known}\n")
            return 1
        directory = entry["dir"]
    elif fleet.is_fleet_root(directory):
        return watch_fleet(
            directory, interval=interval, once=once, frames=frames, out=out
        )
    feed = _SampleFeed(directory)
    rendered = 0
    while True:
        try:
            manifest = stream_mod.read_manifest(directory, missing_ok=True)
        except stream_mod.StreamError as exc:
            # a corrupt/mid-write manifest is a user-facing condition,
            # not a monitor bug: one clear line, no traceback
            out.write(f"error: {exc}\n")
            return 1
        status = manifest.get("status") if manifest else None
        if status == "cache-replay":
            out.write(
                f"{manifest.get('label') or 'run'}: satisfied from the "
                f"result cache — nothing was simulated, so nothing was "
                f"streamed.  Rerun with --no-cache (or REPRO_NO_CACHE=1) "
                f"to watch a live simulation.\n"
            )
            return 0
        feed.poll()
        frame = render_frame(manifest, feed)
        if once or frames is not None:
            out.write(frame + "\n")
        else:
            out.write(_CLEAR + frame + "\n")
        out.flush()
        rendered += 1
        if once or (frames is not None and rendered >= frames):
            return 0
        if status == "complete":
            out.write("run complete.\n")
            return 0
        if status == "failed":
            out.write("run FAILED (stream aborted; tail was discarded).\n")
            return 1
        time.sleep(interval)


def _fleet_latest(info: dict, feed: _SampleFeed) -> tuple:
    """Latest derived (ipc, row_hit) for one fleet run, or Nones."""
    manifest = info.get("manifest") or {}
    names = list(manifest.get("series", []))
    ipc = hit = None
    if names and feed.rows:
        for title, values, _fmt in derive_series(
            names, feed.cycles, feed.rows
        ):
            if not values:
                continue
            if ipc is None and title == "IPC (system)":
                ipc = values[-1]
            elif hit is None and title.endswith("row-hit rate"):
                hit = values[-1]
    return ipc, hit


#: Fleet-table annotations for degraded registry states.
_STATUS_NOTES = {
    "starting": "no manifest yet",
    "missing": "stream directory gone",
    "corrupt": "manifest unreadable",
    "failed": "crash/abort (torn tail discarded)",
    "cache-replay": "served from result cache",
}


def render_fleet_frame(root, runs: list[dict], feeds: dict) -> str:
    """One multi-run fleet table as text (no ANSI)."""
    lines = [f"fleet {root}: {len(runs)} run(s)"]
    if not runs:
        lines.append("no runs registered yet — point REPRO_FLEET_DIR at "
                     "this root and launch something.")
        return "\n".join(lines)
    lines.append("")
    lines.append(f"  {'run':<26} {'status':<12} {'cycle':>12} "
                 f"{'samples':>8} {'IPC':>6} {'row-hit':>8}  label")
    notes: list[str] = []
    for info in runs:
        run_id = info["run_id"]
        feed = feeds[run_id]
        status = info.get("status", "?")
        ipc, hit = _fleet_latest(info, feed)
        cycle = f"{feed.cycles[-1]:,}" if feed.cycles else "-"
        samples = str(len(feed.cycles)) if feed.cycles else "-"
        ipc_text = f"{ipc:.2f}" if ipc is not None else "-"
        hit_text = f"{hit:.2f}" if hit is not None else "-"
        lines.append(
            f"  {run_id[:26]:<26} {status:<12} {cycle:>12} {samples:>8} "
            f"{ipc_text:>6} {hit_text:>8}  {info.get('label') or ''}"
        )
        note = _STATUS_NOTES.get(status)
        if note:
            notes.append(f"  ! {run_id}: {note}")
    if notes:
        lines.append("")
        lines.extend(notes)
    lines.append("")
    lines.append("drill down: repro watch <root> --run <run>")
    return "\n".join(lines)


def watch_fleet(
    root,
    interval: float = 1.0,
    once: bool = False,
    frames: int | None = None,
    out=None,
) -> int:
    """Render the fleet dashboard over a registry root until every
    registered run reaches a terminal status.  Returns 1 if any run
    failed, else 0."""
    from repro.telemetry import fleet

    out = out or sys.stdout
    registry = fleet.RunRegistry(root)
    feeds: dict[str, _SampleFeed] = {}
    rendered = 0
    while True:
        runs = registry.runs()
        for info in runs:
            feed = feeds.get(info["run_id"])
            if feed is None:
                feed = feeds[info["run_id"]] = _SampleFeed(info["dir"])
            feed.poll()
        frame = render_fleet_frame(root, runs, feeds)
        if once or frames is not None:
            out.write(frame + "\n")
        else:
            out.write(_CLEAR + frame + "\n")
        out.flush()
        rendered += 1
        statuses = [info.get("status") for info in runs]
        any_failed = any(s in ("failed", "corrupt") for s in statuses)
        if once or (frames is not None and rendered >= frames):
            return 1 if any_failed else 0
        if runs and all(
            s in ("complete", "failed", "cache-replay", "missing", "corrupt")
            for s in statuses
        ):
            out.write("fleet idle: every registered run is terminal.\n")
            return 1 if any_failed else 0
        time.sleep(interval)


def follow_events(
    directory,
    out=None,
    poll: float = 0.5,
    max_lines: int | None = None,
) -> int:
    """Print streamed raw event lines as they land (``trace --follow``).

    Stops when the writer's manifest reports a terminal status and no
    new lines remain; ``max_lines`` bounds output (for CI).  Returns a
    shell exit code.
    """
    out = out or sys.stdout
    tail = stream_mod.StreamTail(directory, "events")
    printed = 0
    while True:
        lines = tail.poll()
        for line in lines:
            out.write(line + "\n")
            printed += 1
            if max_lines is not None and printed >= max_lines:
                out.flush()
                return 0
        out.flush()
        try:
            manifest = stream_mod.read_manifest(directory, missing_ok=True)
        except stream_mod.StreamError as exc:
            out.write(f"error: {exc}\n")
            return 1
        status = manifest.get("status") if manifest else None
        if status == "cache-replay":
            out.write("(cache replay: no events were streamed; rerun "
                      "with --no-cache)\n")
            return 0
        if status in ("complete", "failed") and not lines:
            return 0 if status == "complete" else 1
        if not lines:
            time.sleep(poll)
