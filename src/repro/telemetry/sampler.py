"""Skip-aware interval sampling of registered instruments.

Every ``REPRO_SAMPLE_EVERY`` virtual CPU cycles (0 = disabled, the
default) the sampler reads each instrument registered with
``sampled=True`` and appends the value to that instrument's time-series.
Sample cycles are defined on the *virtual* cycle axis, exactly like the
determinism hash-chain: during a quiescent fast-forward window every
sampled value is constant (that is the registration contract, see
:mod:`repro.telemetry.registry`), so folding one read per due sample
point inside the window yields the identical sample stream the naive
cycle-by-cycle loop would have produced.  ``tests/test_telemetry_determinism.py``
pins that identity across skip modes and worker processes.

Long runs stay bounded: past ``_SAMPLE_CAP`` samples the series are
decimated (every other sample dropped, stride doubled) — a pure function
of the sample count, hence mode- and process-invariant.
"""

from __future__ import annotations

import os

#: Sample lists longer than this are decimated to stay bounded.
_SAMPLE_CAP = 4096


def interval() -> int:
    """Sampling period in CPU cycles from the environment (0 = disabled)."""
    raw = os.environ.get("REPRO_SAMPLE_EVERY", "")
    if not raw:
        return 0
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SAMPLE_EVERY must be an integer, got {raw!r}"
        ) from None
    return max(0, value)


class IntervalSampler:
    """Periodic reader of the registry's ``sampled`` instruments."""

    __slots__ = ("every", "next_sample", "cycles", "series", "_sources",
                 "emit")

    def __init__(self, every: int, emit=None):
        if every < 1:
            raise ValueError(f"sampling interval must be >= 1, got {every}")
        self.every = every
        self.next_sample = every
        self.cycles: list[int] = []
        self.series: dict[str, list] = {}
        self._sources: list[tuple[list, object]] = []
        #: Optional streaming callback ``emit(cycle, values)`` invoked at
        #: every sample point with the freshly-read row, *before* any
        #: decimation — the stream keeps what the bounded in-memory series
        #: later thin out.
        self.emit = emit

    def bind(self, sampled_items) -> None:
        """Attach the registry's ``sampled`` instruments (once, at build)."""
        for name, instrument in sampled_items:
            store: list = []
            self.series[name] = store
            self._sources.append((store, instrument))

    def sample_upto(self, limit: int) -> None:
        """Fold every due sample point in ``[next_sample, limit)``.

        Called with ``limit = now + 1`` by the naive loop and with the
        fast-forward target by the skipping loop; in the latter case the
        window is quiescent, so reading the (constant) instruments once
        per due point reproduces the naive stream exactly.
        """
        while self.next_sample < limit:
            self.cycles.append(self.next_sample)
            if self.emit is None:
                for store, instrument in self._sources:
                    store.append(instrument.read())
            else:
                row = [instrument.read() for _, instrument in self._sources]
                for (store, _), value in zip(self._sources, row):
                    store.append(value)
                self.emit(self.next_sample, row)
            self.next_sample += self.every
            if len(self.cycles) >= _SAMPLE_CAP:
                self._decimate()

    def _decimate(self) -> None:
        """Halve resolution deterministically (same phase, doubled stride)."""
        self.cycles = self.cycles[::2]
        for name, store in self.series.items():
            kept = store[::2]
            store.clear()
            store.extend(kept)
            self.series[name] = store
        # Re-point _sources at the (mutated-in-place) stores: they are the
        # same list objects, so nothing to do beyond the stride update.
        self.every *= 2
