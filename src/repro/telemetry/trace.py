"""Opt-in event trace: bounded ring buffer + Chrome ``trace_event`` export.

Enabled with ``REPRO_TRACE=1`` (capacity ``REPRO_TRACE_CAP``, default
65536 events, drop-oldest).  Four event families are recorded, all at
cycles the fast-forwarding loop provably steps, so the trace stream is
bit-identical between skip and no-skip runs:

* DRAM commands (ACT/PRE/READ/WRITE/REF) from every channel controller;
* ROB-head block episodes (a DRAM-bound load stalling commit, measured
  start -> commit);
* CBP criticality predictions attached to issued loads;
* cache-hierarchy events: L2 fills from DRAM, dirty L2 evictions
  (writebacks), and coherence invalidations of remote L1 copies.

Raw events are compact tuples on ``SimResult.trace_events``; exporters
render them as JSONL or as Chrome ``trace_event`` JSON
(``python -m repro trace app --out timeline.json``), one process lane
per channel and per core, one thread lane per bank — loadable in
Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
import os
from collections import deque

#: Raw-event tags (first tuple element).
CMD, BLOCK, PRED, CACHE = "cmd", "block", "pred", "cache"

#: Cache-event kinds (third element of a ``CACHE`` tuple).
CACHE_KINDS = ("l2_fill", "dirty_evict", "inval")

_DEFAULT_CAP = 65536


def enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "") not in ("", "0")


def capacity() -> int:
    raw = os.environ.get("REPRO_TRACE_CAP", "")
    if not raw:
        return _DEFAULT_CAP
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_TRACE_CAP must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"REPRO_TRACE_CAP must be positive, got {value}")
    return value


class TraceRecorder:
    """Bounded drop-oldest ring buffer of simulator events.

    All timestamps are CPU cycles (DRAM-domain recorders convert at the
    call site), so every lane shares one time axis.
    """

    __slots__ = ("events", "capacity", "dropped")

    def __init__(self, cap: int | None = None):
        self.capacity = cap if cap is not None else capacity()
        self.events: deque = deque(maxlen=self.capacity)
        self.dropped = 0

    def _push(self, event: tuple) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    # -- recording hooks ----------------------------------------------------

    def command(self, ts, channel, rank, bank, kind, row, dur) -> None:
        """One DRAM command executed (ts/dur already in CPU cycles)."""
        self._push((CMD, ts, channel, rank, bank, kind, row, dur))

    def block_episode(self, start, core, pc, dur) -> None:
        """A DRAM-bound load blocked the ROB head for ``dur`` cycles."""
        self._push((BLOCK, start, core, pc, dur))

    def prediction(self, ts, core, pc, magnitude) -> None:
        """The criticality provider flagged an issued load as critical."""
        self._push((PRED, ts, core, pc, magnitude))

    def cache_event(self, ts, kind, core, line_addr) -> None:
        """A cache-hierarchy event (see :data:`CACHE_KINDS`).

        ``core`` is the affected L1's core for invalidations and -1 for
        L2-level events (fills, evictions).
        """
        if kind not in CACHE_KINDS:
            raise ValueError(f"unknown cache event kind {kind!r}")
        self._push((CACHE, ts, kind, core, line_addr))


# ------------------------------------------------------------------ export


def _event_dicts(events):
    """Raw tuples -> uniform dicts (shared by JSONL and Chrome export)."""
    for event in events:
        tag = event[0]
        if tag == CMD:
            _, ts, channel, rank, bank, kind, row, dur = event
            yield {"type": "dram_command", "ts": ts, "channel": channel,
                   "rank": rank, "bank": bank, "kind": kind, "row": row,
                   "dur": dur}
        elif tag == BLOCK:
            _, ts, core, pc, dur = event
            yield {"type": "rob_block", "ts": ts, "core": core, "pc": pc,
                   "dur": dur}
        elif tag == PRED:
            _, ts, core, pc, magnitude = event
            yield {"type": "cbp_prediction", "ts": ts, "core": core,
                   "pc": pc, "magnitude": magnitude}
        elif tag == CACHE:
            _, ts, kind, core, line_addr = event
            yield {"type": "cache_event", "ts": ts, "kind": kind,
                   "core": core, "line": line_addr}
        else:
            raise ValueError(f"unknown trace event tag {tag!r}")


def to_jsonl(events) -> str:
    """One JSON object per raw event, newline-delimited."""
    return "".join(
        json.dumps(d, sort_keys=True) + "\n" for d in _event_dicts(events)
    )


def to_chrome_trace(events, label: str = "repro") -> dict:
    """Chrome ``trace_event`` document (JSON-serialisable dict).

    Lanes: pid ``1 + channel`` per DRAM channel (tid = rank*32 + bank),
    pid ``1000 + core`` per core (tid 0 = ROB, tid 1 = CBP), and
    pid ``2000`` for the shared cache hierarchy (tid 0 = L2 fills,
    tid 1 = dirty evictions, tid 2 = coherence invalidations).
    Timestamps are CPU cycles rendered as microseconds (1 cycle ==
    1 "us"), which Perfetto displays fine and keeps the numbers
    readable.
    """
    trace_events: list[dict] = []
    named_pids: dict[int, str] = {}
    named_tids: dict[tuple[int, int], str] = {}

    for event in events:
        tag = event[0]
        if tag == CMD:
            _, ts, channel, rank, bank, kind, row, dur = event
            pid = 1 + channel
            tid = rank * 32 + bank
            named_pids.setdefault(pid, f"DRAM channel {channel}")
            named_tids.setdefault((pid, tid), f"rank {rank} bank {bank}")
            trace_events.append({
                "name": f"{kind} row={row}", "cat": "dram", "ph": "X",
                "ts": ts, "dur": max(1, dur), "pid": pid, "tid": tid,
                "args": {"kind": kind, "row": row},
            })
        elif tag == BLOCK:
            _, ts, core, pc, dur = event
            pid = 1000 + core
            named_pids.setdefault(pid, f"core {core}")
            named_tids.setdefault((pid, 0), "ROB head")
            trace_events.append({
                "name": f"ROB block pc={pc:#x}", "cat": "core", "ph": "X",
                "ts": ts, "dur": max(1, dur), "pid": pid, "tid": 0,
                "args": {"pc": pc, "stall": dur},
            })
        elif tag == PRED:
            _, ts, core, pc, magnitude = event
            pid = 1000 + core
            named_pids.setdefault(pid, f"core {core}")
            named_tids.setdefault((pid, 1), "CBP predictions")
            trace_events.append({
                "name": f"critical pc={pc:#x}", "cat": "cbp", "ph": "i",
                "ts": ts, "pid": pid, "tid": 1, "s": "t",
                "args": {"pc": pc, "magnitude": magnitude},
            })
        elif tag == CACHE:
            _, ts, kind, core, line_addr = event
            pid = 2000
            tid = CACHE_KINDS.index(kind)
            lane = ("L2 fills", "dirty evictions",
                    "coherence invalidations")[tid]
            named_pids.setdefault(pid, "cache hierarchy")
            named_tids.setdefault((pid, tid), lane)
            trace_events.append({
                "name": f"{kind} line={line_addr:#x}", "cat": "cache",
                "ph": "i", "ts": ts, "pid": pid, "tid": tid, "s": "t",
                "args": {"kind": kind, "core": core, "line": line_addr},
            })
        else:
            raise ValueError(f"unknown trace event tag {tag!r}")

    metadata: list[dict] = []
    for pid, name in sorted(named_pids.items()):
        metadata.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": name}})
    for (pid, tid), name in sorted(named_tids.items()):
        metadata.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": name}})

    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": label, "clock": "cpu-cycles"},
    }


_VALID_PHASES = {"X", "i", "M"}


def validate_chrome_trace(doc) -> list[str]:
    """Schema check used by CI and tests; returns a list of problems."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing name")
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            problems.append(f"{where}: pid/tid must be integers")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant event missing scope")
    return problems
