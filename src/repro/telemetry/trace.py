"""Opt-in event trace: bounded ring buffer + Chrome ``trace_event`` export.

Enabled with ``REPRO_TRACE=1`` (capacity ``REPRO_TRACE_CAP``, default
65536 events, drop-oldest).  Four event families are recorded, all at
cycles the fast-forwarding loop provably steps, so the trace stream is
bit-identical between skip and no-skip runs:

* DRAM commands (ACT/PRE/READ/WRITE/REF) from every channel controller;
* ROB-head block episodes (a DRAM-bound load stalling commit, measured
  start -> commit);
* CBP criticality predictions attached to issued loads;
* cache-hierarchy events: L2 fills from DRAM, dirty L2 evictions
  (writebacks), and coherence invalidations of remote L1 copies.

Raw events are compact tuples on ``SimResult.trace_events``; exporters
render them as JSONL or as Chrome ``trace_event`` JSON
(``python -m repro trace app --out timeline.json``), one process lane
per channel and per core, one thread lane per bank — loadable in
Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
import os
from collections import deque

#: Raw-event tags (first tuple element).
CMD, BLOCK, PRED, CACHE = "cmd", "block", "pred", "cache"

#: Cache-event kinds (third element of a ``CACHE`` tuple).
CACHE_KINDS = ("l2_fill", "dirty_evict", "inval")

_DEFAULT_CAP = 65536


def enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "") not in ("", "0")


def capacity() -> int:
    raw = os.environ.get("REPRO_TRACE_CAP", "")
    if not raw:
        return _DEFAULT_CAP
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_TRACE_CAP must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"REPRO_TRACE_CAP must be positive, got {value}")
    return value


class TraceRecorder:
    """Bounded drop-oldest ring buffer of simulator events.

    All timestamps are CPU cycles (DRAM-domain recorders convert at the
    call site), so every lane shares one time axis.

    When a streaming ``writer`` (:class:`repro.telemetry.stream.
    StreamWriter`) is attached, every event is also spilled to disk
    *before* the ring applies its drop-oldest policy, so the stream is
    always a superset of the ring and never loses events to wrapping.
    """

    __slots__ = ("events", "capacity", "dropped", "writer")

    def __init__(self, cap: int | None = None, writer=None):
        self.capacity = cap if cap is not None else capacity()
        self.events: deque = deque(maxlen=self.capacity)
        self.dropped = 0
        self.writer = writer

    def _push(self, event: tuple) -> None:
        if self.writer is not None:
            self.writer.event(event)
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    # -- recording hooks ----------------------------------------------------

    def command(self, ts, channel, rank, bank, kind, row, dur) -> None:
        """One DRAM command executed (ts/dur already in CPU cycles)."""
        self._push((CMD, ts, channel, rank, bank, kind, row, dur))

    def block_episode(self, start, core, pc, dur) -> None:
        """A DRAM-bound load blocked the ROB head for ``dur`` cycles."""
        self._push((BLOCK, start, core, pc, dur))

    def prediction(self, ts, core, pc, magnitude) -> None:
        """The criticality provider flagged an issued load as critical."""
        self._push((PRED, ts, core, pc, magnitude))

    def cache_event(self, ts, kind, core, line_addr) -> None:
        """A cache-hierarchy event (see :data:`CACHE_KINDS`).

        ``core`` is the affected L1's core for invalidations and -1 for
        L2-level events (fills, evictions).
        """
        if kind not in CACHE_KINDS:
            raise ValueError(f"unknown cache event kind {kind!r}")
        self._push((CACHE, ts, kind, core, line_addr))


# ------------------------------------------------------------------ export


def event_dict(event: tuple) -> dict:
    """One raw tuple -> its uniform dict (the JSONL record shape)."""
    tag = event[0]
    if tag == CMD:
        _, ts, channel, rank, bank, kind, row, dur = event
        return {"type": "dram_command", "ts": ts, "channel": channel,
                "rank": rank, "bank": bank, "kind": kind, "row": row,
                "dur": dur}
    if tag == BLOCK:
        _, ts, core, pc, dur = event
        return {"type": "rob_block", "ts": ts, "core": core, "pc": pc,
                "dur": dur}
    if tag == PRED:
        _, ts, core, pc, magnitude = event
        return {"type": "cbp_prediction", "ts": ts, "core": core,
                "pc": pc, "magnitude": magnitude}
    if tag == CACHE:
        _, ts, kind, core, line_addr = event
        return {"type": "cache_event", "ts": ts, "kind": kind,
                "core": core, "line": line_addr}
    raise ValueError(f"unknown trace event tag {tag!r}")


def _event_dicts(events):
    """Raw tuples -> uniform dicts (shared by JSONL and Chrome export)."""
    for event in events:
        yield event_dict(event)


def to_jsonl(events) -> str:
    """One JSON object per raw event, newline-delimited."""
    return "".join(
        json.dumps(d, sort_keys=True) + "\n" for d in _event_dicts(events)
    )


def _chrome_record(d: dict, named_pids: dict, named_tids: dict) -> dict:
    """One event dict -> its Chrome record; updates the lane name maps."""
    kind = d["type"]
    if kind == "dram_command":
        pid = 1 + d["channel"]
        tid = d["rank"] * 32 + d["bank"]
        named_pids.setdefault(pid, f"DRAM channel {d['channel']}")
        named_tids.setdefault(
            (pid, tid), f"rank {d['rank']} bank {d['bank']}"
        )
        return {
            "name": f"{d['kind']} row={d['row']}", "cat": "dram", "ph": "X",
            "ts": d["ts"], "dur": max(1, d["dur"]), "pid": pid, "tid": tid,
            "args": {"kind": d["kind"], "row": d["row"]},
        }
    if kind == "rob_block":
        pid = 1000 + d["core"]
        named_pids.setdefault(pid, f"core {d['core']}")
        named_tids.setdefault((pid, 0), "ROB head")
        return {
            "name": f"ROB block pc={d['pc']:#x}", "cat": "core", "ph": "X",
            "ts": d["ts"], "dur": max(1, d["dur"]), "pid": pid, "tid": 0,
            "args": {"pc": d["pc"], "stall": d["dur"]},
        }
    if kind == "cbp_prediction":
        pid = 1000 + d["core"]
        named_pids.setdefault(pid, f"core {d['core']}")
        named_tids.setdefault((pid, 1), "CBP predictions")
        return {
            "name": f"critical pc={d['pc']:#x}", "cat": "cbp", "ph": "i",
            "ts": d["ts"], "pid": pid, "tid": 1, "s": "t",
            "args": {"pc": d["pc"], "magnitude": d["magnitude"]},
        }
    if kind == "cache_event":
        pid = 2000
        tid = CACHE_KINDS.index(d["kind"])
        lane = ("L2 fills", "dirty evictions",
                "coherence invalidations")[tid]
        named_pids.setdefault(pid, "cache hierarchy")
        named_tids.setdefault((pid, tid), lane)
        return {
            "name": f"{d['kind']} line={d['line']:#x}", "cat": "cache",
            "ph": "i", "ts": d["ts"], "pid": pid, "tid": tid, "s": "t",
            "args": {"kind": d["kind"], "core": d["core"],
                     "line": d["line"]},
        }
    raise ValueError(f"unknown trace event type {kind!r}")


def _metadata_records(named_pids: dict, named_tids: dict) -> list[dict]:
    metadata: list[dict] = []
    for pid, name in sorted(named_pids.items()):
        metadata.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": name}})
    for (pid, tid), name in sorted(named_tids.items()):
        metadata.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": name}})
    return metadata


def _other_data(label: str, dropped: int) -> dict:
    other = {"source": label, "clock": "cpu-cycles",
             "truncated": dropped > 0}
    if dropped:
        other["dropped_events"] = dropped
    return other


def to_chrome_trace(events, label: str = "repro", dropped: int = 0) -> dict:
    """Chrome ``trace_event`` document (JSON-serialisable dict).

    Lanes: pid ``1 + channel`` per DRAM channel (tid = rank*32 + bank),
    pid ``1000 + core`` per core (tid 0 = ROB, tid 1 = CBP), and
    pid ``2000`` for the shared cache hierarchy (tid 0 = L2 fills,
    tid 1 = dirty evictions, tid 2 = coherence invalidations).
    Timestamps are CPU cycles rendered as microseconds (1 cycle ==
    1 "us"), which Perfetto displays fine and keeps the numbers
    readable.

    ``dropped`` is the ring's drop-oldest count: when non-zero, the
    document carries ``otherData.truncated = true`` so a partial window
    is never silently presented as the whole run (stream the run via
    ``REPRO_STREAM_DIR`` to capture every event instead).
    """
    named_pids: dict[int, str] = {}
    named_tids: dict[tuple[int, int], str] = {}
    trace_events = [
        _chrome_record(d, named_pids, named_tids) for d in _event_dicts(events)
    ]
    return {
        "traceEvents": _metadata_records(named_pids, named_tids)
        + trace_events,
        "displayTimeUnit": "ms",
        "otherData": _other_data(label, dropped),
    }


class ChromeTraceWriter:
    """Incremental Chrome ``trace_event`` writer for streamed traces.

    Emits the same document schema as :func:`to_chrome_trace`, but one
    record at a time into an open file handle, so arbitrarily long
    streamed traces finalize in bounded memory: lane-name metadata is
    accumulated while events are appended and written on
    :meth:`finalize` (Chrome/Perfetto accept metadata anywhere in the
    stream).
    """

    def __init__(self, fh, label: str = "repro"):
        self._fh = fh
        self._label = label
        self._named_pids: dict[int, str] = {}
        self._named_tids: dict[tuple[int, int], str] = {}
        self._count = 0
        self._fh.write('{"traceEvents": [')

    def add(self, record: dict) -> None:
        """Append one event dict (the :func:`event_dict` shape)."""
        chrome = _chrome_record(record, self._named_pids, self._named_tids)
        prefix = ",\n" if self._count else "\n"
        self._fh.write(prefix + json.dumps(chrome, sort_keys=True))
        self._count += 1

    def finalize(self, dropped: int = 0) -> None:
        """Write lane metadata and close the document."""
        for meta in _metadata_records(self._named_pids, self._named_tids):
            prefix = ",\n" if self._count else "\n"
            self._fh.write(prefix + json.dumps(meta, sort_keys=True))
            self._count += 1
        self._fh.write("\n], ")
        self._fh.write('"displayTimeUnit": "ms", "otherData": ')
        self._fh.write(json.dumps(_other_data(self._label, dropped),
                                  sort_keys=True))
        self._fh.write("}\n")


_VALID_PHASES = {"X", "i", "M"}


def validate_chrome_trace(doc) -> list[str]:
    """Schema check used by CI and tests; returns a list of problems."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing name")
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            problems.append(f"{where}: pid/tid must be integers")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant event missing scope")
    return problems
