"""Telemetry spine: metric registry, interval sampler, event trace.

One :class:`Telemetry` bundle is built per simulated
:class:`~repro.sim.system.System` from the environment:

* the :class:`~repro.telemetry.registry.MetricRegistry` is always on —
  registration is a handful of dict inserts at construction and the
  instruments either alias state the simulator already keeps (gauges,
  histograms replacing old sum/count pairs) or count events it already
  counts, so the hot loop carries no new work when sampling and tracing
  are off;
* ``REPRO_SAMPLE_EVERY=N`` turns on the skip-aware
  :class:`~repro.telemetry.sampler.IntervalSampler` (0 = off, default);
* ``REPRO_TRACE=1`` turns on the bounded
  :class:`~repro.telemetry.trace.TraceRecorder`
  (capacity ``REPRO_TRACE_CAP``);
* ``REPRO_STREAM_DIR=<dir>`` attaches the
  :class:`~repro.telemetry.stream.StreamWriter`, spilling every trace
  event and sampled row to JSONL segments on disk during the run.

:func:`config_fingerprint` digests those knobs for the engine's cache
key so runs cached under one telemetry config are never replayed as
another's.
"""

from __future__ import annotations

from repro.telemetry import stream as stream_mod
from repro.telemetry import trace as trace_mod
from repro.telemetry.registry import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricRegistry,
)
from repro.telemetry.sampler import IntervalSampler, interval as sample_interval

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricRegistry",
    "IntervalSampler",
    "TraceRecorder",
    "StreamWriter",
    "Telemetry",
    "config_fingerprint",
]

TraceRecorder = trace_mod.TraceRecorder
StreamWriter = stream_mod.StreamWriter


def config_fingerprint() -> dict:
    """Environment-derived telemetry config, folded into engine cache keys.

    Sampling and tracing change what a ``SimResult`` carries (not the
    simulated outcome), so two runs under different telemetry configs
    must not share a cache slot.  The streaming knobs
    (``REPRO_STREAM_DIR`` & friends) are deliberately **excluded**:
    streaming only changes where telemetry additionally lands on disk,
    never what the run computes or what the result carries, so a
    streamed and an unstreamed run may share a cache slot (like the
    skip setting).  The host-side observability knobs (``REPRO_PERF``,
    ``REPRO_FLEET_DIR``) are excluded for the same reason: perf
    counters land on the ``host_perf`` side channel (host timing, like
    ``wall_seconds``, is never part of the cached outcome) and the
    fleet registry only indexes where streams land.
    """
    return {
        "sample_every": sample_interval(),
        "trace": trace_mod.enabled(),
        "trace_cap": trace_mod.capacity() if trace_mod.enabled() else 0,
    }


class Telemetry:
    """Per-system bundle of registry + optional sampler/trace/stream."""

    __slots__ = ("registry", "sampler", "trace", "stream")

    def __init__(
        self,
        registry: MetricRegistry | None = None,
        sampler: IntervalSampler | None = None,
        trace: TraceRecorder | None = None,
        stream: StreamWriter | None = None,
    ):
        self.registry = registry if registry is not None else MetricRegistry()
        self.sampler = sampler
        self.trace = trace
        self.stream = stream
        if stream is not None:
            if trace is not None:
                trace.writer = stream
            if sampler is not None:
                sampler.emit = stream.sample

    @classmethod
    def from_env(cls) -> "Telemetry":
        every = sample_interval()
        return cls(
            registry=MetricRegistry(),
            sampler=IntervalSampler(every) if every else None,
            trace=TraceRecorder() if trace_mod.enabled() else None,
            stream=StreamWriter.from_env(),
        )

    def bind_sampler(self) -> None:
        """Freeze the sampled-instrument set (after all registrations)."""
        if self.sampler is not None:
            self.sampler.bind(self.registry.sampled_items())

    def begin_stream(self, label: str) -> None:
        """Open the stream directory (after ``bind_sampler``)."""
        if self.stream is not None:
            names = (
                list(self.sampler.series) if self.sampler is not None else []
            )
            self.stream.begin(label, names)
