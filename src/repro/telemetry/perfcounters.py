"""Host-side perf counters for simulator internals (``REPRO_PERF=1``).

The telemetry registry measures the *simulated machine*; this module
measures the *simulator*: how many event-queue callbacks fired, how many
wake-heap entries went stale, how long each engine phase took on the
host clock.  That is the observability the model-batching work is judged
against — ``repro profile --counters`` renders it, ``repro bench``
records it next to wall clock.

Design constraints (enforced by ``tests/test_perfcounters.py``):

* **Compiled out by default.**  With ``REPRO_PERF`` unset no
  :class:`PerfCounters` object is ever constructed and the hot paths see
  only ``perf is None`` / ``clock is None`` branches — zero new
  allocations per cycle (the CI bench-smoke job pins this, and the
  PERF001–003 lint rules stay clean on the instrumented code).
* **Host-side only.**  Counter values and phase times never reach
  ``SimResult.metrics``, the determinism chain, ``result_fingerprint``,
  streamed telemetry bytes, or the engine cache key.  They land on the
  dedicated ``SimResult.host_perf`` side channel, which the fingerprint
  deliberately ignores, so a ``REPRO_PERF=1`` run is bit-identical to an
  unperfed one on every engine.
* **Integer counters, monotonic clock.**  Wall-clock attribution uses
  :func:`repro.util.hostclock.now_ns` — the single sanctioned clock API.
"""

from __future__ import annotations

import os

#: Counter fields, their display order, and what each one counts.
FIELDS = (
    ("visited_cycles", "engine loop iterations (cycles actually visited)"),
    ("event_pushes", "event-queue schedules"),
    ("event_pops", "event-queue callbacks fired"),
    ("heap_pushes", "core wake-heap pushes"),
    ("heap_stale_drops", "core wake-heap lazy invalidations dropped"),
    ("wake_hook_fires", "core wake hooks fired (early un-skips)"),
    ("chan_wake_republishes", "DRAM channel wake republishes"),
    ("skip_windows", "core skip windows entered"),
    ("skip_cycles_planned", "cycles covered by bounded skip windows"),
    ("skip_forever", "skip windows with no self-wake (external only)"),
)

#: Engine-phase keys for wall-clock attribution, in loop order.
PHASES = ("events", "memory", "cores", "telemetry")

_SENTINEL_WAKE = 1 << 61  # skip_until values past this are "forever"


def enabled() -> bool:
    """``REPRO_PERF=1`` turns the counters on (default: off)."""
    return os.environ.get("REPRO_PERF", "") not in ("", "0")


class PerfCounters:
    """One run's host-side counters.  Plain int fields, no containers."""

    __slots__ = tuple(name for name, _ in FIELDS) + tuple(
        f"ns_{phase}" for phase in PHASES
    )

    def __init__(self):
        for name, _ in FIELDS:
            setattr(self, name, 0)
        for phase in PHASES:
            setattr(self, f"ns_{phase}", 0)

    @classmethod
    def from_env(cls) -> "PerfCounters | None":
        """A fresh counter set iff ``REPRO_PERF`` is on, else None."""
        return cls() if enabled() else None

    def note_skip(self, skip_until: int, now: int) -> None:
        """Record one skip window entered at ``now``."""
        self.skip_windows += 1
        if skip_until >= _SENTINEL_WAKE:
            self.skip_forever += 1
        else:
            self.skip_cycles_planned += skip_until - now

    def snapshot(self) -> dict:
        """Plain-data form for ``SimResult.host_perf`` / bench records."""
        counters = {name: getattr(self, name) for name, _ in FIELDS}
        phases = {phase: getattr(self, f"ns_{phase}") for phase in PHASES}
        return {"version": 1, "counters": counters, "phase_ns": phases}


def render(host_perf: dict | None, wall_seconds: float = 0.0) -> str:
    """Human-readable table of a ``SimResult.host_perf`` snapshot."""
    if not host_perf:
        return ("no host perf counters on this result "
                "(run with REPRO_PERF=1 / repro profile --counters)")
    lines = ["host perf counters (REPRO_PERF=1, host-side only):"]
    counters = host_perf.get("counters", {})
    for name, description in FIELDS:
        if name in counters:
            lines.append(f"  {name:<22} {counters[name]:>14,}  {description}")
    phases = host_perf.get("phase_ns", {})
    total_ns = sum(phases.values())
    if total_ns:
        lines.append("")
        lines.append("engine phase wall-clock attribution:")
        for phase in PHASES:
            ns = phases.get(phase, 0)
            share = 100.0 * ns / total_ns
            bar = "#" * max(1, int(share / 2)) if ns else ""
            lines.append(
                f"  {phase:<10} {ns / 1e9:>8.3f}s  {share:>5.1f}%  {bar}"
            )
        if wall_seconds:
            covered = 100.0 * total_ns / 1e9 / wall_seconds
            lines.append(
                f"  (phases cover {covered:.0f}% of {wall_seconds:.3f}s "
                f"total wall; the rest is setup/teardown)"
            )
    return "\n".join(lines)
