"""Command-line interface.

    python -m repro list                       # workloads, schedulers, experiments
    python -m repro run fft --scheduler casras-crit --cbp 64
    python -m repro experiment fig4 [--markdown] [--csv]
    python -m repro experiment all             # regenerate everything
    python -m repro lint [paths...]            # simulator-specific AST lint
    python -m repro analyze [paths...]         # whole-program semantic analysis
    python -m repro check-determinism fft      # cross-mode/-process chains
    python -m repro profile fft                # cProfile + component report
    python -m repro profile fft --engines fast,event   # engine A/B timing
    python -m repro profile fft --counters     # REPRO_PERF counter snapshot
    python -m repro bench --quick              # wall-clock regression suite
    python -m repro bench --compare OLD NEW    # exit 1 on regression
    python -m repro stats fft --sample-every 256   # telemetry summaries
    python -m repro trace fft --out timeline.json  # Chrome/Perfetto trace
    python -m repro trace fft --stream DIR         # stream events while running
    python -m repro trace --from-stream DIR        # finalize a streamed trace
    python -m repro trace --from-stream DIR --follow   # tail raw events live
    python -m repro watch DIR                      # live dashboard of a stream
    python -m repro watch ROOT                     # fleet table (REPRO_FLEET_DIR)
    python -m repro watch ROOT --run ID            # drill into one fleet run

``run`` and ``experiment`` accept engine flags: ``--jobs N`` (worker
processes), ``--no-cache`` (bypass the on-disk result cache),
``--no-skip`` (force the cycle-by-cycle loop), ``--verify-skip``
(run everything twice and assert fast-forwarded results are
bit-identical), and ``--stream DIR`` (spill telemetry to a stream
directory during the run).  Each is the CLI face of the corresponding
``REPRO_*`` environment variable.
"""

from __future__ import annotations

import argparse
import os
import sys


def _apply_engine_flags(args) -> None:
    """Translate engine CLI flags into the env vars the runner reads."""
    if getattr(args, "jobs", None) is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if getattr(args, "no_cache", False):
        os.environ["REPRO_NO_CACHE"] = "1"
    if getattr(args, "no_skip", False):
        os.environ["REPRO_NO_SKIP"] = "1"
    if getattr(args, "engine", None):
        os.environ["REPRO_ENGINE"] = args.engine
    if getattr(args, "verify_skip", False):
        os.environ["REPRO_VERIFY_SKIP"] = "1"
    if getattr(args, "stream", None):
        os.environ["REPRO_STREAM_DIR"] = args.stream


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for batched runs "
                             "(default: all CPUs; env REPRO_JOBS)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache "
                             "(env REPRO_NO_CACHE)")
    parser.add_argument("--no-skip", action="store_true",
                        help="disable cycle fast-forwarding "
                             "(env REPRO_NO_SKIP)")
    parser.add_argument("--engine", default=None,
                        choices=("naive", "fast", "event", "batched"),
                        help="simulation loop: naive cycle-by-cycle, "
                             "fast (skip windows), event (wake heap; "
                             "the default), or batched (windowed "
                             "models) — all bit-identical "
                             "(env REPRO_ENGINE)")
    parser.add_argument("--verify-skip", action="store_true",
                        help="cross-check fast-forwarded runs against the "
                             "cycle-by-cycle loop (env REPRO_VERIFY_SKIP)")
    parser.add_argument("--stream", default=None, metavar="DIR",
                        help="stream telemetry to DIR during the run "
                             "(env REPRO_STREAM_DIR; watch it live with "
                             "`python -m repro watch DIR`)")


def _cmd_list(args) -> int:
    from repro.experiments.registry import EXPERIMENTS
    from repro.sched.registry import SCHEDULERS
    from repro.workloads.multiprog import BUNDLES
    from repro.workloads.parallel import PARALLEL_APP_NAMES

    print("Parallel workloads :", ", ".join(PARALLEL_APP_NAMES))
    print("Bundles            :", ", ".join(sorted(BUNDLES)))
    print("Schedulers         :", ", ".join(sorted(SCHEDULERS)))
    print("Experiments        :", ", ".join(sorted(EXPERIMENTS)))
    return 0


def _cmd_run(args) -> int:
    from repro.config import SimScale
    from repro.sim.runner import run_parallel_workload
    from repro.sim.stats import speedup

    scale = SimScale(
        instructions_per_core=args.instructions,
        warmup_instructions=max(200, args.instructions // 10),
        seed=args.seed,
    )
    spec = ("cbp", {"entries": args.cbp}) if args.cbp else None
    base = run_parallel_workload(args.app, scale=scale)
    result = run_parallel_workload(
        args.app, scheduler=args.scheduler, provider_spec=spec, scale=scale
    )
    print(f"{args.app} / fr-fcfs      : {base.cycles:,} cycles "
          f"(IPC {base.system_ipc:.2f})")
    print(f"{args.app} / {args.scheduler:<12}: {result.cycles:,} cycles "
          f"(IPC {result.system_ipc:.2f})")
    print(f"speedup: {speedup(base, result):.3f}x")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments.registry import EXPERIMENTS, run_experiment
    from repro.sim.report import to_csv, to_markdown

    ids = sorted(EXPERIMENTS) if args.id == "all" else [args.id]
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        if args.markdown:
            print(to_markdown(result))
        elif args.csv:
            print(to_csv(result), end="")
        else:
            print(result.table())
        print()
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.lint import main as lint_main

    argv = list(args.paths)
    if args.list_rules:
        argv.append("--list-rules")
    if args.select:
        argv += ["--select", args.select]
    if args.show_suppressed:
        argv.append("--show-suppressed")
    return lint_main(argv)


def _cmd_analyze(args) -> int:
    from repro.analysis.semantic import main as analyze_main

    argv = list(args.paths)
    if args.list_rules:
        argv.append("--list-rules")
    if args.select:
        argv += ["--select", args.select]
    if args.concurrency:
        argv.append("--concurrency")
    if args.show_suppressed:
        argv.append("--show-suppressed")
    if args.batchability:
        argv += ["--batchability", args.batchability]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.no_cache:
        argv.append("--no-cache")
    return analyze_main(argv)


def _cmd_check_determinism(args) -> int:
    from repro.config import SimScale
    from repro.sim.engine import RunSpec, verify_determinism

    scale = SimScale(
        instructions_per_core=args.instructions,
        warmup_instructions=max(200, args.instructions // 10),
        seed=args.seed,
    )
    spec = RunSpec(
        kind="parallel", workload=args.app, scheduler=args.scheduler, scale=scale
    )
    report = verify_determinism(spec, subprocess=not args.no_subprocess)
    chain = report["chain"]
    chain_text = f"{chain:#018x}" if chain is not None else "disabled"
    print(f"{report['label']}: {report['cycles']:,} cycles, chain {chain_text}")
    for entry in report["runs"]:
        verdict = "ok" if entry["ok"] else "DIVERGED"
        line = f"  vs {entry['name']:<20}: {verdict}"
        if not entry["ok"]:
            where = entry.get("first_divergence")
            if where:
                line += f" (first divergence at cycle {where['cycle']})"
            else:
                line += " (chains agree; divergence is in statistics)"
        print(line)
    if not report["ok"]:
        print("determinism check FAILED")
        return 1
    print("determinism check passed")
    return 0


def _run_for_telemetry(args):
    """Run one workload for the stats/trace commands; returns the result."""
    from repro.config import SimScale
    from repro.sim.runner import run_parallel_workload

    scale = SimScale(
        instructions_per_core=args.instructions,
        warmup_instructions=max(200, args.instructions // 10),
        seed=args.seed,
    )
    spec = ("cbp", {"entries": args.cbp}) if args.cbp else None
    return run_parallel_workload(
        args.app, scheduler=args.scheduler, provider_spec=spec, scale=scale
    )


def _cmd_stats(args) -> int:
    from repro.sim.report import (
        histogram_ascii,
        telemetry_markdown,
        timeseries_to_csv,
    )

    if args.sample_every:
        os.environ["REPRO_SAMPLE_EVERY"] = str(args.sample_every)
    # Telemetry config is part of the cache key, but a run cached before
    # this command existed would satisfy the spec without series; bypass.
    os.environ.setdefault("REPRO_NO_CACHE", "1")
    result = _run_for_telemetry(args)

    if args.csv:
        print(timeseries_to_csv(result), end="")
        return 0

    print(f"{result.label}: {result.cycles:,} cycles, "
          f"IPC {result.system_ipc:.2f}")
    print()
    print(telemetry_markdown(result))
    if args.shapes:
        for name, value in result.metrics.items():
            if isinstance(value, dict) and "buckets" in value:
                print(f"\n{name}:")
                print(histogram_ascii(value))
    if result.sample_cycles:
        print(f"\n{len(result.sample_cycles)} samples x "
              f"{len(result.timeseries)} series "
              f"(every {args.sample_every or 'REPRO_SAMPLE_EVERY'} cycles); "
              f"use --csv to dump them")
    if result.trace_dropped:
        print(f"warning: event-trace ring wrapped — the oldest "
              f"{result.trace_dropped:,} events were dropped, so the "
              f"trace covers only a tail window of the run (metrics "
              f"above are unaffected); stream with REPRO_STREAM_DIR to "
              f"keep every event", file=sys.stderr)
    return 0


def _cmd_trace(args) -> int:
    import json

    from repro.telemetry import stream as stream_mod
    from repro.telemetry.trace import (
        to_chrome_trace,
        to_jsonl,
        validate_chrome_trace,
    )

    if args.from_stream:
        from repro.telemetry import fleet

        if fleet.is_fleet_root(args.from_stream):
            # a registry root holds many runs' streams, not one stream
            runs = ", ".join(
                e["run_id"]
                for e in fleet.RunRegistry(args.from_stream).entries()
            ) or "(none registered yet)"
            print(f"error: {args.from_stream} is a fleet registry root, "
                  f"not a stream directory; pass one of its runs "
                  f"instead: {runs}", file=sys.stderr)
            return 1
        if args.follow:
            from repro.telemetry.monitor import follow_events

            return follow_events(args.from_stream)
        try:
            summary = stream_mod.finalize_chrome(
                args.from_stream, args.out, allow_torn=args.allow_torn
            )
        except stream_mod.StreamError as exc:
            # torn tails and corrupt directories are user-facing
            # conditions, not bugs: report them, don't traceback
            print(f"error: {exc}", file=sys.stderr)
            return 1
        suffix = (" (torn tail skipped)"
                  if summary["status"] != "complete" else "")
        print(f"{summary['events']} streamed events -> {args.out}{suffix} "
              f"(load in Perfetto / chrome://tracing)")
        return 0

    if not args.app:
        print("error: an app is required unless --from-stream is given",
              file=sys.stderr)
        return 2
    os.environ["REPRO_TRACE"] = "1"
    if args.cap:
        os.environ["REPRO_TRACE_CAP"] = str(args.cap)
    os.environ.setdefault("REPRO_NO_CACHE", "1")
    result = _run_for_telemetry(args)

    doc = to_chrome_trace(
        result.trace_events, label=result.label,
        dropped=result.trace_dropped,
    )
    problems = validate_chrome_trace(doc)
    if problems:
        for problem in problems:
            print(f"invalid trace event: {problem}", file=sys.stderr)
        return 1
    with open(args.out, "w") as fh:
        json.dump(doc, fh)
    dropped = f" ({result.trace_dropped} dropped)" if result.trace_dropped else ""
    print(f"{len(result.trace_events)} events{dropped} -> {args.out} "
          f"(load in Perfetto / chrome://tracing)")
    if result.trace_dropped:
        stream_hint = (
            f" — rerun with --stream DIR then "
            f"`trace --from-stream DIR` to keep every event"
        )
        print(f"warning: ring wrapped; {args.out} is a tail window "
              f"(otherData.truncated = true){stream_hint}",
              file=sys.stderr)
    if args.jsonl:
        with open(args.jsonl, "w") as fh:
            fh.write(to_jsonl(result.trace_events))
        print(f"raw events -> {args.jsonl}")
    return 0


def _cmd_profile(args) -> int:
    from repro.sim.profile import main as profile_main

    return profile_main(args)


def _cmd_watch(args) -> int:
    from repro.telemetry.monitor import watch

    return watch(
        args.dir,
        interval=args.interval,
        once=args.once,
        frames=args.frames,
        run=args.run,
    )


def _cmd_bench(args) -> int:
    from repro.bench import main as bench_main

    return bench_main(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Criticality-aware memory scheduling (ISCA 2013) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, schedulers, experiments")

    run_p = sub.add_parser("run", help="run one parallel workload")
    run_p.add_argument("app")
    run_p.add_argument("--scheduler", default="casras-crit")
    run_p.add_argument("--cbp", type=int, default=64,
                       help="CBP entries (0 disables the predictor)")
    run_p.add_argument("--instructions", type=int, default=12_000)
    run_p.add_argument("--seed", type=int, default=1)
    _add_engine_flags(run_p)

    exp_p = sub.add_parser("experiment", help="regenerate a figure/table")
    exp_p.add_argument("id", help="experiment id (e.g. fig4) or 'all'")
    exp_p.add_argument("--markdown", action="store_true")
    exp_p.add_argument("--csv", action="store_true")
    _add_engine_flags(exp_p)

    lint_p = sub.add_parser(
        "lint", help="run the simulator-specific AST lint pass"
    )
    lint_p.add_argument("paths", nargs="*",
                        help="files or directories (default: src/repro)")
    lint_p.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run")
    lint_p.add_argument("--list-rules", action="store_true")
    lint_p.add_argument("--show-suppressed", action="store_true")

    analyze_p = sub.add_parser(
        "analyze",
        help="run the whole-program semantic analyzer (cycle domains, "
             "det-state coverage, scheduler contracts, effect/purity "
             "certificates, process-safety contracts)",
    )
    analyze_p.add_argument("paths", nargs="*",
                           help="files or directories (default: src/repro)")
    analyze_p.add_argument("--select", default=None, metavar="IDS",
                           help="comma-separated rule ids to run")
    analyze_p.add_argument("--concurrency", action="store_true",
                           help="run only the process-safety rules "
                                "(CONC001–CONC005)")
    analyze_p.add_argument("--list-rules", action="store_true")
    analyze_p.add_argument("--show-suppressed", action="store_true")
    analyze_p.add_argument("--batchability", default=None, metavar="PATH",
                           help="also write batchability.json to PATH")
    analyze_p.add_argument("--cache-dir", default=None, metavar="DIR",
                           help="incremental analysis cache directory")
    analyze_p.add_argument("--no-cache", action="store_true")

    stats_p = sub.add_parser(
        "stats", help="run one workload and print telemetry summaries"
    )
    stats_p.add_argument("app")
    stats_p.add_argument("--scheduler", default="fr-fcfs")
    stats_p.add_argument("--cbp", type=int, default=64,
                         help="CBP entries (0 disables the predictor)")
    stats_p.add_argument("--instructions", type=int, default=8_000)
    stats_p.add_argument("--seed", type=int, default=1)
    stats_p.add_argument("--sample-every", type=int, default=0, metavar="N",
                         help="interval-sample every N cycles "
                              "(env REPRO_SAMPLE_EVERY)")
    stats_p.add_argument("--csv", action="store_true",
                         help="dump the sampled time-series as CSV")
    stats_p.add_argument("--shapes", action="store_true",
                         help="print ASCII histogram shapes")
    _add_engine_flags(stats_p)

    trace_p = sub.add_parser(
        "trace", help="run one workload with the event trace enabled"
    )
    trace_p.add_argument("app", nargs="?", default=None,
                         help="workload to run (omit with --from-stream)")
    trace_p.add_argument("--scheduler", default="fr-fcfs")
    trace_p.add_argument("--cbp", type=int, default=64,
                         help="CBP entries (0 disables the predictor)")
    trace_p.add_argument("--instructions", type=int, default=4_000)
    trace_p.add_argument("--seed", type=int, default=1)
    trace_p.add_argument("--out", default="timeline.json",
                         help="Chrome trace_event JSON output path")
    trace_p.add_argument("--jsonl", default=None, metavar="PATH",
                         help="also write raw events as JSON lines")
    trace_p.add_argument("--cap", type=int, default=0, metavar="N",
                         help="ring-buffer capacity (env REPRO_TRACE_CAP)")
    trace_p.add_argument("--from-stream", default=None, metavar="DIR",
                         help="finalize a streamed run's JSONL segments "
                              "into --out instead of running anything")
    trace_p.add_argument("--follow", action="store_true",
                         help="with --from-stream: tail raw event lines "
                              "from a live stream instead of exporting")
    trace_p.add_argument("--allow-torn", action="store_true",
                         help="with --from-stream: export the sealed "
                              "prefix of an unfinished/crashed stream")
    _add_engine_flags(trace_p)

    watch_p = sub.add_parser(
        "watch",
        help="live dashboard over a streaming run's sampled series",
    )
    watch_p.add_argument("dir", help="the run's REPRO_STREAM_DIR")
    watch_p.add_argument("--interval", type=float, default=1.0,
                         metavar="SECONDS", help="refresh period")
    watch_p.add_argument("--once", action="store_true",
                         help="render a single frame and exit")
    watch_p.add_argument("--frames", type=int, default=None, metavar="N",
                         help="exit after N refreshes (for CI)")
    watch_p.add_argument("--run", default=None, metavar="ID",
                         help="with a fleet root (REPRO_FLEET_DIR): drill "
                              "down into one registered run by id or label")

    bench_p = sub.add_parser(
        "bench",
        help="run the wall-clock regression suite, or compare two records",
    )
    bench_p.add_argument("--quick", action="store_true",
                         help="CI smoke subset: fewer cells, repeats, and "
                              "instructions")
    bench_p.add_argument("--repeats", type=int, default=None, metavar="N",
                         help="runs per cell (default 3, --quick 2)")
    bench_p.add_argument("--instructions", type=int, default=None,
                         metavar="N",
                         help="instructions per core "
                              "(default 8000, --quick 3000)")
    bench_p.add_argument("--seed", type=int, default=1)
    bench_p.add_argument("--cells", default=None, metavar="A,B,...",
                         help="comma-separated subset of suite cell names")
    bench_p.add_argument("--out", default=None, metavar="PATH",
                         help="record path (default: next free "
                              "BENCH_<n>.json)")
    bench_p.add_argument("--compare", nargs=2, default=None,
                         metavar=("OLD", "NEW"),
                         help="compare two bench records instead of "
                              "running; exit 1 on regression")
    bench_p.add_argument("--threshold", type=float, default=0.25,
                         metavar="FRAC",
                         help="relative slowdown treated as regression "
                              "(default 0.25)")

    prof_p = sub.add_parser(
        "profile",
        help="profile one workload run and attribute time per component",
    )
    prof_p.add_argument("app", help="parallel workload to profile")
    prof_p.add_argument("--scheduler", default="fr-fcfs")
    prof_p.add_argument("--cbp", type=int, default=0,
                        help="CBP entries (0 disables the predictor)")
    prof_p.add_argument("--instructions", type=int, default=12_000)
    prof_p.add_argument("--seed", type=int, default=1)
    prof_p.add_argument("--top", type=int, default=15, metavar="N",
                        help="top functions to list by tottime")
    prof_p.add_argument("--engine", default=None,
                        choices=("naive", "fast", "event", "batched"),
                        help="loop implementation to profile "
                             "(env REPRO_ENGINE)")
    prof_p.add_argument("--engines", default=None, metavar="A,B,...",
                        help="instead of profiling, time one run per "
                             "engine and report speedups vs naive + "
                             "identity ('all' enumerates every "
                             "registered engine)")
    prof_p.add_argument("--counters", action="store_true",
                        help="instead of cProfile, run once with "
                             "REPRO_PERF=1 and render the host "
                             "perf-counter snapshot")
    prof_p.add_argument("--json", default=None, metavar="PATH",
                        help="also write the report as JSON")

    det_p = sub.add_parser(
        "check-determinism",
        help="compare determinism hash-chains across loop modes and processes",
    )
    det_p.add_argument("app", help="parallel workload to check")
    det_p.add_argument("--scheduler", default="fr-fcfs")
    det_p.add_argument("--instructions", type=int, default=4_000)
    det_p.add_argument("--seed", type=int, default=1)
    det_p.add_argument("--no-subprocess", action="store_true",
                       help="skip the fresh-subprocess comparison")
    det_p.add_argument("--engine", default=None,
                       choices=("naive", "fast", "event", "batched"),
                       help="reference loop for the comparison "
                            "(env REPRO_ENGINE)")

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    _apply_engine_flags(args)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "lint": _cmd_lint,
        "analyze": _cmd_analyze,
        "stats": _cmd_stats,
        "trace": _cmd_trace,
        "watch": _cmd_watch,
        "bench": _cmd_bench,
        "profile": _cmd_profile,
        "check-determinism": _cmd_check_determinism,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
