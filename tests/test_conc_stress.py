"""Multiprocess stress gates from ``tools/conc_stress.py``, run in-tree.

The analyzer (``analyze --concurrency``) certifies the persistence
contract statically; these tests race real processes against the real
writers to certify it at runtime:

* the engine disk cache survives two processes racing one ``RunSpec``
  (one complete pickle, identical fingerprints — satellite of the
  ``store_cached`` atomic-replace conversion);
* a SIGKILL mid-``write_json`` leaves the old-or-new snapshot, never a
  partial (mirrors ``test_stream_crash.py`` for the manifest path);
* simultaneous fleet registrations all land with a parse-clean
  ``INDEX.json``;
* concurrent ``REPRO_RUN_LOG``-style appenders never tear or drop a
  record (regression for the buffered-append ``_write_run_log`` bug).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "conc_stress", REPO / "tools" / "conc_stress.py"
)
conc_stress = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("conc_stress", conc_stress)
_spec.loader.exec_module(conc_stress)


pytestmark = pytest.mark.skipif(
    not hasattr(sys, "executable") or not sys.executable,
    reason="needs a spawnable interpreter",
)


def test_cache_race_single_clean_slot(tmp_path):
    errors = conc_stress.check_cache_race(tmp_path)
    assert errors == []


def test_sigkill_mid_write_leaves_old_or_new(tmp_path):
    errors = conc_stress.check_sigkill_mid_write(tmp_path, kills=3)
    assert errors == []


def test_concurrent_fleet_registrations_all_land(tmp_path):
    errors = conc_stress.check_fleet_registrations(tmp_path, writers=4)
    assert errors == []


def test_run_log_appenders_never_interleave(tmp_path):
    errors = conc_stress.check_run_log_interleaving(
        tmp_path, writers=4, records=25
    )
    assert errors == []
