"""AHB, PAR-BS, TCM, TCM+Crit, MORSE: unit behaviour."""

import pytest

from repro.dram.addressmap import DramLocation
from repro.dram.command import CandidateCommand, CommandKind
from repro.dram.transaction import Transaction
from repro.sched.ahb import AhbScheduler
from repro.sched.morse import CritRlScheduler, MorseScheduler
from repro.sched.parbs import ParBsScheduler
from repro.sched.tcm import TcmScheduler
from repro.sched.tcm_crit import TcmCritScheduler


class FakeController:
    def __init__(self, reads=(), writes=()):
        self.read_queue = list(reads)
        self.write_queue = list(writes)
        self.banks = [[_FakeBank() for _ in range(8)] for _ in range(4)]

    class config:
        row_idle_precharge_cycles = 12


class _FakeBank:
    open_row = None


def txn(seq, core=0, rank=0, bank=0, row=0, is_write=False, critical=False,
        magnitude=0):
    t = Transaction(0, DramLocation(0, rank, bank, row, 0), is_write=is_write,
                    core=core, critical=critical, magnitude=magnitude)
    t.seq = seq
    t.arrival = 0
    return t


def cas(t):
    return CandidateCommand(
        CommandKind.WRITE if t.is_write else CommandKind.READ,
        t, t.loc.rank, t.loc.bank, t.loc.row,
    )


def ras(t):
    return CandidateCommand(CommandKind.ACTIVATE, t, t.loc.rank, t.loc.bank,
                            t.loc.row)


class TestParBs:
    def test_batch_marks_up_to_cap_per_thread_bank(self):
        sched = ParBsScheduler(marking_cap=2)
        txns = [txn(i, core=0, bank=0) for i in range(5)]
        ctrl = FakeController(txns)
        sched.select([cas(txns[0])], ctrl, 0)
        marked = [t for t in txns if t.marked]
        assert len(marked) == 2
        assert [t.seq for t in marked] == [0, 1]  # oldest first

    def test_marked_prioritised_over_unmarked(self):
        sched = ParBsScheduler(marking_cap=1)
        a = txn(1, core=0, bank=0)
        b = txn(2, core=0, bank=0)
        ctrl = FakeController([a, b])
        chosen = sched.select([cas(a), cas(b)], ctrl, 0)
        assert chosen.txn is a
        # b is unmarked until the next batch forms.
        assert a.marked and not b.marked

    def test_shortest_job_first_ranking(self):
        sched = ParBsScheduler(marking_cap=5)
        heavy = [txn(i, core=0, bank=0) for i in range(4)]
        light = [txn(10, core=1, bank=1)]
        ctrl = FakeController(heavy + light)
        sched._form_batch(ctrl)
        assert sched._rank[1] < sched._rank[0]

    def test_new_batch_when_drained(self):
        sched = ParBsScheduler(marking_cap=5)
        a = txn(1, core=0)
        ctrl = FakeController([a])
        sched.select([cas(a)], ctrl, 0)
        first = sched.batches_formed
        ctrl.read_queue = [txn(2, core=0)]
        sched.select([cas(ctrl.read_queue[0])], ctrl, 1)
        assert sched.batches_formed == first + 1

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            ParBsScheduler(marking_cap=0)


class TestTcm:
    def test_latency_cluster_prioritised(self):
        sched = TcmScheduler(quantum=10, threads=2)
        # Core 1 is intense, core 0 is light.
        for i in range(20):
            sched.on_enqueue(txn(i, core=1), 0)
        sched.on_enqueue(txn(100, core=0), 0)
        sched._recluster(0)
        assert 0 in sched._latency_cluster
        assert 1 not in sched._latency_cluster
        a = txn(200, core=0)
        b = txn(150, core=1)
        ctrl = FakeController([a, b])
        chosen = sched.select([cas(a), cas(b)], ctrl, 20)
        assert chosen.txn is a  # latency cluster wins despite being younger

    def test_shuffle_rotates_bw_ranks(self):
        sched = TcmScheduler(threads=4)
        sched._bw_order = [0, 1, 2, 3]
        sched._shuffle(0)
        assert sched._bw_order == [1, 2, 3, 0]
        assert sched.shuffles == 1

    def test_invalid_share(self):
        with pytest.raises(ValueError):
            TcmScheduler(latency_cluster_share=1.5)


class TestTcmCrit:
    def test_criticality_breaks_intra_rank_ties(self):
        sched = TcmCritScheduler(threads=2)
        a = txn(1, core=0)
        b = txn(2, core=0, critical=True, magnitude=500)
        ctrl = FakeController([a, b])
        chosen = sched.select([cas(a), cas(b)], ctrl, 0)
        assert chosen.txn is b

    def test_thread_rank_still_primary(self):
        sched = TcmCritScheduler(quantum=10, threads=2)
        for i in range(20):
            sched.on_enqueue(txn(i, core=1), 0)
        sched.on_enqueue(txn(100, core=0), 0)
        sched._recluster(0)
        lat = txn(200, core=0)
        crit_bw = txn(150, core=1, critical=True, magnitude=999)
        ctrl = FakeController([lat, crit_bw])
        chosen = sched.select([cas(lat), cas(crit_bw)], ctrl, 20)
        assert chosen.txn is lat


class TestAhb:
    def test_prefers_same_rank_as_history(self):
        sched = AhbScheduler()
        prev = txn(0, rank=1)
        sched.on_command(cas(prev), 0)
        same = txn(1, rank=1)
        other = txn(2, rank=2)
        ctrl = FakeController([same, other])
        chosen = sched.select([cas(other), cas(same)], ctrl, 0)
        assert chosen.txn is same

    def test_cas_always_beats_ras(self):
        sched = AhbScheduler()
        a = txn(1, rank=0)
        b = txn(2, rank=0)
        ctrl = FakeController([a, b])
        chosen = sched.select([ras(a), cas(b)], ctrl, 0)
        assert chosen.is_cas

    def test_mix_matching_tracks_arrivals(self):
        sched = AhbScheduler()
        for i in range(10):
            sched.on_enqueue(txn(i, is_write=True), 0)
        # Issuing a write should now reduce mix error vs a read.
        assert sched._mix_error(True) < sched._mix_error(False)


class TestMorse:
    def test_commands_checked_limits_to_oldest(self):
        sched = MorseScheduler(commands_checked=2, epsilon=0.0)
        txns = [txn(i) for i in range(5)]
        ctrl = FakeController(txns)
        chosen = sched.select([cas(t) for t in txns], ctrl, 0)
        assert chosen.txn.seq <= 1

    def test_learning_updates_weights(self):
        sched = MorseScheduler(epsilon=0.0)
        a = txn(1)
        ctrl = FakeController([a])
        sched.select([cas(a)], ctrl, 0)
        b = txn(2)
        ctrl2 = FakeController([b])
        sched.select([cas(b)], ctrl2, 10)
        assert sched.decisions == 2
        assert any(w != 0 for w in sched._weights.values())

    def test_prior_prefers_cas(self):
        sched = MorseScheduler(epsilon=0.0)
        a = txn(1)
        b = txn(2)
        ctrl = FakeController([a, b])
        chosen = sched.select([ras(a), cas(b)], ctrl, 0)
        assert chosen.is_cas

    def test_deterministic_given_seed(self):
        def run():
            sched = MorseScheduler(seed=5)
            picks = []
            for i in range(50):
                ts = [txn(i * 3 + k, core=k) for k in range(3)]
                ctrl = FakeController(ts)
                picks.append(sched.select([cas(t) for t in ts], ctrl, i).txn.seq)
            return picks
        assert run() == run()

    def test_crit_rl_uses_criticality_feature(self):
        sched = CritRlScheduler(epsilon=0.0)
        assert sched.use_criticality
        plain = txn(1)
        crit = txn(2, critical=True, magnitude=1000)
        ctrl = FakeController([plain, crit])
        chosen = sched.select([cas(plain), cas(crit)], ctrl, 0)
        assert chosen.txn is crit

    def test_invalid_commands_checked(self):
        with pytest.raises(ValueError):
            MorseScheduler(commands_checked=0)
