"""Refresh scheduling details and starvation-adjacent controller behaviour."""

import pytest

from repro.config import DDR3_2133, DramConfig
from repro.dram.controller import MemorySystem
from repro.sched.frfcfs import FrFcfsScheduler


def make_memsys(**kw):
    return MemorySystem(DramConfig(**kw), lambda c: FrFcfsScheduler())


class TestRefreshCadence:
    def test_refresh_rate_matches_trefi(self):
        memsys = make_memsys(ranks_per_channel=2)
        interval = DDR3_2133.refresh_interval_cycles
        horizon = interval * 10
        for cycle in range(horizon * 4):
            memsys.step(cycle)
        for ch in memsys.channels:
            # ~10 refreshes per rank, 2 ranks (first is staggered later).
            assert 14 <= ch.stats.refreshes <= 22

    def test_refresh_precharges_open_banks_first(self):
        memsys = make_memsys(ranks_per_channel=1)
        # Open a row just before the refresh deadline.
        interval = DDR3_2133.refresh_interval_cycles
        open_at = (interval - 30) * 4
        txn = memsys.make_transaction(0, core=0)
        done = []
        txn.callback = lambda d: done.append(d)
        for cycle in range(open_at):
            memsys.step(cycle)
        memsys.try_enqueue(txn, open_at)
        for cycle in range(open_at, (interval + 400) * 4):
            memsys.step(cycle)
        ch = memsys.channels[0]
        assert done
        assert ch.stats.refreshes >= 1
        # The refresh had to close the open row: at least one precharge.
        assert ch.stats.precharges >= 1


class TestBankBlockedDuringRefresh:
    def test_read_after_refresh_waits_trfc(self):
        memsys = make_memsys(ranks_per_channel=1)
        interval = DDR3_2133.refresh_interval_cycles
        # Let the first refresh fire on an idle channel.
        fire_window = (interval + 20) * 4
        for cycle in range(fire_window):
            memsys.step(cycle)
        ch = memsys.channels[0]
        assert ch.stats.refreshes == 1
        # A read right after the REF must wait out tRFC: its total
        # latency exceeds the uncontended service time.
        txn = memsys.make_transaction(0, core=0)
        done = []
        txn.callback = lambda d: done.append(d)
        memsys.try_enqueue(txn, fire_window)
        cycle = fire_window
        while not done and cycle < fire_window + 4 * 1000:
            memsys.step(cycle)
            cycle += 1
        t = DDR3_2133
        uncontended = t.tRCD + t.tCL + t.burst_cycles
        latency = done[0] - fire_window // 4
        assert latency >= uncontended
