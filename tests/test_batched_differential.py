"""Differential and property harness for the batched (windowed) engine.

The fourth engine (``--engine batched``) steps the core and DRAM models
over whole ready-windows instead of cycle by cycle, citing the
batchability certificates of PR 7 at every shortcut site.  This module
is the gate that keeps it honest:

* **Four-engine differential** — det-chain, ``result_fingerprint``, and
  byte-identical streamed telemetry for naive/fast/event/batched across
  every registered scheduler, with the batched run additionally
  instrumented by ``REPRO_VERIFY_EFFECTS=1`` (runtime purity brackets
  around every certified hook).
* **Hypothesis properties** — randomly generated traces driven through
  `OutOfOrderCore.step_window` with random window spans (including
  spans cut short by mid-window wakes from the event queue and the DRAM
  wake schedule) must be bit-equal to the per-cycle reference; the DRAM
  side's `next_wake_window` promises are checked against per-cycle
  stepping, and the incrementally maintained cache det_state words are
  re-validated against the full-scan reference after every run.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.hierarchy import MemoryHierarchy
from repro.config import SimScale, SystemConfig
from repro.core.cbp import CbpMetric
from repro.core.provider import CbpProvider, CriticalityProvider
from repro.cpu.core import OutOfOrderCore
from repro.cpu.instruction import BRANCH, FP, INT, LOAD, STORE, Trace
from repro.dram.controller import MemorySystem
from repro.sched.frfcfs import FrFcfsScheduler
from repro.sched.registry import SCHEDULERS
from repro.sim.stats import _stat_items, result_fingerprint
from repro.sim.system import System
from repro.sim.events import EventQueue
from repro.workloads.parallel import parallel_traces

SCALE = SimScale(instructions_per_core=400, warmup_instructions=0, seed=11)

ENGINES = ("naive", "fast", "event", "batched")


def _provider_for(scheduler: str):
    if "crit" in scheduler or scheduler == "minimalist":
        return ("cbp", {"entries": 64})
    return None


def _make_system(scheduler="fr-fcfs"):
    config = SystemConfig.parallel_default()
    traces = parallel_traces(
        "fft", config.cores, SCALE.instructions_per_core, seed=SCALE.seed
    )
    return System(
        config, traces, scheduler=scheduler,
        provider_spec=_provider_for(scheduler),
    )


def _stream_digest(directory) -> dict[str, str]:
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(Path(directory).glob("*.jsonl"))
    }


@pytest.fixture
def telemetry_on(monkeypatch):
    monkeypatch.setenv("REPRO_SAMPLE_EVERY", "64")
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


# --------------------------------------------------- four-engine identity


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_all_four_engines_bit_identical_for_every_scheduler(
    telemetry_on, tmp_path, monkeypatch, scheduler
):
    """naive == fast == event == batched: det-chain, fingerprint, bytes.

    The batched leg runs with the runtime effect checker on, so every
    window-invariance certificate it leans on is re-verified while the
    identity is proven.
    """
    results = {}
    digests = {}
    for engine in ENGINES:
        stream_dir = tmp_path / engine
        monkeypatch.setenv("REPRO_STREAM_DIR", str(stream_dir))
        if engine == "batched":
            monkeypatch.setenv("REPRO_VERIFY_EFFECTS", "1")
            monkeypatch.setenv("REPRO_VERIFY_EFFECTS_EVERY", "5")
        else:
            monkeypatch.delenv("REPRO_VERIFY_EFFECTS", raising=False)
        results[engine] = _make_system(scheduler).run(engine=engine)
        digests[engine] = _stream_digest(stream_dir)
    reference = results["naive"]
    fingerprint = result_fingerprint(reference)
    assert digests["naive"], "streaming produced no segments"
    for engine in ("fast", "event", "batched"):
        other = results[engine]
        assert other.det_chain == reference.det_chain, engine
        assert result_fingerprint(other) == fingerprint, engine
        assert digests[engine] == digests["naive"], engine


class TestBatchedCapAndBoundaries:
    """Caps and fold points landing inside planned windows."""

    def _run(self, engine, cap, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        return _make_system().run(max_cycles=cap, engine=engine)

    @pytest.mark.parametrize("cap", (257, 500))
    def test_cap_inside_a_window(self, telemetry_on, monkeypatch, cap):
        """A max_cycles cap must clamp windows exactly, including caps
        that land mid-stride on no fold boundary (257 is prime)."""
        naive = self._run("naive", cap, monkeypatch)
        batched = self._run("batched", cap, monkeypatch)
        assert naive.hit_max_cycles and batched.hit_max_cycles
        assert naive.cycles == batched.cycles == cap
        assert result_fingerprint(naive) == result_fingerprint(batched)

    def test_chain_boundary_equals_window_end(self, monkeypatch):
        """Det-chain fold points may only sit at a window's final cycle;
        a cap on a chain sample cycle exercises exactly that edge."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setenv("REPRO_DETCHAIN_EVERY", "128")
        results = [
            _make_system().run(max_cycles=256, engine=engine)
            for engine in ("naive", "batched")
        ]
        assert all(r.hit_max_cycles for r in results)
        assert len({r.det_chain for r in results}) == 1
        assert len({len(r.det_checkpoints) for r in results}) == 1

    def test_incremental_cache_det_state_matches_scan(self):
        system = _make_system("crit-casras")
        system.run(engine="batched")
        caches = list(system.hierarchy.l1) + [system.hierarchy.l2]
        for cache in caches:
            assert cache.det_state() == cache.det_state_scan()


# ------------------------------------------------- property-based harness


class _SoloHarness:
    """One core on a private hierarchy/DRAM, driven cycle by cycle.

    Mirrors the naive engine's per-cycle phase order (events, memory,
    core) so windowed and per-cycle stepping can be compared in
    isolation from the engine loop.
    """

    def __init__(self, trace, provider=None):
        self.config = SystemConfig(cores=1)
        self.events = EventQueue()
        self.memory = MemorySystem(self.config.dram, lambda c: FrFcfsScheduler())
        self.hier = MemoryHierarchy(self.config, self.memory, self.events)
        self.now = 0
        self.hier.bind_clock(lambda: self.now)
        self.core = OutOfOrderCore(
            0, self.config.core, trace, self.hier,
            provider or CriticalityProvider(), self.events,
        )

    def state(self):
        """Everything the differential asserts on: architectural words
        plus the full statistics surface (settled)."""
        return (
            self.now,
            tuple(self.core.det_state()),
            _stat_items(self.core.stats),
            tuple(
                tuple(ch.det_state()) for ch in self.memory.channels
            ),
            tuple(_stat_items(ch.stats) for ch in self.memory.channels),
            _stat_items(self.hier.stats),
        )

    def run_reference(self, max_cycles, check_wake_promises=False):
        """Per-cycle stepping; optionally audit next_wake_window promises.

        With ``check_wake_promises`` each DRAM edge first asks every
        channel for its windowed wake; edges strictly inside a promised
        quiet span must then leave that channel's det_state untouched —
        the soundness contract the batched engine relies on.  A new
        enqueue voids the promise (the engine re-registers the wake via
        ``try_enqueue``), so promises only bind while the channel's
        queue contents are unchanged since the promise was made.
        """
        ratio = self.memory._ratio
        channels = self.memory.channels
        promised = [0] * len(channels)
        pend_at_promise = [c.pending() for c in channels]
        while not self.core.done and self.now < max_cycles:
            now = self.now
            self.events.run_due(now)
            if check_wake_promises and now % ratio == 0:
                dram_now = now // ratio
                before = None
                quiet = [
                    i for i in range(len(channels))
                    if dram_now < promised[i]
                    and channels[i].pending() == pend_at_promise[i]
                ]
                if quiet:
                    before = {i: channels[i].det_state() for i in quiet}
                self.memory.step(now)
                if quiet:
                    for i in quiet:
                        assert channels[i].det_state() == before[i], (
                            f"channel {i} acted at dram cycle {dram_now} "
                            f"inside a span next_wake_window promised "
                            f"quiet (until {promised[i]})"
                        )
                for i, channel in enumerate(channels):
                    promised[i] = channel.next_wake_window(dram_now)
                    pend_at_promise[i] = channel.pending()
            else:
                self.memory.step(now)
            self.core.step(now)
            self.now = now + 1
        # No settle_idle here: the per-cycle loop samples every edge
        # eagerly, exactly like the naive engine (which never settles).

    def run_windowed(self, spans, max_cycles):
        """Advance via step_window with externally chosen span requests.

        Each requested span is clamped exactly as the batched engine
        clamps it — to the next due event and the DRAM wake — so random
        spans explore every legal window boundary, including windows cut
        short by mid-window wakes.
        """
        self.memory._batched = True
        core = self.core
        i = 0
        while not core.done and self.now < max_cycles:
            now = self.now
            self.events.run_due(now)
            self.memory.step_window(now)
            span = spans[i % len(spans)]
            i += 1
            target = now + span
            wake = self.memory.wake_cpu(now)
            if wake < target:
                target = wake
            due = self.events.next_cycle()
            if due is not None and due < target:
                target = due
            if target > max_cycles:
                target = max_cycles
            if target > now + 1:
                consumed = core.step_window(now, target)
            else:
                core.step(now)
                consumed = 1
            self.now = now + consumed
        self.memory.settle_idle(self.now)


#: (kind, pc, page, dep1) — dependencies as backward distances, pages
#: spread far enough apart that loads miss to DRAM.
_instruction = st.tuples(
    st.sampled_from(["int", "fp", "load", "store", "branch", "misp"]),
    st.integers(0, 31),
    st.integers(0, 24),
    st.integers(0, 3),
)


def _build_trace(items) -> Trace:
    trace = Trace("prop")
    for kind, pc, page, dep in items:
        addr = (page << 14) | ((pc * 64) & 0x3FC0)
        if kind == "int":
            trace.append(INT, pc, 0, dep)
        elif kind == "fp":
            trace.append(FP, pc, 0, dep)
        elif kind == "load":
            trace.append(LOAD, pc, addr, dep)
        elif kind == "store":
            trace.append(STORE, pc, addr, dep)
        else:
            trace.append(BRANCH, pc, 0, dep, misp=(kind == "misp"))
    return trace


_CYCLE_BUDGET = 60_000


@settings(max_examples=25, deadline=None)
@given(
    items=st.lists(_instruction, min_size=20, max_size=120),
    spans=st.lists(st.integers(1, 96), min_size=1, max_size=16),
)
def test_windowed_core_stepping_equals_per_cycle(items, spans):
    """step_window over random spans == step over every cycle, bit for
    bit: core det_state, all statistics, channel state, run length."""
    reference = _SoloHarness(_build_trace(items))
    windowed = _SoloHarness(_build_trace(items))
    reference.run_reference(_CYCLE_BUDGET)
    windowed.run_windowed(spans, _CYCLE_BUDGET)
    assert reference.core.done and windowed.core.done
    assert windowed.state() == reference.state()


@settings(max_examples=15, deadline=None)
@given(
    items=st.lists(_instruction, min_size=30, max_size=120),
    spans=st.lists(st.integers(1, 96), min_size=1, max_size=16),
)
def test_windowed_stepping_with_criticality_provider(items, spans):
    """Criticality bumps flipping queued transactions' flags mid-gap
    (the presettle path) must not perturb the lazily settled
    criticality counters."""

    def provider():
        return CbpProvider(entries=64, metric=CbpMetric.MAX_STALL)

    reference = _SoloHarness(_build_trace(items), provider())
    windowed = _SoloHarness(_build_trace(items), provider())
    reference.run_reference(_CYCLE_BUDGET)
    windowed.run_windowed(spans, _CYCLE_BUDGET)
    assert windowed.state() == reference.state()


@settings(max_examples=15, deadline=None)
@given(items=st.lists(_instruction, min_size=30, max_size=120))
def test_next_wake_window_promises_are_sound(items):
    """Cycles inside a promised-quiet DRAM span never mutate det_state:
    audited per edge against real per-cycle stepping."""
    harness = _SoloHarness(_build_trace(items))
    harness.run_reference(_CYCLE_BUDGET, check_wake_promises=True)
    assert harness.core.done


@settings(max_examples=10, deadline=None)
@given(
    items=st.lists(_instruction, min_size=20, max_size=80),
    spans=st.lists(st.integers(1, 64), min_size=1, max_size=8),
    cap=st.integers(40, 400),
)
def test_windowed_stepping_respects_caps(items, spans, cap):
    """Capped runs stop at the same cycle with the same state."""
    reference = _SoloHarness(_build_trace(items))
    windowed = _SoloHarness(_build_trace(items))
    reference.run_reference(cap)
    windowed.run_windowed(spans, cap)
    assert windowed.state() == reference.state()


@settings(max_examples=15, deadline=None)
@given(
    items=st.lists(_instruction, min_size=20, max_size=120),
    spans=st.lists(st.integers(1, 96), min_size=1, max_size=16),
)
def test_windowed_core_det_state_incremental_matches_scan(items, spans):
    """After a windowed run the incrementally maintained cache det_state
    words still equal the full tag-array walk, and the core's det_state
    is reproducible on re-read (no hidden latch left mid-window)."""
    windowed = _SoloHarness(_build_trace(items))
    windowed.run_windowed(spans, _CYCLE_BUDGET)
    for cache in list(windowed.hier.l1) + [windowed.hier.l2]:
        assert cache.det_state() == cache.det_state_scan()
    assert windowed.core.det_state() == windowed.core.det_state()
