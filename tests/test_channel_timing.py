"""Channel/rank-shared timing constraints."""

import pytest

from repro.config import DDR3_2133
from repro.dram.channel import ChannelTiming


@pytest.fixture
def timing():
    return ChannelTiming(DDR3_2133, ranks=4)


class TestCcd:
    def test_back_to_back_cas_blocked_within_tccd(self, timing):
        assert timing.cas_issue_ok(0, False, 0)
        timing.did_cas(0, False, 0)
        assert not timing.cas_issue_ok(0, False, DDR3_2133.tCCD - 1)
        assert timing.cas_issue_ok(0, False, DDR3_2133.tCCD)


class TestDataBus:
    def test_burst_occupies_bus(self, timing):
        end = timing.did_cas(0, False, 0)
        assert end == DDR3_2133.tCL + DDR3_2133.burst_cycles
        assert timing.data_bus_free == end

    def test_same_rank_cas_at_tccd_ok(self, timing):
        timing.did_cas(0, False, 0)
        # Next read's data starts tCL after issue; bus frees in time.
        assert timing.cas_issue_ok(0, False, DDR3_2133.tCCD)

    def test_rank_switch_pays_trtrs_in_data_timing(self, timing):
        # A rank-switch CAS may issue at tCCD (commands are never starved
        # by the bus model), but its data is pushed back behind the
        # previous burst plus tRTRS.
        timing.did_cas(0, False, 0)
        t = DDR3_2133
        assert timing.cas_issue_ok(1, False, t.tCCD)
        end = timing.did_cas(1, False, t.tCCD)
        first_end = t.tCL + t.burst_cycles
        assert end == first_end + t.tRTRS + t.burst_cycles

    def test_same_rank_back_to_back_no_gap(self, timing):
        t = DDR3_2133
        end0 = timing.did_cas(0, False, 0)
        end1 = timing.did_cas(0, False, t.tCCD)
        assert end1 == end0 + t.burst_cycles

    def test_no_penalty_first_use(self, timing):
        assert timing.cas_issue_ok(3, True, 0)


class TestWtr:
    def test_read_after_write_same_rank_waits(self, timing):
        end = timing.did_cas(0, True, 0)
        t = DDR3_2133
        blocked_until = end + t.tWTR
        assert not timing.cas_issue_ok(0, False, blocked_until - 1)
        assert timing.cas_issue_ok(0, False, blocked_until)

    def test_write_after_write_unaffected_by_wtr(self, timing):
        timing.did_cas(0, True, 0)
        t = DDR3_2133
        # Writes need only tCCD + bus; no tWTR.
        cycle = t.tCCD
        while not timing.cas_issue_ok(0, True, cycle):
            cycle += 1
        assert cycle < timing.rank_read_after_write[0]


class TestRrd:
    def test_act_to_act_same_rank_waits_trrd(self, timing):
        timing.did_activate(0, 0)
        assert not timing.can_activate(0, DDR3_2133.tRRD - 1)
        assert timing.can_activate(0, DDR3_2133.tRRD)

    def test_other_rank_unaffected(self, timing):
        timing.did_activate(0, 0)
        assert timing.can_activate(1, 1)


class TestFaw:
    def test_derived_default_never_tightens_trrd_spacing(self, timing):
        # With tFAW = 4 * tRRD (the derived default), ACTIVATEs issued at
        # exact tRRD spacing roll the oldest out of the window just in
        # time: the fifth is legal the cycle tRRD allows it.
        t = DDR3_2133
        for i in range(4):
            timing.did_activate(0, i * t.tRRD)
        assert timing.can_activate(0, 4 * t.tRRD)

    def test_explicit_tfaw_blocks_fifth_activate(self):
        import dataclasses

        t = dataclasses.replace(DDR3_2133, tFAW=4 * DDR3_2133.tRRD + 8)
        timing = ChannelTiming(t, ranks=2)
        for i in range(4):
            timing.did_activate(0, i * t.tRRD)
        # tRRD alone would allow the fifth at 4*tRRD, but the window says
        # it must wait until the first ACTIVATE (cycle 0) ages out.
        assert not timing.can_activate(0, 4 * t.tRRD)
        assert not timing.can_activate(0, t.effective_tFAW - 1)
        assert timing.can_activate(0, t.effective_tFAW)

    def test_other_rank_has_its_own_window(self):
        import dataclasses

        t = dataclasses.replace(DDR3_2133, tFAW=4 * DDR3_2133.tRRD + 8)
        timing = ChannelTiming(t, ranks=2)
        for i in range(4):
            timing.did_activate(0, i * t.tRRD)
        assert timing.can_activate(1, 4 * t.tRRD)

    def test_window_history_in_det_state(self):
        timing = ChannelTiming(DDR3_2133, ranks=1)
        before = list(timing.det_state())
        timing.did_activate(0, 7)
        after = list(timing.det_state())
        assert before != after
        assert 7 in after
