"""Commit Block Predictor: metrics, aliasing, reset, widths."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cbp import CbpMetric, CommitBlockPredictor


class TestBinary:
    def test_unmarked_initially(self):
        cbp = CommitBlockPredictor(64, CbpMetric.BINARY)
        assert cbp.predict(5) == 0

    def test_marked_on_block(self):
        cbp = CommitBlockPredictor(64, CbpMetric.BINARY)
        cbp.record_block_start(5)
        assert cbp.predict(5) == 1

    def test_saturates_at_one(self):
        cbp = CommitBlockPredictor(64, CbpMetric.BINARY)
        for _ in range(10):
            cbp.record_block_start(5)
        assert cbp.predict(5) == 1

    def test_stall_ignored(self):
        cbp = CommitBlockPredictor(64, CbpMetric.BINARY)
        cbp.record_stall(5, 300)
        assert cbp.predict(5) == 0


class TestBlockCount:
    def test_counts_blocks(self):
        cbp = CommitBlockPredictor(64, CbpMetric.BLOCK_COUNT)
        for _ in range(7):
            cbp.record_block_start(9)
        assert cbp.predict(9) == 7


class TestStallMetrics:
    def test_last_stall_overwrites(self):
        cbp = CommitBlockPredictor(64, CbpMetric.LAST_STALL)
        cbp.record_stall(3, 100)
        cbp.record_stall(3, 40)
        assert cbp.predict(3) == 40

    def test_max_stall_keeps_maximum(self):
        cbp = CommitBlockPredictor(64, CbpMetric.MAX_STALL)
        cbp.record_stall(3, 100)
        cbp.record_stall(3, 40)
        cbp.record_stall(3, 250)
        assert cbp.predict(3) == 250

    def test_total_stall_accumulates(self):
        cbp = CommitBlockPredictor(64, CbpMetric.TOTAL_STALL)
        cbp.record_stall(3, 100)
        cbp.record_stall(3, 40)
        assert cbp.predict(3) == 140

    def test_block_start_ignored_by_stall_metrics(self):
        cbp = CommitBlockPredictor(64, CbpMetric.MAX_STALL)
        cbp.record_block_start(3)
        assert cbp.predict(3) == 0

    def test_negative_stall_rejected(self):
        cbp = CommitBlockPredictor(64, CbpMetric.MAX_STALL)
        with pytest.raises(ValueError):
            cbp.record_stall(3, -1)


class TestAliasing:
    def test_pcs_64_apart_alias(self):
        cbp = CommitBlockPredictor(64, CbpMetric.BINARY)
        cbp.record_block_start(7)
        assert cbp.predict(7 + 64) == 1
        assert cbp.predict(7 + 128) == 1

    def test_unlimited_table_never_aliases(self):
        cbp = CommitBlockPredictor(None, CbpMetric.BINARY)
        cbp.record_block_start(7)
        assert cbp.predict(7) == 1
        assert cbp.predict(7 + 64) == 0

    def test_larger_table_separates(self):
        cbp = CommitBlockPredictor(256, CbpMetric.BINARY)
        cbp.record_block_start(7)
        assert cbp.predict(7 + 64) == 0
        assert cbp.predict(7 + 256) == 1

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            CommitBlockPredictor(65)

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            CommitBlockPredictor(0)


class TestReset:
    def test_reset_clears_table(self):
        cbp = CommitBlockPredictor(64, CbpMetric.BINARY, reset_interval=1000)
        cbp.record_block_start(5)
        cbp.tick(999)
        assert cbp.predict(5) == 1
        cbp.tick(1000)
        assert cbp.predict(5) == 0
        assert cbp.resets == 1

    def test_reset_rearms(self):
        cbp = CommitBlockPredictor(64, CbpMetric.BINARY, reset_interval=100)
        cbp.tick(100)
        cbp.record_block_start(5)
        cbp.tick(150)
        assert cbp.predict(5) == 1
        cbp.tick(200)
        assert cbp.predict(5) == 0
        assert cbp.resets == 2

    def test_no_reset_when_disabled(self):
        cbp = CommitBlockPredictor(64, CbpMetric.BINARY)
        cbp.record_block_start(5)
        cbp.tick(10**9)
        assert cbp.predict(5) == 1


class TestWidths:
    def test_max_observed_tracks_largest_write(self):
        cbp = CommitBlockPredictor(None, CbpMetric.MAX_STALL)
        cbp.record_stall(1, 100)
        cbp.record_stall(2, 13475)
        cbp.record_stall(3, 7)
        assert cbp.max_observed == 13475

    def test_counter_width_matches_paper_table5(self):
        # Paper Table 5 maxima -> widths.
        assert CommitBlockPredictor.counter_width(1) == 1
        assert CommitBlockPredictor.counter_width(1_975_691) == 21
        assert CommitBlockPredictor.counter_width(13_475) == 14
        assert CommitBlockPredictor.counter_width(112_753_587) == 27

    def test_width_of_zero_is_one_bit(self):
        assert CommitBlockPredictor.counter_width(0) == 1


class TestOccupancy:
    def test_counts_nonzero_entries(self):
        cbp = CommitBlockPredictor(64, CbpMetric.BINARY)
        cbp.record_block_start(1)
        cbp.record_block_start(2)
        assert cbp.occupancy() == 2


@given(st.lists(st.tuples(st.integers(0, 500), st.integers(0, 5000)), max_size=60))
def test_max_stall_is_running_max_per_index(events):
    """Property: MAX_STALL entry equals max stall recorded for its index."""
    cbp = CommitBlockPredictor(64, CbpMetric.MAX_STALL)
    reference = {}
    for pc, stall in events:
        cbp.record_stall(pc, stall)
        idx = pc & 63
        reference[idx] = max(reference.get(idx, 0), stall)
    for idx, expected in reference.items():
        assert cbp.predict(idx) == expected
