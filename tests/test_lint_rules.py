"""Unit tests for the simulator-specific AST lint pass.

Each rule gets positive cases (the hazard fires), negative cases (the
idiomatic alternative stays clean), and a suppression case.  The seeded
fixture ``tests/fixtures/lint_hazards.py`` then pins the CLI contract:
every rule fires on it, and ``src/repro`` at HEAD is clean.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.lint import (
    ALL_RULES,
    RULES_BY_ID,
    lint_paths,
    lint_source,
)

REPO = Path(__file__).resolve().parent.parent
HAZARD_FIXTURE = REPO / "tests" / "fixtures" / "lint_hazards.py"


def rules_hit(source: str, select: set[str] | None = None) -> set[str]:
    report = lint_source(textwrap.dedent(source), select=select)
    assert not report.errors, report.errors
    return {f.rule for f in report.findings}


class TestUnseededRandom:
    def test_module_global_call(self):
        assert "DET001" in rules_hit("""
            import random

            def pick(queue):
                return random.choice(queue)
        """)

    def test_aliased_import(self):
        assert "DET001" in rules_hit("""
            import random as rnd

            def roll():
                return rnd.randint(0, 7)
        """)

    def test_from_import_binds_global(self):
        assert "DET001" in rules_hit("from random import shuffle\n")

    def test_numpy_global(self):
        assert "DET001" in rules_hit("""
            import numpy as np

            def noise(n):
                return np.random.rand(n)
        """)

    def test_seeded_instances_are_clean(self):
        assert "DET001" not in rules_hit("""
            import random
            import numpy as np

            def make(seed):
                rng = random.Random(seed)
                gen = np.random.default_rng(seed)
                return rng.choice([1, 2]), gen
        """)


class TestWallClock:
    def test_time_time(self):
        assert "DET002" in rules_hit("""
            import time

            def stamp():
                return time.time()
        """)

    def test_perf_counter_and_datetime(self):
        hits = rules_hit("""
            import datetime
            import time

            def measure():
                return time.perf_counter(), datetime.datetime.now()
        """)
        assert "DET002" in hits

    def test_from_import(self):
        assert "DET002" in rules_hit("from time import monotonic\n")

    def test_hostclock_module_is_the_sanctioned_exception(self):
        """repro/util/hostclock.py is the single allowlisted module: its
        raw clock reads lint clean, while byte-identical code anywhere
        else (lint_source uses a synthetic path) still fires DET002."""
        hostclock = REPO / "src" / "repro" / "util" / "hostclock.py"
        report = lint_paths([hostclock])
        assert not report.errors
        assert "DET002" not in {f.rule for f in report.findings}
        assert "DET002" in rules_hit(hostclock.read_text())

    def test_raw_perf_counter_outside_hostclock_still_fires(self):
        assert "DET002" in rules_hit("""
            import time

            def wall():
                return time.perf_counter()
        """)

    def test_sleepless_code_is_clean(self):
        assert "DET002" not in rules_hit("""
            def advance(now, step):
                return now + step
        """)


class TestSetIteration:
    def test_set_literal(self):
        assert "DET003" in rules_hit("""
            def first():
                for item in {3, 1, 2}:
                    return item
        """)

    def test_local_set_variable(self):
        assert "DET003" in rules_hit("""
            def drain(items):
                pending = set(items)
                for txn in pending:
                    yield txn
        """)

    def test_set_comprehension_in_genexp(self):
        assert "DET003" in rules_hit("""
            def ids(txns):
                return [t for t in {x.core for x in txns}]
        """)

    def test_set_union_expression(self):
        assert "DET003" in rules_hit("""
            def both(a):
                reads = set(a)
                writes = set(a)
                for txn in reads | writes:
                    yield txn
        """)

    def test_sorted_set_is_clean(self):
        assert "DET003" not in rules_hit("""
            def drain(items):
                pending = set(items)
                for txn in sorted(pending):
                    yield txn
        """)

    def test_list_iteration_is_clean(self):
        assert "DET003" not in rules_hit("""
            def drain(items):
                for txn in list(items):
                    yield txn
        """)


class TestDictOrder:
    def test_os_environ_for_loop(self):
        assert "DET004" in rules_hit("""
            import os

            def first_key():
                for key in os.environ:
                    return key
        """)

    def test_environ_items_view(self):
        assert "DET004" in rules_hit("""
            import os

            def pairs():
                return [(k, v) for k, v in os.environ.items()]
        """)

    def test_from_import_environ(self):
        assert "DET004" in rules_hit("""
            from os import environ

            def keys():
                return [k for k in environ]
        """)

    def test_vars_and_dict_views(self):
        hits = rules_hit("""
            def dump(obj):
                for name in vars(obj):
                    yield name
                for name, value in obj.__dict__.items():
                    yield name, value
        """)
        assert "DET004" in hits

    def test_globals_iteration(self):
        assert "DET004" in rules_hit("""
            def names():
                return [n for n in globals()]
        """)

    def test_sorted_wrapping_is_clean(self):
        assert "DET004" not in rules_hit("""
            import os

            def first_key(obj):
                for key in sorted(os.environ):
                    return key
                for name in sorted(vars(obj)):
                    return name
        """)

    def test_ordinary_dict_iteration_is_clean(self):
        assert "DET004" not in rules_hit("""
            def drain(queues):
                for name, queue in queues.items():
                    yield name, len(queue)
        """)

    def test_name_bound_dict_view_is_clean(self):
        # Direct-iteration rule only: a __dict__ view bound to a name and
        # then sorted (the sim/stats.py idiom) must stay clean.
        assert "DET004" not in rules_hit("""
            def freeze(obj):
                items = obj.__dict__.items()
                return tuple(sorted((k, v) for k, v in items))
        """)


class TestMutableDefault:
    def test_list_literal_default(self):
        assert "ARG001" in rules_hit("""
            def record(value, log=[]):
                log.append(value)
                return log
        """)

    def test_dict_and_set_defaults(self):
        hits = rules_hit("""
            def tally(key, counts={}, seen=set()):
                counts[key] = counts.get(key, 0) + 1
                seen.add(key)
        """)
        assert "ARG001" in hits

    def test_constructor_call_default(self):
        assert "ARG001" in rules_hit("""
            from collections import deque

            def buffer(item, ring=deque()):
                ring.append(item)
        """)

    def test_kwonly_default(self):
        assert "ARG001" in rules_hit("""
            def run(*, hooks=[]):
                return hooks
        """)

    def test_none_default_is_clean(self):
        assert "ARG001" not in rules_hit("""
            def record(value, log=None):
                if log is None:
                    log = []
                log.append(value)
                return log
        """)

    def test_immutable_defaults_are_clean(self):
        assert "ARG001" not in rules_hit("""
            def make(a=0, b="x", c=(1, 2), d=None, e=frozenset()):
                return a, b, c, d, e
        """)


class TestFloatCycle:
    def test_true_division_into_cycle_name(self):
        assert "FLT001" in rules_hit("""
            def midpoint(a, b):
                wake_cycle = (a + b) / 2
                return wake_cycle
        """)

    def test_augmented_division(self):
        assert "FLT001" in rules_hit("""
            def halve(now):
                now /= 2
                return now
        """)

    def test_float_literal(self):
        assert "FLT001" in rules_hit("""
            def pad(self, base):
                self.ready = base + 1.5
        """)

    def test_int_wrapped_is_clean(self):
        assert "FLT001" not in rules_hit("""
            def midpoint(a, b):
                wake_cycle = int((a + b) / 2)
                other_cycle = (a + b) // 2
                return wake_cycle, other_cycle
        """)

    def test_non_cycle_names_are_clean(self):
        assert "FLT001" not in rules_hit("""
            def ratio(a, b):
                ipc = a / b
                return ipc
        """)


class TestConfigMutation:
    def test_attribute_assignment(self):
        assert "CFG001" in rules_hit("""
            def tweak(config):
                config.tCL = 5
        """)

    def test_nested_config_attribute(self):
        assert "CFG001" in rules_hit("""
            def tweak(self):
                self.config.channels = 4
        """)

    def test_setattr_backdoor(self):
        assert "CFG001" in rules_hit("""
            def tweak(config):
                object.__setattr__(config, "tRP", 9)
        """)

    def test_ordinary_attributes_are_clean(self):
        assert "CFG001" not in rules_hit("""
            def record(self, value):
                self.result = value
                self.stats.count = 3
        """)


class TestSchedulerInterface:
    def test_rogue_scheduler(self):
        assert "SCH001" in rules_hit("""
            class RogueScheduler:
                def select(self, candidates, controller, now):
                    return None
        """)

    def test_proper_subclass_is_clean(self):
        assert "SCH001" not in rules_hit("""
            from repro.sched.base import Scheduler

            class GoodScheduler(Scheduler):
                name = "good"
        """)

    def test_base_interface_itself_is_exempt(self):
        assert "SCH001" not in rules_hit("""
            class Scheduler:
                def select(self, candidates, controller, now):
                    raise NotImplementedError
        """)

    def test_subclass_of_subclass_is_clean(self):
        assert "SCH001" not in rules_hit("""
            from repro.sched.morse import MorseScheduler

            class TunedScheduler(MorseScheduler):
                name = "tuned"
        """)


class TestExceptionRules:
    def test_bare_except(self):
        assert "EXC001" in rules_hit("""
            def run(action):
                try:
                    action()
                except:
                    return None
        """)

    def test_silent_handler(self):
        assert "EXC002" in rules_hit("""
            def run(action):
                try:
                    action()
                except ValueError:
                    pass
        """)

    def test_docstring_plus_pass_is_still_silent(self):
        assert "EXC002" in rules_hit("""
            def run(action):
                try:
                    action()
                except ValueError:
                    '''tolerated'''
                    ...
        """)

    def test_handled_exception_is_clean(self):
        hits = rules_hit("""
            def run(action, log):
                try:
                    action()
                except ValueError as exc:
                    log.append(exc)
        """)
        assert "EXC001" not in hits and "EXC002" not in hits


class TestSuppression:
    def test_trailing_comment(self):
        report = lint_source(
            "import time\n"
            "t0 = time.time()  # repro-lint: disable=DET002 startup stamp\n"
        )
        assert not report.findings
        assert [f.rule for f in report.suppressed] == ["DET002"]

    def test_line_above_comment(self):
        report = lint_source(
            "import time\n"
            "# repro-lint: disable=DET002 measured on purpose\n"
            "t0 = time.time()\n"
        )
        assert not report.findings
        assert [f.rule for f in report.suppressed] == ["DET002"]

    def test_disable_all(self):
        report = lint_source(
            "import time\n"
            "t0 = time.time()  # repro-lint: disable=all\n"
        )
        assert not report.findings and report.suppressed

    def test_wrong_rule_does_not_suppress(self):
        report = lint_source(
            "import time\n"
            "t0 = time.time()  # repro-lint: disable=DET001\n"
        )
        assert [f.rule for f in report.findings] == ["DET002"]

    def test_suppression_does_not_leak_to_other_lines(self):
        report = lint_source(
            "import time\n"
            "a = time.time()  # repro-lint: disable=DET002\n"
            "b = time.time()\n"
        )
        assert [f.rule for f in report.findings] == ["DET002"]
        assert len(report.suppressed) == 1

    def test_file_wide_disable(self):
        report = lint_source(
            "# repro-lint: disable-file=DET002 benchmarking module\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n"
        )
        assert not report.findings
        assert [f.rule for f in report.suppressed] == ["DET002", "DET002"]

    def test_file_wide_disable_all(self):
        report = lint_source(
            "# repro-lint: disable-file=all\n"
            "import time\n"
            "a = time.time()\n"
        )
        assert not report.findings and report.suppressed

    def test_unknown_rule_in_suppression_is_an_error(self):
        report = lint_source(
            "import time\n"
            "a = time.time()  # repro-lint: disable=DET002,DET999\n"
        )
        assert [f.rule for f in report.findings] == ["SUP001"]
        assert "DET999" in report.findings[0].message
        assert [f.rule for f in report.suppressed] == ["DET002"]

    def test_unknown_rule_in_file_wide_suppression_is_an_error(self):
        report = lint_source(
            "# repro-lint: disable-file=NOPE123\n"
            "x = 1\n"
        )
        assert [f.rule for f in report.findings] == ["SUP001"]

    def test_semantic_rule_names_are_known_to_lint(self):
        # SEM rules belong to the analyzer, but naming one in a lint
        # suppression must not raise SUP001 — the grammar is shared.
        report = lint_source(
            "x = 1  # repro-lint: disable=SEM001 analyzer-side rationale\n"
        )
        assert not report.findings

    def test_sup001_is_itself_suppressible(self):
        report = lint_source(
            "x = 1  # repro-lint: disable=DET999,SUP001 known-stale\n"
        )
        assert not report.findings
        assert [f.rule for f in report.suppressed] == ["SUP001"]


class TestPerfRules:
    def test_list_alloc_in_hot_loop(self):
        assert "PERF001" in rules_hit("""
            class Core:
                def step(self, now):
                    for unit in self.units:
                        scratch = []
                        scratch.append(unit)
        """)

    def test_alloc_outside_loop_is_clean(self):
        assert "PERF001" not in rules_hit("""
            class Core:
                def step(self, now):
                    scratch = []
                    for unit in self.units:
                        scratch.append(unit)
        """)

    def test_alloc_in_cold_method_is_clean(self):
        assert "PERF001" not in rules_hit("""
            class Core:
                def summarize(self):
                    for unit in self.units:
                        rows = [unit.name]
                        self.emit(rows)
        """)

    def test_while_test_is_per_iteration(self):
        assert "PERF003" in rules_hit("""
            class Core:
                def step(self, now):
                    while now in {1, 2, 3}:
                        now += 1
        """)

    def test_dict_build_in_hot_loop(self):
        assert "PERF003" in rules_hit("""
            class Core:
                def tick(self, events):
                    for ev in events:
                        seen = {"id": ev}
                        self.emit(seen)
        """)

    def test_repeated_chain_fires(self):
        assert "PERF002" in rules_hit("""
            class Sched:
                def select(self, candidates, controller, now):
                    for cand in candidates:
                        if len(controller.read_queue) > 2 and controller.read_queue:
                            return cand
        """)

    def test_hoisted_chain_is_clean(self):
        assert "PERF002" not in rules_hit("""
            class Sched:
                def select(self, candidates, controller, now):
                    queue = controller.read_queue
                    for cand in candidates:
                        if len(queue) > 2 and queue:
                            return cand
        """)

    def test_reassigned_chain_is_exempt(self):
        # self.cursor changes inside the loop; it cannot be hoisted.
        assert "PERF002" not in rules_hit("""
            class Core:
                def step(self, now):
                    for unit in self.units:
                        self.cursor = self.cursor + 1
        """)

    def test_loop_variable_chains_are_exempt(self):
        assert "PERF002" not in rules_hit("""
            class Sched:
                def select(self, candidates, controller, now):
                    for cand in candidates:
                        if cand.txn.seq and cand.txn.critical:
                            return cand
        """)

    def test_pure_method_calls_are_exempt(self):
        assert "PERF002" not in rules_hit("""
            class Core:
                def step(self, now):
                    for unit in self.units:
                        self.poke(unit)
                        self.poke(unit)
        """)

    def test_suppression(self):
        report = lint_source(textwrap.dedent("""
            class Core:
                def step(self, now):
                    for unit in self.units:
                        # repro-lint: disable=PERF001 handoff owns the list
                        box = [unit]
                        self.emit(box)
        """))
        assert not report.findings
        assert [f.rule for f in report.suppressed] == ["PERF001"]

    def test_hot_methods_cover_the_per_cycle_hooks(self):
        from repro.analysis.lint import HOT_METHODS
        from repro.analysis.semantic.effects import PER_CYCLE_HOOKS

        assert PER_CYCLE_HOOKS <= HOT_METHODS


class TestRunner:
    def test_select_filters_rules(self):
        source = "import time\nfor x in {1, 2}:\n    t = time.time()\n"
        report = lint_source(source, select={"DET003"})
        assert {f.rule for f in report.findings} == {"DET003"}

    def test_syntax_error_is_reported_not_raised(self):
        report = lint_source("def broken(:\n")
        assert report.errors and not report.ok

    def test_findings_render_with_location(self):
        report = lint_source("import time\nt = time.time()\n", path="mod.py")
        rendered = report.findings[0].render()
        assert rendered.startswith("mod.py:2:")
        assert "DET002" in rendered

    def test_rule_registry_is_consistent(self):
        assert len(RULES_BY_ID) == len(ALL_RULES)
        for rule in ALL_RULES:
            assert rule.id and rule.title and rule.__class__.__doc__


class TestRepoContract:
    def test_every_rule_fires_on_the_hazard_fixture(self):
        report = lint_paths([HAZARD_FIXTURE])
        assert {f.rule for f in report.findings} == set(RULES_BY_ID)
        assert {f.rule for f in report.suppressed} == {"DET002"}

    def test_cli_exits_nonzero_on_hazards(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "lint.py"),
             str(HAZARD_FIXTURE)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "DET001" in proc.stdout

    def test_src_repro_is_clean_at_head(self):
        report = lint_paths([REPO / "src" / "repro"])
        assert report.files > 40
        assert not report.errors
        assert not report.findings, "\n".join(
            f.render() for f in report.findings
        )
