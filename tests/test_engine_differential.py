"""Cross-engine differential oracle: naive vs fast vs event vs batched.

The four loop implementations in :mod:`repro.sim.system` must be
bit-identical — same determinism chain, same result fingerprint, and
byte-identical streamed telemetry segments on disk.  This module holds
the event engine to that for every registered scheduler, and pins the
previously-untested ``max_cycles`` cap path (a capped run breaks out of
the loop mid-flight, which must not perturb telemetry folding).

The satellite regressions ride along: the shared-kwargs aliasing fix in
``make_provider_factory`` and the stall guard in ``_fold_telemetry``.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro.config import SimScale, SystemConfig
from repro.sched.registry import SCHEDULERS
from repro.sim.stats import result_fingerprint
from repro.sim.system import System, make_provider_factory
from repro.workloads.parallel import parallel_traces

SCALE = SimScale(instructions_per_core=400, warmup_instructions=0, seed=11)

ENGINES = ("naive", "fast", "event", "batched")


def _provider_for(scheduler: str):
    if "crit" in scheduler or scheduler == "minimalist":
        return ("cbp", {"entries": 64})
    return None


def _make_system(scheduler="fr-fcfs"):
    config = SystemConfig.parallel_default()
    traces = parallel_traces(
        "fft", config.cores, SCALE.instructions_per_core, seed=SCALE.seed
    )
    return System(
        config, traces, scheduler=scheduler,
        provider_spec=_provider_for(scheduler),
    )


def _stream_digest(directory) -> dict[str, str]:
    """Name -> sha256 of every streamed segment file (raw on-disk bytes)."""
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(Path(directory).glob("*.jsonl"))
    }


@pytest.fixture
def telemetry_on(monkeypatch):
    monkeypatch.setenv("REPRO_SAMPLE_EVERY", "64")
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_event_engine_bit_identical_for_every_scheduler(
    telemetry_on, tmp_path, monkeypatch, scheduler
):
    """Det-chain, fingerprint, and streamed bytes: event == naive."""
    results = {}
    digests = {}
    for engine in ("naive", "event"):
        stream_dir = tmp_path / engine
        monkeypatch.setenv("REPRO_STREAM_DIR", str(stream_dir))
        results[engine] = _make_system(scheduler).run(engine=engine)
        digests[engine] = _stream_digest(stream_dir)
    naive, event = results["naive"], results["event"]
    assert naive.det_chain == event.det_chain
    assert result_fingerprint(naive) == result_fingerprint(event)
    assert digests["naive"], "streaming produced no segments"
    assert digests["naive"] == digests["event"]


class TestMaxCyclesCap:
    """``hit_max_cycles`` runs must stay differential-clean: the cap
    ``break`` leaves the loop between fold points, which previously had
    no coverage against telemetry folding."""

    CAP = 500  # the uncapped fft run at this scale takes ~730 cycles

    def _run(self, engine, stream_dir, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_DIR", str(stream_dir))
        return _make_system().run(max_cycles=self.CAP, engine=engine)

    def test_capped_runs_identical_across_engines(
        self, telemetry_on, tmp_path, monkeypatch
    ):
        results = {}
        digests = {}
        for engine in ENGINES:
            stream_dir = tmp_path / engine
            results[engine] = self._run(engine, stream_dir, monkeypatch)
            digests[engine] = _stream_digest(stream_dir)
        reference = results["naive"]
        assert reference.hit_max_cycles, "cap too high to exercise the break"
        assert reference.cycles == self.CAP
        assert reference.sample_cycles, "sampler produced nothing under cap"
        for engine in ("fast", "event", "batched"):
            other = results[engine]
            assert other.hit_max_cycles
            assert other.det_chain == reference.det_chain, engine
            assert other.sample_cycles == reference.sample_cycles, engine
            assert other.timeseries == reference.timeseries, engine
            assert result_fingerprint(other) == result_fingerprint(
                reference
            ), engine
            assert digests[engine] == digests["naive"], engine

    def test_cap_on_detchain_boundary(self, monkeypatch):
        """A cap landing exactly on a chain-sample cycle must fold the
        same number of checkpoints in every engine."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setenv("REPRO_DETCHAIN_EVERY", "128")
        cap = 256  # multiple of the chain interval, below run length
        results = [
            _make_system().run(max_cycles=cap, engine=engine)
            for engine in ENGINES
        ]
        assert all(r.hit_max_cycles for r in results)
        chains = {r.det_chain for r in results}
        checkpoints = {len(r.det_checkpoints) for r in results}
        assert len(chains) == 1
        assert len(checkpoints) == 1


def test_incremental_det_state_matches_scan_after_real_run():
    """After a coherence-heavy run, every cache's incrementally
    maintained det_state words equal the full tag-array walk."""
    system = _make_system("crit-casras")
    system.run()
    caches = list(system.hierarchy.l1) + [system.hierarchy.l2]
    for cache in caches:
        assert cache.det_state() == cache.det_state_scan()


class TestEngineSelection:
    def test_resolve_engine_defaults_to_event(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert System.resolve_engine(None) == "event"
        assert System.resolve_engine(None, skip_cycles=False) == "naive"
        assert System.resolve_engine("fast") == "fast"

    def test_resolve_engine_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "naive")
        assert System.resolve_engine(None) == "naive"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            System.resolve_engine("warp")

    def test_engine_not_part_of_cache_key(self):
        from repro.sim.engine import RunSpec, spec_key

        base = RunSpec(kind="parallel", workload="fft", scale=SCALE)
        pinned = RunSpec(
            kind="parallel", workload="fft", scale=SCALE, engine="naive"
        )
        assert spec_key(base) == spec_key(pinned)


class TestProviderFactoryAliasing:
    """`make_provider_factory` must not share one kwargs dict across
    cores: a provider mutating a mutable kwarg would leak state."""

    def test_list_kwarg_not_aliased(self, monkeypatch):
        # Route through the ("kind", kwargs) path with a stand-in class
        # that keeps a mutable kwarg, the shape of the original bug.
        from repro.core import provider as provider_mod

        class FakeCbp:
            def __init__(self, entries=0, history=None):
                self.entries = entries
                self.history = history if history is not None else []

        monkeypatch.setattr(provider_mod, "CbpProvider", FakeCbp)
        factory = make_provider_factory(
            ("cbp", {"entries": 4, "history": []})
        )
        a, b = factory(0), factory(1)
        a.history.append("core0-private")
        assert b.history == [], "kwargs dict aliased across cores"

    def test_separate_instances_per_core(self):
        factory = make_provider_factory(("cbp", {"entries": 16}))
        assert factory(0) is not factory(1)


class TestFoldTelemetryStallGuard:
    """A stream whose flush_upto never advances must raise, not hang."""

    class _StalledStream:
        next_flush = 100

        def flush_upto(self, limit):  # never advances next_flush
            pass

    def test_stalled_stream_raises_with_cycle(self):
        system = _make_system()
        with pytest.raises(RuntimeError, match="stalled at cycle 100"):
            system._fold_telemetry(None, self._StalledStream(), 1_000)

    def test_advancing_fake_stream_is_fine(self):
        class Advancing:
            next_flush = 100

            def flush_upto(self, limit):
                self.next_flush = limit + 100

        system = _make_system()
        stream = Advancing()
        system._fold_telemetry(None, stream, 1_000)
        assert stream.next_flush >= 1_000
