"""Run-level metrics: speedup, weighted speedup, maximum slowdown."""

import pytest

from repro.sim.stats import (
    SimResult,
    maximum_slowdown,
    speedup,
    weighted_speedup,
)


def result(cycles, finishes, committed):
    return SimResult(
        label="t", cycles=cycles, finish_cycles=finishes, committed=committed
    )


class TestSpeedup:
    def test_simple(self):
        base = result(2000, [2000], [100])
        fast = result(1000, [1000], [100])
        assert speedup(base, fast) == 2.0

    def test_zero_cycles_rejected(self):
        base = result(2000, [2000], [100])
        broken = result(0, [0], [0])
        with pytest.raises(ValueError):
            speedup(base, broken)


class TestCoreIpc:
    def test_uses_own_finish_time(self):
        r = result(2000, [1000, 2000], [500, 500])
        assert r.core_ipc(0) == 0.5
        assert r.core_ipc(1) == 0.25

    def test_system_ipc(self):
        r = result(1000, [1000, 1000], [400, 600])
        assert r.system_ipc == 1.0


class TestWeightedSpeedup:
    def test_equal_to_core_count_at_parity(self):
        r = result(1000, [1000, 1000], [300, 700])
        alone = [0.3, 0.7]
        assert weighted_speedup(r, alone) == pytest.approx(2.0)

    def test_degradation_reduces_sum(self):
        r = result(2000, [2000, 2000], [300, 700])
        alone = [0.3, 0.7]
        assert weighted_speedup(r, alone) == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        r = result(1000, [1000], [300])
        with pytest.raises(ValueError):
            weighted_speedup(r, [1.0, 2.0])

    def test_zero_alone_ipc_rejected(self):
        r = result(1000, [1000], [300])
        with pytest.raises(ValueError):
            weighted_speedup(r, [0.0])


class TestMaximumSlowdown:
    def test_worst_app_dominates(self):
        r = result(1000, [1000, 1000], [100, 500])
        alone = [0.4, 0.5]  # app0 slowed 4x, app1 unharmed
        assert maximum_slowdown(r, alone) == pytest.approx(4.0)

    def test_no_commit_rejected(self):
        r = result(1000, [1000], [0])
        with pytest.raises(ValueError):
            maximum_slowdown(r, [1.0])


class TestBlockingFractions:
    def test_empty_stats_are_zero(self):
        r = result(100, [100], [10])
        assert r.blocking_load_fraction() == 0.0
        assert r.blocked_cycle_fraction() == 0.0
