"""Criticality providers: the processor-side interface."""

from repro.core.cbp import CbpMetric
from repro.core.provider import (
    CbpProvider,
    ClptProvider,
    CriticalityProvider,
    NaiveForwardingProvider,
    NullProvider,
)
from repro.dram.transaction import Transaction
from repro.dram.addressmap import DramLocation


def make_txn():
    return Transaction(0, DramLocation(0, 0, 0, 0, 0))


class TestNullProvider:
    def test_never_critical(self):
        p = NullProvider()
        assert p.annotate(123) == (False, 0)

    def test_hooks_are_noops(self):
        p = CriticalityProvider()
        p.on_block_start(1, 0)
        p.on_blocked_commit(1, 10, 100)
        p.on_load_consumers(1, 3)
        p.tick(5)


class TestCbpProvider:
    def test_binary_flow(self):
        p = CbpProvider(entries=64, metric=CbpMetric.BINARY)
        assert p.annotate(9) == (False, 0)
        p.on_block_start(9, 100)
        assert p.annotate(9) == (True, 1)

    def test_ranked_flow(self):
        p = CbpProvider(entries=64, metric=CbpMetric.MAX_STALL)
        p.on_block_start(9, 100)
        assert p.annotate(9) == (False, 0)  # stall not yet written
        p.on_blocked_commit(9, 250, 400)
        assert p.annotate(9) == (True, 250)

    def test_tick_resets(self):
        p = CbpProvider(entries=64, metric=CbpMetric.BINARY, reset_interval=50)
        p.on_block_start(9, 0)
        p.tick(50)
        assert p.annotate(9) == (False, 0)


class TestClptProvider:
    def test_binary_mode(self):
        p = ClptProvider(threshold=3, ranked=False)
        p.on_load_consumers(4, 5)
        assert p.annotate(4) == (True, 1)

    def test_ranked_mode(self):
        p = ClptProvider(threshold=3, ranked=True)
        p.on_load_consumers(4, 5)
        assert p.annotate(4) == (True, 5)

    def test_below_threshold(self):
        p = ClptProvider(threshold=3)
        p.on_load_consumers(4, 1)
        assert p.annotate(4) == (False, 0)


class TestNaiveForwarding:
    def test_promotes_after_latency(self):
        events = []
        p = NaiveForwardingProvider(forward_latency=10,
                                    defer=lambda c, fn: events.append((c, fn)))
        txn = make_txn()
        p.on_block_start(5, 100, txn)
        assert not txn.critical
        cycle, fn = events[0]
        assert cycle == 110
        fn()
        assert txn.critical
        assert txn.magnitude == 1
        assert p.promotions == 1

    def test_never_predicts(self):
        p = NaiveForwardingProvider()
        assert p.annotate(5) == (False, 0)

    def test_immediate_without_defer(self):
        p = NaiveForwardingProvider()
        txn = make_txn()
        p.on_block_start(5, 100, txn)
        assert txn.critical

    def test_no_txn_is_noop(self):
        p = NaiveForwardingProvider()
        p.on_block_start(5, 100, None)
        assert p.promotions == 0
