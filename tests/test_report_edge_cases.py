"""Result renderer edge cases."""

from repro.experiments.common import ExperimentResult
from repro.sim.report import bar_chart, to_csv, to_markdown


def empty_result():
    return ExperimentResult("empty", "Empty", ["a", "b"], [])


class TestEmptyResults:
    def test_table_renders_header_only(self):
        text = empty_result().table()
        assert "empty" in text
        assert "a" in text

    def test_markdown_renders(self):
        md = to_markdown(empty_result())
        assert "| a | b |" in md

    def test_csv_has_header(self):
        assert to_csv(empty_result()).strip() == "a,b"

    def test_bar_chart_handles_no_numeric_rows(self):
        assert "no numeric data" in bar_chart(empty_result(), "a", "b")


class TestBarChartScaling:
    def _result(self):
        return ExperimentResult(
            "r", "R", ["k", "v"],
            [{"k": "x", "v": 2.0}, {"k": "y", "v": 4.0}],
        )

    def test_reference_none_scales_to_max(self):
        chart = bar_chart(self._result(), "k", "v", width=10, reference=None)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10   # max value fills the width
        assert lines[0].count("#") == 5

    def test_mixed_types_skipped(self):
        result = ExperimentResult(
            "r", "R", ["k", "v"],
            [{"k": "x", "v": 1.0}, {"k": "y", "v": "n/a"}],
        )
        chart = bar_chart(result, "k", "v")
        assert len(chart.splitlines()) == 1


class TestNoneFormatting:
    def test_none_rendered_as_dash(self):
        result = ExperimentResult(
            "r", "R", ["k", "v"], [{"k": "x", "v": None}]
        )
        assert "| x | - |" in to_markdown(result)
        assert "-" in result.table()
