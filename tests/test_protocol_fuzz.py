"""Randomized protocol fuzz: perturbed timings through the shadow oracle.

Generalizes the two hand-written injection self-tests in
``tools/sanitize_smoke.py`` along both axes:

* **clean sweep** — a seeded-RNG family of ~50 perturbed ``DramTimings``
  variants (including tFAW/tRRD edge ratios: derived ``4*tRRD``, exactly
  one cycle over, and wider windows) is driven through a real
  ``ChannelController`` with the shadow JEDEC oracle attached.  The
  controller and the oracle read the *same* config, so any violation is
  a real scheduling bug, not a fixture artifact.
* **forgery matrix** — for every timing field the oracle enforces, the
  controller is rebuilt with that one field relaxed while the oracle
  keeps the strict value; the oracle must object.  This proves each
  per-field check is live (not vacuously green) without hand-editing
  controller internals the way the smoke tool does.
"""

from __future__ import annotations

import dataclasses
import itertools
import random

import pytest

from repro.analysis.protocol import ProtocolSanitizer, ProtocolViolation
from repro.config import DDR3_1600, DramConfig
from repro.dram.addressmap import DramLocation
from repro.dram.controller import ChannelController
from repro.dram.transaction import Transaction
from repro.sched.frfcfs import FrFcfsScheduler

N_VARIANTS = 50


@pytest.fixture(autouse=True)
def sanitize_on(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")


# ----------------------------------------------------------- clean sweep


def perturbed_timings(rng: random.Random) -> "DramTimings":
    """One random-but-internally-consistent DDR3 timing variant.

    Invariants a real datasheet always satisfies are preserved — tRAS
    long enough to cover an ACT->READ->PRE sequence, ``tRC = tRAS + tRP``
    (plus optional slack), tCCD no shorter than the burst, and tFAW
    drawn from the interesting ratios around its ``4*tRRD`` floor.
    """
    tRCD = rng.randint(7, 20)
    tCL = rng.randint(8, 16)
    tWL = max(1, tCL - rng.randint(2, 5))
    tCCD = rng.randint(4, 6)  # >= burst_cycles, as on every real part
    tWTR = rng.randint(3, 10)
    tWR = rng.randint(6, 18)
    tRTP = rng.randint(3, 10)
    tRP = rng.randint(7, 18)
    tRRD = rng.randint(3, 9)
    tRTRS = rng.randint(1, 4)
    tRAS = tRCD + tRTP + rng.randint(1, 20)
    tRC = tRAS + tRP + rng.randint(0, 8)
    tFAW = rng.choice([
        None,               # derived 4*tRRD floor
        4 * tRRD,           # explicit floor
        4 * tRRD + 1,       # one cycle over: the tightest binding window
        5 * tRRD,
        6 * tRRD + rng.randint(0, 5),
    ])
    return dataclasses.replace(
        DDR3_1600,
        name=f"fuzz-{rng.randrange(1 << 30)}",
        tRCD=tRCD, tCL=tCL, tWL=tWL, tCCD=tCCD, tWTR=tWTR, tWR=tWR,
        tRTP=tRTP, tRP=tRP, tRRD=tRRD, tRTRS=tRTRS, tRAS=tRAS, tRC=tRC,
        tRFC=rng.randint(60, 160), tFAW=tFAW,
    )


def _drive_generic(config, rng, cycles=2500, sanitizer_config=None,
                   txn_count=48):
    """Mixed read/write, multi-rank/bank, row-conflicting workload."""
    controller = ChannelController(0, config, FrFcfsScheduler())
    assert controller.sanitizer is not None, "REPRO_SANITIZE=1 did not attach"
    if sanitizer_config is not None:
        controller.sanitizer = ProtocolSanitizer(sanitizer_config,
                                                 channel_id=0)
    txns = []
    for i in range(txn_count):
        loc = DramLocation(
            0, rng.randrange(config.ranks_per_channel),
            rng.randrange(config.banks_per_rank),
            rng.choice((1, 1, 2, 3)), 0,
        )
        txns.append(Transaction(i << 6, loc, is_write=rng.random() < 0.3))
    for now in range(cycles):
        if txns and now % 6 == 0:
            controller.enqueue(txns.pop(), now)
        controller.step(now)
    return controller


@pytest.mark.parametrize("seed", range(N_VARIANTS))
def test_perturbed_variant_runs_clean(seed):
    rng = random.Random(0xFA3 + seed)
    config = DramConfig(
        channels=1, ranks_per_channel=2, banks_per_rank=4,
        timings=perturbed_timings(rng),
    )
    controller = _drive_generic(config, rng)  # ProtocolViolation = failure
    assert controller.sanitizer.commands > 80, (
        "workload too small to be meaningful"
    )
    assert controller.sanitizer.checks > controller.sanitizer.commands


# -------------------------------------------------------- forgery matrix

#: Strict reference the oracle keeps while the controller is relaxed.
#: tRC carries slack over tRAS+tRP (otherwise relaxing it alone changes
#: nothing — the presets define tRC = tRAS + tRP exactly), tFAW is an
#: explicit wide window (the derived 4*tRRD floor is unviolable by a
#: tRRD-spaced controller), and tRTRS is widened so a rank switch
#: actually binds.
STRICT_TIMINGS = dataclasses.replace(
    DDR3_1600,
    tRC=DDR3_1600.tRAS + DDR3_1600.tRP + 10,
    tFAW=4 * DDR3_1600.tRRD + 40,
    tRTRS=4,
)

#: field -> the aggressively weakened value the relaxed controller uses.
GENERIC_FORGERIES = {
    "tRCD": 2,
    "tCL": 5,
    "tWL": 3,
    "tCCD": 1,
    "tWTR": 1,
    "tWR": 2,
    "tRP": 2,
    "tRRD": 1,
    "tRAS": 6,
    "tRC": DDR3_1600.tRAS + DDR3_1600.tRP,  # slack removed
    "tFAW": None,  # back to the derived floor, far under the strict window
    "tRTRS": 0,
}


@pytest.mark.parametrize("field", sorted(GENERIC_FORGERIES))
def test_single_field_forgery_is_caught(field):
    strict = DramConfig(
        channels=1, ranks_per_channel=2, banks_per_rank=4,
        timings=STRICT_TIMINGS,
    )
    relaxed = dataclasses.replace(
        strict,
        timings=dataclasses.replace(
            STRICT_TIMINGS, **{field: GENERIC_FORGERIES[field]}
        ),
    )
    with pytest.raises(ProtocolViolation):
        _drive_generic(relaxed, random.Random(7), sanitizer_config=strict)


def test_trtp_forgery_is_caught():
    """tRTP binds only when a conflict PRE chases a row-hit burst.

    The default row-idle precharge policy (12 idle cycles) masks the
    strict 6-cycle tRTP, so the relaxed controller also disables it —
    a policy knob, not a protocol parameter, hence fair game.
    """
    strict = DramConfig(channels=1, ranks_per_channel=1, banks_per_rank=4,
                        timings=DDR3_1600)
    relaxed = dataclasses.replace(
        strict,
        timings=dataclasses.replace(DDR3_1600, tRTP=1),
        row_idle_precharge_cycles=0,
    )
    controller = ChannelController(0, relaxed, FrFcfsScheduler())
    controller.sanitizer = ProtocolSanitizer(strict, channel_id=0)
    # Enough row hits to retire tRAS, then a conflict: the PRE lands one
    # cycle after the last READ instead of the strict six.
    for i in range(8):
        controller.enqueue(Transaction(i << 6, DramLocation(0, 0, 0, 1, 0)), 0)
    controller.enqueue(Transaction(9 << 6, DramLocation(0, 0, 0, 2, 0)), 0)
    with pytest.raises(ProtocolViolation, match="tRTP"):
        for now in range(400):
            controller.step(now)


def test_trfc_forgery_is_caught():
    """An ACTIVATE slipped in behind a REF is flagged.

    Needs continuous demand across the first refresh point (~6250 DRAM
    cycles at DDR3-1600) so the relaxed controller has a reason to
    activate while the strict recovery window is still open.
    """
    strict = DramConfig(channels=1, ranks_per_channel=1, banks_per_rank=4,
                        timings=DDR3_1600)
    relaxed = dataclasses.replace(
        strict, timings=dataclasses.replace(DDR3_1600, tRFC=4)
    )
    controller = ChannelController(0, relaxed, FrFcfsScheduler())
    controller.sanitizer = ProtocolSanitizer(strict, channel_id=0)
    ids = itertools.count()
    with pytest.raises(ProtocolViolation, match="refresh"):
        for now in range(7000):
            if now % 12 == 0:
                i = next(ids)
                controller.enqueue(
                    Transaction(
                        i << 6,
                        DramLocation(0, 0, i % 4, 1 + (i // 4) % 3, 0),
                    ),
                    now,
                )
            controller.step(now)
