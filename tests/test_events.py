"""Event queue determinism."""

from repro.sim.events import EventQueue


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        order = []
        q.schedule(5, lambda: order.append(5))
        q.schedule(2, lambda: order.append(2))
        q.schedule(9, lambda: order.append(9))
        q.run_due(10)
        assert order == [2, 5, 9]

    def test_same_cycle_fires_in_schedule_order(self):
        q = EventQueue()
        order = []
        for k in range(5):
            q.schedule(3, lambda k=k: order.append(k))
        q.run_due(3)
        assert order == [0, 1, 2, 3, 4]

    def test_future_events_wait(self):
        q = EventQueue()
        fired = []
        q.schedule(10, lambda: fired.append(1))
        assert q.run_due(9) == 0
        assert not fired
        assert q.run_due(10) == 1
        assert fired

    def test_next_cycle(self):
        q = EventQueue()
        assert q.next_cycle() is None
        q.schedule(7, lambda: None)
        assert q.next_cycle() == 7

    def test_events_scheduled_during_run_respected(self):
        q = EventQueue()
        order = []

        def first():
            order.append("first")
            q.schedule(1, lambda: order.append("nested"))

        q.schedule(1, first)
        q.run_due(1)
        assert order == ["first", "nested"]

    def test_len(self):
        q = EventQueue()
        q.schedule(1, lambda: None)
        q.schedule(2, lambda: None)
        assert len(q) == 2
