"""Event queue determinism."""

from repro.sim.events import EventQueue


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        order = []
        q.schedule(5, lambda: order.append(5))
        q.schedule(2, lambda: order.append(2))
        q.schedule(9, lambda: order.append(9))
        q.run_due(10)
        assert order == [2, 5, 9]

    def test_same_cycle_fires_in_schedule_order(self):
        q = EventQueue()
        order = []
        for k in range(5):
            q.schedule(3, lambda k=k: order.append(k))
        q.run_due(3)
        assert order == [0, 1, 2, 3, 4]

    def test_future_events_wait(self):
        q = EventQueue()
        fired = []
        q.schedule(10, lambda: fired.append(1))
        assert q.run_due(9) == 0
        assert not fired
        assert q.run_due(10) == 1
        assert fired

    def test_next_cycle(self):
        q = EventQueue()
        assert q.next_cycle() is None
        q.schedule(7, lambda: None)
        assert q.next_cycle() == 7

    def test_events_scheduled_during_run_respected(self):
        q = EventQueue()
        order = []

        def first():
            order.append("first")
            q.schedule(1, lambda: order.append("nested"))

        q.schedule(1, first)
        q.run_due(1)
        assert order == ["first", "nested"]

    def test_len(self):
        q = EventQueue()
        q.schedule(1, lambda: None)
        q.schedule(2, lambda: None)
        assert len(q) == 2


class TestRunDueReentrancy:
    """The reentrancy contract the wake-driven engine leans on: anything
    a callback schedules at ``cycle <= now`` fires within the same
    ``run_due`` call, in (cycle, seq) order."""

    def test_same_cycle_chain_drains_in_one_call(self):
        q = EventQueue()
        order = []

        def link(n):
            order.append(n)
            if n < 4:
                q.schedule(3, lambda: link(n + 1))

        q.schedule(3, lambda: link(0))
        fired = q.run_due(3)
        assert order == [0, 1, 2, 3, 4]
        assert fired == 5
        assert len(q) == 0  # nothing due was left behind

    def test_earlier_cycle_schedule_fires_immediately(self):
        q = EventQueue()
        order = []

        def schedules_into_the_past():
            order.append("now")
            q.schedule(1, lambda: order.append("past"))  # cycle < now

        q.schedule(5, schedules_into_the_past)
        q.schedule(7, lambda: order.append("later"))
        assert q.run_due(6) == 2
        assert order == ["now", "past"]  # "past" is due immediately
        assert q.next_cycle() == 7  # future events untouched

    def test_mid_drain_schedules_order_after_preexisting_same_cycle(self):
        q = EventQueue()
        order = []

        def first():
            order.append("first")
            # Scheduled mid-drain at the same cycle: _seq puts it after
            # everything already pending at cycle 4.
            q.schedule(4, lambda: order.append("nested"))

        q.schedule(4, first)
        q.schedule(4, lambda: order.append("second"))
        q.run_due(4)
        assert order == ["first", "second", "nested"]

    def test_callback_scheduling_future_event_does_not_fire(self):
        q = EventQueue()
        order = []

        def now_then_later():
            order.append("now")
            q.schedule(11, lambda: order.append("later"))

        q.schedule(10, now_then_later)
        assert q.run_due(10) == 1
        assert order == ["now"]
        assert q.next_cycle() == 11
