"""CLPT comparator predictor."""

import pytest

from repro.core.clpt import CriticalLoadPredictionTable


class TestClpt:
    def test_unknown_pc_not_critical(self):
        clpt = CriticalLoadPredictionTable()
        assert not clpt.is_critical(10)
        assert clpt.consumer_count(10) == 0

    def test_threshold_three_default(self):
        clpt = CriticalLoadPredictionTable()
        clpt.record_consumers(10, 2)
        assert not clpt.is_critical(10)
        clpt.record_consumers(10, 3)
        assert clpt.is_critical(10)

    def test_threshold_two_variant(self):
        clpt = CriticalLoadPredictionTable(threshold=2)
        clpt.record_consumers(10, 2)
        assert clpt.is_critical(10)

    def test_count_overwritten_each_instance(self):
        clpt = CriticalLoadPredictionTable()
        clpt.record_consumers(10, 5)
        clpt.record_consumers(10, 1)
        assert clpt.consumer_count(10) == 1
        assert not clpt.is_critical(10)

    def test_aliasing_in_finite_table(self):
        clpt = CriticalLoadPredictionTable(entries=64)
        clpt.record_consumers(7, 4)
        assert clpt.is_critical(7 + 64)

    def test_unlimited_table(self):
        clpt = CriticalLoadPredictionTable(entries=None)
        clpt.record_consumers(7, 4)
        assert not clpt.is_critical(7 + 64)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CriticalLoadPredictionTable(threshold=0)

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            CriticalLoadPredictionTable(entries=100)

    def test_negative_count_rejected(self):
        clpt = CriticalLoadPredictionTable()
        with pytest.raises(ValueError):
            clpt.record_consumers(1, -1)
