"""Out-of-order core model: dispatch, issue, commit, blocking detection."""

import pytest

from repro.config import CoreConfig, DramConfig, SystemConfig
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.provider import CbpProvider, CriticalityProvider
from repro.core.cbp import CbpMetric
from repro.cpu.core import OutOfOrderCore
from repro.cpu.instruction import BRANCH, INT, LOAD, STORE, Trace
from repro.dram.controller import MemorySystem
from repro.sched.frfcfs import FrFcfsScheduler
from repro.sim.events import EventQueue

def make_compute_trace(n=500, pc_base=0):
    from repro.cpu.instruction import FP

    trace = Trace("compute")
    for i in range(n):
        trace.append(INT if i % 3 else FP, pc_base + (i % 40), 0, 1 if i else 0)
    return trace


class CoreHarness:
    def __init__(self, trace, config=None, provider=None, prewarm=None):
        self.config = config or SystemConfig(cores=1)
        self.events = EventQueue()
        self.memory = MemorySystem(self.config.dram, lambda c: FrFcfsScheduler())
        self.hier = MemoryHierarchy(self.config, self.memory, self.events)
        self.now = 0
        self.hier.bind_clock(lambda: self.now)
        if prewarm:
            self.hier.prewarm(0, prewarm)
        self.core = OutOfOrderCore(
            0, self.config.core, trace, self.hier,
            provider or CriticalityProvider(), self.events,
        )

    def run(self, max_cycles=500_000):
        while not self.core.done and self.now < max_cycles:
            self.events.run_due(self.now)
            self.memory.step(self.now)
            self.core.step(self.now)
            self.now += 1
        assert self.core.done, "core did not finish"
        return self.core.stats


class TestCompute:
    def test_all_instructions_commit(self):
        h = CoreHarness(make_compute_trace(400))
        stats = h.run()
        assert stats.committed == 400

    def test_ipc_bounded_by_width(self):
        h = CoreHarness(make_compute_trace(400))
        stats = h.run()
        assert 0 < stats.ipc <= 4.0

    def test_dependency_chain_serialises(self):
        # A pure serial INT chain commits ~1 per cycle; an independent
        # stream commits ~4 per cycle.
        serial = Trace("serial")
        for i in range(300):
            serial.append(INT, 1, 0, 1 if i else 0)
        parallel = Trace("parallel")
        for i in range(300):
            parallel.append(INT, 1, 0, 0)
        t_serial = CoreHarness(serial).run().cycles
        t_parallel = CoreHarness(parallel).run().cycles
        # Serial: 1 per cycle; parallel: 2 per cycle (two INT units).
        assert t_serial >= 1.9 * t_parallel


class TestLoads:
    def test_load_hits_from_prewarmed_cache(self):
        trace = Trace("l")
        for i in range(100):
            trace.append(LOAD if i % 4 == 0 else INT, i % 16, (i * 8) % 4096, 0)
        h = CoreHarness(trace, prewarm=[(0, 8192, 1)])
        stats = h.run()
        assert stats.committed == 100
        assert stats.blocking_loads == 0  # L1 hits never block as DRAM loads

    def test_dram_load_blocks_rob_head(self):
        trace = Trace("m")
        trace.append(LOAD, 5, 1 << 22, 0)
        for _ in range(20):
            trace.append(INT, 6, 0, 1)
        h = CoreHarness(trace)
        stats = h.run()
        assert stats.blocking_loads == 1
        assert stats.blocked_cycles > 50
        assert stats.total_block_stall > 50

    def test_blocking_reported_to_provider(self):
        provider = CbpProvider(entries=None, metric=CbpMetric.MAX_STALL)
        trace = Trace("m")
        for rep in range(3):
            trace.append(LOAD, 5, (1 << 22) + rep * (1 << 14), 0)
            for _ in range(30):
                trace.append(INT, 6, 0, 1)
        h = CoreHarness(trace, provider=provider)
        h.run()
        assert provider.cbp.predict(5) > 50  # stall recorded under pc 5

    def test_independent_loads_overlap(self):
        # Two independent DRAM loads should take much less than 2x one.
        one = Trace("one")
        one.append(LOAD, 1, 1 << 22, 0)
        one.append(INT, 2, 0, 1)
        two = Trace("two")
        two.append(LOAD, 1, 1 << 22, 0)
        two.append(LOAD, 3, (1 << 22) + (1 << 16), 0)
        two.append(INT, 2, 0, 1)
        two.append(INT, 4, 0, 1)
        t1 = CoreHarness(one).run().cycles
        t2 = CoreHarness(two).run().cycles
        assert t2 < t1 * 1.5

    def test_dependent_loads_serialise(self):
        dep = Trace("dep")
        dep.append(LOAD, 1, 1 << 22, 0)
        dep.append(LOAD, 3, (1 << 22) + (1 << 16), 1)  # depends on prior load
        one = Trace("one")
        one.append(LOAD, 1, 1 << 22, 0)
        t_dep = CoreHarness(dep).run().cycles
        t_one = CoreHarness(one).run().cycles
        assert t_dep > t_one * 1.6


class TestLoadQueue:
    def test_lq_capacity_stalls_dispatch(self):
        cfg = SystemConfig(cores=1)
        cfg = cfg.scaled(core=cfg.core.scaled(load_queue_entries=4))
        trace = Trace("lq")
        for k in range(40):
            trace.append(LOAD, k % 8, (1 << 22) + k * (1 << 14), 0)
        h = CoreHarness(trace, config=cfg)
        stats = h.run()
        assert stats.lq_full_cycles > 0

    def test_bigger_lq_reduces_stall(self):
        def run_with(lq):
            cfg = SystemConfig(cores=1)
            cfg = cfg.scaled(core=cfg.core.scaled(load_queue_entries=lq))
            trace = Trace("lq")
            for k in range(60):
                trace.append(LOAD, k % 8, (1 << 22) + k * (1 << 14), 0)
                trace.append(INT, 99, 0, 0)
            return CoreHarness(trace, config=cfg).run()
        small = run_with(4)
        big = run_with(64)
        assert big.lq_full_cycles < small.lq_full_cycles


class TestStores:
    def test_stores_commit_without_blocking(self):
        trace = Trace("st")
        for k in range(50):
            trace.append(STORE, 3, (1 << 22) + k * 64, 0)
            trace.append(INT, 4, 0, 0)
        h = CoreHarness(trace)
        stats = h.run()
        assert stats.committed == 100
        assert h.hier.stats.stores == 50


class TestBranches:
    def test_mispredicts_slow_execution(self):
        def branch_trace(misp):
            t = Trace("br")
            for i in range(400):
                if i % 8 == 0:
                    t.append(BRANCH, 1, 0, 1, 0, misp=misp)
                else:
                    t.append(INT, 2, 0, 0)
            return t
        clean = CoreHarness(branch_trace(False)).run().cycles
        dirty = CoreHarness(branch_trace(True)).run().cycles
        assert dirty > clean * 1.5


class TestConsumerCounting:
    def test_clpt_consumer_counts_reported(self):
        counts = []

        class Recorder(CriticalityProvider):
            def on_load_consumers(self, pc, count):
                counts.append((pc, count))

        trace = Trace("cc")
        trace.append(LOAD, 9, 1 << 12, 0)
        trace.append(INT, 1, 0, 1)   # consumer 1
        trace.append(INT, 2, 0, 2)   # consumer 2 (distance 2)
        trace.append(INT, 3, 0, 0)
        h = CoreHarness(trace, provider=Recorder(), prewarm=[(0, 8192, 1)])
        h.run()
        assert counts == [(9, 2)]


class TestRobOccupancy:
    def test_rob_never_exceeds_capacity(self):
        trace = Trace("rob")
        trace.append(LOAD, 1, 1 << 22, 0)
        for _ in range(300):
            trace.append(INT, 2, 0, 0)
        h = CoreHarness(trace)
        peak = 0
        while not h.core.done and h.now < 100_000:
            h.events.run_due(h.now)
            h.memory.step(h.now)
            h.core.step(h.now)
            peak = max(peak, h.core.rob_occupancy())
            h.now += 1
        assert h.core.done
        assert peak <= h.config.core.rob_entries
        assert peak > 64  # the DRAM stall should fill most of the window
