"""Telemetry output must be bit-identical across loop modes and processes.

The interval sampler folds sample points inside fast-forward windows and
the trace records only at stepped cycles, so histograms, sample streams,
and trace events must come out exactly the same whether the loop skips,
steps cycle by cycle, or runs in a forked worker.  ``result_fingerprint``
covers all the new telemetry fields, so fingerprint equality pins every
one of them at once.
"""

from __future__ import annotations

import pytest

from repro.config import SimScale, SystemConfig
from repro.sim.stats import result_fingerprint
from repro.sim.system import System
from repro.workloads.parallel import parallel_traces

SCALE = SimScale(instructions_per_core=800, warmup_instructions=0, seed=11)


def _system(app="fft", scheduler="fr-fcfs", provider_spec=None):
    config = SystemConfig.parallel_default()
    traces = parallel_traces(
        app, config.cores, SCALE.instructions_per_core, seed=SCALE.seed
    )
    return System(config, traces, scheduler=scheduler,
                  provider_spec=provider_spec)


@pytest.fixture
def telemetry_on(monkeypatch):
    monkeypatch.setenv("REPRO_SAMPLE_EVERY", "64")
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


class TestSkipIdentity:
    def test_samples_and_trace_identical_across_modes(self, telemetry_on):
        naive = _system().run(skip_cycles=False)
        fast = _system().run(skip_cycles=True)
        assert naive.sample_cycles, "sampler produced nothing"
        assert naive.trace_events, "trace produced nothing"
        assert naive.sample_cycles == fast.sample_cycles
        assert naive.timeseries == fast.timeseries
        assert list(naive.trace_events) == list(fast.trace_events)
        assert naive.metrics == fast.metrics
        assert result_fingerprint(naive) == result_fingerprint(fast)

    def test_with_criticality_machinery(self, telemetry_on):
        def make():
            return _system(scheduler="casras-crit",
                           provider_spec=("cbp", {"entries": 64}))

        naive = make().run(skip_cycles=False)
        fast = make().run(skip_cycles=True)
        assert result_fingerprint(naive) == result_fingerprint(fast)
        # The criticality path exercises the prediction trace family.
        assert any(e[0] == "pred" for e in naive.trace_events)

    def test_histograms_identical_across_modes(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        naive = _system().run(skip_cycles=False)
        fast = _system().run(skip_cycles=True)
        assert naive.hierarchy.noncrit_latency.state() == \
            fast.hierarchy.noncrit_latency.state()
        for a, b in zip(naive.channels, fast.channels):
            assert a.crit_wait.state() == b.crit_wait.state()
            assert a.noncrit_wait.state() == b.noncrit_wait.state()

    def test_decimated_streams_identical(self, telemetry_on, monkeypatch):
        from repro.telemetry import sampler as sampler_mod

        monkeypatch.setattr(sampler_mod, "_SAMPLE_CAP", 16)
        naive = _system().run(skip_cycles=False)
        fast = _system().run(skip_cycles=True)
        assert len(naive.sample_cycles) < 32
        assert naive.sample_cycles == fast.sample_cycles
        assert naive.timeseries == fast.timeseries


class TestCrossProcess:
    def test_worker_process_matches_inline(self, telemetry_on, tmp_path,
                                           monkeypatch):
        from repro.sim.engine import RunSpec, run_many, run_one

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        specs = [
            RunSpec(kind="parallel", workload="fft", scale=SCALE),
            RunSpec(kind="parallel", workload="radix", scale=SCALE),
        ]
        pooled = run_many(specs, jobs=2)
        for spec, result in zip(specs, pooled):
            inline = run_one(spec)
            assert result.sample_cycles
            assert result_fingerprint(inline) == result_fingerprint(result)

    def test_verify_determinism_with_telemetry(self, telemetry_on):
        from repro.sim.engine import RunSpec, verify_determinism

        spec = RunSpec(kind="parallel", workload="fft", scale=SCALE)
        report = verify_determinism(spec, subprocess=True)
        assert report["ok"], report


class TestDisabledPath:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLE_EVERY", raising=False)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        result = _system().run()
        assert result.sample_cycles == []
        assert result.timeseries == {}
        assert result.trace_events == []
        assert result.trace_dropped == 0
        # The registry itself is always on: histograms ride on state the
        # simulator keeps anyway.
        assert result.metrics["hier.noncrit_latency"]["count"] > 0

    def test_trace_cap_bounds_memory(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TRACE_CAP", "32")
        result = _system().run()
        assert len(result.trace_events) == 32
        assert result.trace_dropped > 0


def _stream_digest(directory) -> dict[str, bytes]:
    """Every stream artifact's bytes, keyed by file name."""
    import pathlib

    return {
        path.name: path.read_bytes()
        for path in sorted(pathlib.Path(directory).iterdir())
    }


class TestStreamingSkipIdentity:
    """Streamed segments are bit-identical across loop modes/processes.

    Segment seals happen either at record counts (a pure function of the
    mode-invariant record stream) or at flush points folded on the
    virtual cycle axis, so the bytes on disk — including segment
    boundaries and the manifest — must not depend on how the loop got
    there.
    """

    @pytest.fixture
    def stream_env(self, monkeypatch, telemetry_on):
        # Small segments + a flush cadence that lands inside fast-forward
        # windows, to exercise both seal triggers.
        monkeypatch.setenv("REPRO_STREAM_SEGMENT", "64")
        monkeypatch.setenv("REPRO_STREAM_FLUSH_EVERY", "500")

    def test_streams_identical_across_modes(self, stream_env, tmp_path,
                                            monkeypatch):
        digests = {}
        for mode, skip in (("naive", False), ("fast", True)):
            directory = tmp_path / mode
            monkeypatch.setenv("REPRO_STREAM_DIR", str(directory))
            digests[mode] = (
                _system().run(skip_cycles=skip), _stream_digest(directory)
            )
        naive, naive_files = digests["naive"]
        fast, fast_files = digests["fast"]
        assert len(naive_files) > 2, "expected multiple sealed segments"
        assert naive_files == fast_files
        assert result_fingerprint(naive) == result_fingerprint(fast)

    def test_stream_identical_from_fresh_subprocess(self, stream_env,
                                                    tmp_path, monkeypatch):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        from repro.sim.engine import RunSpec, run_one

        inline_dir = tmp_path / "inline"
        child_dir = tmp_path / "child"
        monkeypatch.delenv("REPRO_STREAM_DIR", raising=False)
        spec = RunSpec(kind="parallel", workload="fft", scale=SCALE,
                       stream_dir=str(inline_dir))
        run_one(spec)
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            pool.submit(
                run_one,
                RunSpec(kind="parallel", workload="fft", scale=SCALE,
                        stream_dir=str(child_dir)),
            ).result()
        assert _stream_digest(inline_dir) == _stream_digest(child_dir)

    def test_streaming_leaves_results_untouched(self, stream_env, tmp_path,
                                                monkeypatch):
        """Enabling the stream must not perturb the simulation."""
        monkeypatch.setenv("REPRO_DETCHAIN_EVERY", "256")
        monkeypatch.delenv("REPRO_STREAM_DIR", raising=False)
        plain = _system().run()
        monkeypatch.setenv("REPRO_STREAM_DIR", str(tmp_path / "s"))
        streamed = _system().run()
        assert plain.det_chain is not None
        assert plain.det_chain == streamed.det_chain
        assert result_fingerprint(plain) == result_fingerprint(streamed)

    def test_verify_skip_does_not_clobber_stream(self, stream_env, tmp_path,
                                                 monkeypatch):
        from repro.sim.runner import run_parallel_workload
        from repro.telemetry import stream as stream_mod

        directory = tmp_path / "verify"
        monkeypatch.setenv("REPRO_STREAM_DIR", str(directory))
        monkeypatch.setenv("REPRO_VERIFY_SKIP", "1")
        result = run_parallel_workload("fft", scale=SCALE)
        manifest = stream_mod.read_manifest(directory)
        assert manifest["status"] == "complete"
        assert manifest["cycles"] == result.cycles
        streamed = sum(1 for _ in stream_mod.iter_records(directory))
        assert streamed == len(result.trace_events)


class TestDetStateCoverage:
    """PR satellite: hierarchy/MSHR/channel-timing state is in the chain."""

    def test_hierarchy_det_state_changes_with_occupancy(self):
        system = _system()
        before = list(system.hierarchy.det_state())
        system.run(max_cycles=400)
        after = list(system.hierarchy.det_state())
        assert before != after

    def test_snapshot_includes_hierarchy(self):
        from repro.analysis import detchain

        system = _system()
        base = detchain.snapshot(system)
        assert len(base) > sum(
            len(core.det_state()) for core in system.cores
        ) + 2, "snapshot should extend past cores + event queue"
