"""Address mapping: page-interleaved decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.config import DramConfig
from repro.dram.addressmap import AddressMap, DramLocation


@pytest.fixture
def amap():
    return AddressMap(DramConfig())


class TestLocate:
    def test_column_is_offset_within_row_buffer(self, amap):
        loc = amap.locate(1024 + 17)
        assert loc.column == 17

    def test_consecutive_pages_stripe_channels(self, amap):
        locs = [amap.locate(page * 1024) for page in range(8)]
        assert [l.channel for l in locs] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_same_page_same_row_and_bank(self, amap):
        a = amap.locate(5 * 1024)
        b = amap.locate(5 * 1024 + 1000)
        assert (a.channel, a.rank, a.bank, a.row) == (b.channel, b.rank, b.bank, b.row)

    def test_banks_rotate_before_ranks(self, amap):
        # Same channel, consecutive pages on it: bank changes first.
        base = amap.locate(0)
        nxt = amap.locate(4 * 1024)  # +1 page on channel 0
        assert nxt.channel == base.channel
        assert nxt.bank == (base.bank + 1) % 8
        assert nxt.rank == base.rank

    def test_negative_address_rejected(self, amap):
        with pytest.raises(ValueError):
            amap.locate(-1)

    def test_single_channel_config(self):
        amap = AddressMap(DramConfig(channels=1))
        for page in range(16):
            assert amap.locate(page * 1024).channel == 0


class TestCompose:
    def test_roundtrip_simple(self, amap):
        for addr in (0, 1023, 1024, 123456, 999 * 1024 + 7):
            assert amap.compose(amap.locate(addr)) == addr

    @given(st.integers(min_value=0, max_value=(1 << 34) - 1))
    def test_roundtrip_property(self, addr):
        amap = AddressMap(DramConfig())
        loc = amap.locate(addr)
        # compose may alias rows beyond capacity; within capacity it is exact
        row_capacity = 16384 * 4 * 8 * 4 * 1024
        if addr < row_capacity:
            assert amap.compose(loc) == addr

    @given(st.integers(min_value=0, max_value=(1 << 30) - 1))
    def test_fields_in_range(self, addr):
        cfg = DramConfig()
        loc = AddressMap(cfg).locate(addr)
        assert 0 <= loc.channel < cfg.channels
        assert 0 <= loc.rank < cfg.ranks_per_channel
        assert 0 <= loc.bank < cfg.banks_per_rank
        assert 0 <= loc.row < cfg.rows_per_bank
        assert 0 <= loc.column < cfg.row_buffer_bytes
