"""Host perf counters (``REPRO_PERF=1``): populated when on, free when off.

The layer's contract has two halves:

* **observability** — with the knob on, every engine reports its own
  internals (the event engine its wake-heap churn, the skipping loops
  their windows) plus per-phase host-clock attribution;
* **identity** — turning the knob on changes *nothing* the simulation
  produces: det-chain, result fingerprint, streamed bytes, and the
  engine cache key are bit-identical, and with the knob off no counter
  object is ever even constructed.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.sim.stats import result_fingerprint
from repro.sim.system import System
from repro.telemetry import perfcounters
from repro.workloads.parallel import parallel_traces

ENGINES = ("naive", "fast", "event")


def _run(engine: str, monkeypatch=None, instructions: int = 1_200):
    config = SystemConfig.parallel_default()
    traces = parallel_traces("fft", config.cores, instructions, seed=7)
    system = System(config, traces)
    return system.run(engine=engine)


@pytest.fixture
def perf_on(monkeypatch):
    monkeypatch.setenv("REPRO_PERF", "1")


class TestCountersPopulate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF", raising=False)
        assert not perfcounters.enabled()
        assert _run("event").host_perf is None

    def test_zero_is_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF", "0")
        assert not perfcounters.enabled()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_snapshot_schema(self, perf_on, engine):
        snap = _run(engine).host_perf
        assert snap["version"] == 1
        assert set(snap["counters"]) == {n for n, _ in perfcounters.FIELDS}
        assert set(snap["phase_ns"]) == set(perfcounters.PHASES)
        assert all(v >= 0 for v in snap["counters"].values())

    @pytest.mark.parametrize("engine", ENGINES)
    def test_universal_counters(self, perf_on, engine):
        counters = _run(engine).host_perf["counters"]
        assert counters["visited_cycles"] > 0
        assert counters["event_pushes"] > 0
        assert counters["event_pops"] > 0
        assert counters["event_pops"] <= counters["event_pushes"]

    def test_event_engine_heap_counters(self, perf_on):
        counters = _run("event").host_perf["counters"]
        assert counters["heap_pushes"] > 0
        assert counters["wake_hook_fires"] > 0
        assert counters["chan_wake_republishes"] > 0
        # every heap entry is either consumed at its wake cycle or
        # dropped stale; drops cannot exceed what was pushed
        assert counters["heap_stale_drops"] <= counters["heap_pushes"]

    @pytest.mark.parametrize("engine", ("fast", "event"))
    def test_skip_window_counters(self, perf_on, engine):
        counters = _run(engine).host_perf["counters"]
        assert counters["skip_windows"] > 0
        assert counters["skip_cycles_planned"] >= 0
        assert counters["skip_forever"] <= counters["skip_windows"]

    def test_naive_never_skips(self, perf_on):
        counters = _run("naive").host_perf["counters"]
        assert counters["skip_windows"] == 0
        assert counters["heap_pushes"] == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_phase_attribution_accumulates(self, perf_on, engine):
        phases = _run(engine).host_perf["phase_ns"]
        assert sum(phases.values()) > 0
        assert all(v >= 0 for v in phases.values())

    def test_visited_cycles_event_at_most_naive(self, perf_on):
        visited = {
            engine: _run(engine).host_perf["counters"]["visited_cycles"]
            for engine in ("naive", "event")
        }
        assert visited["event"] <= visited["naive"]


class TestIdentity:
    """REPRO_PERF=1 must be invisible to everything the run computes."""

    def test_fingerprint_and_chain_unchanged(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF", raising=False)
        baseline = {e: _run(e) for e in ENGINES}
        monkeypatch.setenv("REPRO_PERF", "1")
        perfed = {e: _run(e) for e in ENGINES}
        for engine in ENGINES:
            assert result_fingerprint(perfed[engine]) == result_fingerprint(
                baseline[engine]
            ), engine
            assert perfed[engine].det_chain == baseline[engine].det_chain

    def test_host_perf_not_in_fingerprint(self, perf_on):
        result = _run("event")
        assert result.host_perf is not None
        stripped = result_fingerprint(result)
        result.host_perf = None
        assert result_fingerprint(result) == stripped

    def test_streamed_bytes_identical(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SAMPLE_EVERY", "64")
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_STREAM_SEGMENT", "64")

        def streamed(directory) -> dict[str, bytes]:
            return {
                p.name: p.read_bytes()
                for p in sorted(directory.glob("*.jsonl"))
            }

        byte_maps = []
        for perf in ("", "1"):
            directory = tmp_path / f"stream{perf or '0'}"
            if perf:
                monkeypatch.setenv("REPRO_PERF", perf)
            else:
                monkeypatch.delenv("REPRO_PERF", raising=False)
            monkeypatch.setenv("REPRO_STREAM_DIR", str(directory))
            _run("event")
            byte_maps.append(streamed(directory))
        assert byte_maps[0] == byte_maps[1]
        assert any(byte_maps[0].values())  # the comparison saw real data

    def test_cache_key_unchanged(self, monkeypatch):
        from repro.sim.engine import RunSpec, spec_key

        spec = RunSpec(kind="parallel", workload="fft", scheduler="fr-fcfs")
        monkeypatch.delenv("REPRO_PERF", raising=False)
        off = spec_key(spec)
        monkeypatch.setenv("REPRO_PERF", "1")
        assert spec_key(spec) == off

    def test_disabled_path_never_constructs_counters(self, monkeypatch):
        """With the knob off the hot path must not even allocate the
        counter object — the CI overhead guard in spirit, enforced
        structurally: a booby-trapped constructor proves no code path
        instantiates PerfCounters during an unperfed run."""
        monkeypatch.delenv("REPRO_PERF", raising=False)

        def boom(self):
            raise AssertionError(
                "PerfCounters constructed with REPRO_PERF off"
            )

        monkeypatch.setattr(perfcounters.PerfCounters, "__init__", boom)
        for engine in ENGINES:
            result = _run(engine)
            assert result.host_perf is None


class TestRender:
    def test_render_none_is_a_hint(self):
        text = perfcounters.render(None)
        assert "REPRO_PERF" in text

    def test_render_table(self, perf_on):
        result = _run("event")
        text = perfcounters.render(result.host_perf, wall_seconds=1.0)
        assert "event_pushes" in text
        assert "phase" in text
        for phase in perfcounters.PHASES:
            assert phase in text
