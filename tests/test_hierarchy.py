"""Memory hierarchy: latencies, MSHR merging, coherence, criticality flow."""

import pytest

from repro.config import DramConfig, SystemConfig
from repro.cache.hierarchy import MemoryHierarchy
from repro.dram.controller import MemorySystem
from repro.sched.frfcfs import FrFcfsScheduler
from repro.sim.events import EventQueue


class Harness:
    """Hierarchy + memory + clock, steppable cycle by cycle."""

    def __init__(self, config=None):
        self.config = config or SystemConfig(cores=2)
        self.events = EventQueue()
        self.memory = MemorySystem(self.config.dram, lambda c: FrFcfsScheduler())
        self.hier = MemoryHierarchy(self.config, self.memory, self.events)
        self.now = 0
        self.hier.bind_clock(lambda: self.now)

    def run(self, cycles):
        for _ in range(cycles):
            self.events.run_due(self.now)
            self.memory.step(self.now)
            self.now += 1

    def load(self, core, addr, pc=1, critical=False, magnitude=0):
        done = []
        handle = self.hier.load(
            core, pc, addr, critical, magnitude, lambda c: done.append(c), self.now
        )
        return handle, done

    def complete(self, done, limit=20_000):
        start = self.now
        while not done and self.now < start + limit:
            self.run(1)
        assert done, "load never completed"
        return done[0]


class TestLoadLatencies:
    def test_l1_hit_latency(self):
        h = Harness()
        h.hier.prewarm(0, [(0, 4096, 1)])
        _handle, done = h.load(0, 100)
        t = h.complete(done)
        assert t == h.config.l1d.round_trip_latency

    def test_l2_hit_latency(self):
        h = Harness()
        h.hier.prewarm(0, [(0, 4096, 2)])  # L2 only
        _handle, done = h.load(0, 100)
        t = h.complete(done)
        assert t == h.config.l2.round_trip_latency

    def test_dram_load_slower_than_l2(self):
        h = Harness()
        _handle, done = h.load(0, 1 << 22)
        t = h.complete(done)
        assert t > h.config.l2.round_trip_latency
        assert h.hier.stats.dram_loads == 1

    def test_handle_marks_dram(self):
        h = Harness()
        handle, done = h.load(0, 1 << 22)
        h.complete(done)
        assert handle.went_to_dram
        assert handle.txn is not None


class TestMshrMerging:
    def test_same_line_loads_merge(self):
        h = Harness()
        _h1, d1 = h.load(0, 1 << 22)
        _h2, d2 = h.load(0, (1 << 22) + 8)
        h.complete(d1)
        h.complete(d2)
        assert h.hier.stats.dram_loads == 1  # one fill serves both

    def test_merged_critical_load_raises_txn_urgency(self):
        h = Harness()
        h1, d1 = h.load(0, 1 << 22, critical=False)
        h.run(40)  # let it reach the DRAM queue
        h2, d2 = h.load(0, (1 << 22) + 8, critical=True, magnitude=99)
        assert h1.txn is not None
        assert h1.txn.critical
        assert h1.txn.magnitude == 99
        h.complete(d1)
        h.complete(d2)

    def test_l1_mshr_full_rejects(self):
        import dataclasses

        from repro.config import L1D_DEFAULT

        cfg = SystemConfig(
            cores=2, l1d=dataclasses.replace(L1D_DEFAULT, mshr_entries=2)
        )
        h = Harness(cfg)
        assert h.load(0, 1 << 22)[0] is not None
        assert h.load(0, (1 << 22) + 4096)[0] is not None
        assert h.load(0, (1 << 22) + 8192)[0] is None  # full -> replay


class TestCriticalityPropagation:
    def test_annotation_reaches_txn(self):
        h = Harness()
        handle, done = h.load(0, 1 << 23, pc=42, critical=True, magnitude=321)
        h.run(40)
        assert handle.txn is not None
        assert handle.txn.critical
        assert handle.txn.magnitude == 321
        assert handle.txn.pc == 42
        h.complete(done)

    def test_latency_stats_split_by_class(self):
        h = Harness()
        _h1, d1 = h.load(0, 1 << 23, critical=True, magnitude=5)
        _h2, d2 = h.load(0, 2 << 23, critical=False)
        h.complete(d1)
        h.complete(d2)
        s = h.hier.stats
        assert s.crit_latency.count == 1
        assert s.noncrit_latency.count == 1
        assert s.mean_latency(True) > 0

    def test_per_pc_latency_recorded(self):
        h = Harness()
        _h1, d1 = h.load(0, 1 << 23, pc=77)
        h.complete(d1)
        assert 77 in h.hier.stats.pc_latency


class TestStoresAndCoherence:
    def test_store_hit_dirties_line(self):
        h = Harness()
        h.hier.prewarm(0, [(0, 4096, 1)])
        h.hier.store(0, 100, h.now)
        line = h.hier.l1[0].peek(96)
        assert line.state == "M"
        assert line.dirty

    def test_store_upgrade_invalidates_remote_sharer(self):
        h = Harness()
        h.hier.prewarm(0, [(0, 4096, 1)])
        h.hier.prewarm(1, [(0, 4096, 1)])
        h.hier.store(0, 100, h.now)
        assert h.hier.l1[1].peek(96) is None
        assert h.hier.stats.invalidations >= 1

    def test_store_miss_rfo_fetches_line(self):
        h = Harness()
        h.hier.store(0, 1 << 22, h.now)
        h.run(2_000)
        line = h.hier.l1[0].peek(1 << 22)
        assert line is not None
        assert line.state == "M"

    def test_load_after_remote_modified_gets_shared_copy(self):
        h = Harness()
        h.hier.prewarm(0, [(0, 4096, 1)])
        h.hier.store(0, 100, h.now)
        _handle, done = h.load(1, 100)
        h.complete(done)
        assert h.hier.l1[0].peek(96).state == "S"
        assert h.hier.l1[1].peek(96) is not None
        assert h.hier.stats.interventions >= 1

    def test_store_buffer_backpressure_signal(self):
        h = Harness()
        assert h.hier.can_accept_store(0)


class TestWritebacks:
    def test_dirty_l2_eviction_writes_to_dram(self):
        import dataclasses

        from repro.config import L2_DEFAULT

        tiny_l2 = dataclasses.replace(
            L2_DEFAULT, size_bytes=2 * 64 * 8, ways=2  # 8 sets, 2 ways
        )
        cfg = SystemConfig(cores=2, l2=tiny_l2)
        h = Harness(cfg)
        # Dirty a line, then stream enough lines through its set to evict.
        h.hier.store(0, 0, h.now)
        h.run(2_000)
        for k in range(1, 6):
            _handle, done = h.load(0, k * 8 * 64 * 2)  # same set (8 sets)
            h.complete(done)
        h.run(4_000)
        assert h.hier.stats.writebacks >= 1


class TestPrewarm:
    def test_level1_fills_both_levels(self):
        h = Harness()
        h.hier.prewarm(0, [(0, 1024, 1)])
        assert h.hier.l1[0].peek(0) is not None
        assert h.hier.l2.peek(0) is not None

    def test_level2_fills_l2_only(self):
        h = Harness()
        h.hier.prewarm(0, [(0, 1024, 2)])
        assert h.hier.l1[0].peek(0) is None
        assert h.hier.l2.peek(0) is not None
