"""Workload generators: determinism, mix, structure."""

import pytest

from repro.cpu.instruction import BRANCH, LOAD, STORE
from repro.workloads.models import PARALLEL_APPS, SPEC_APPS
from repro.workloads.multiprog import BUNDLES, bundle_traces
from repro.workloads.parallel import PARALLEL_APP_NAMES, parallel_traces
from repro.workloads.synthetic import clear_trace_cache, generate_trace


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestDeterminism:
    def test_same_args_same_trace(self):
        model = PARALLEL_APPS["fft"]
        clear_trace_cache()
        a = generate_trace(model, 2000, 0, 8, seed=1)
        clear_trace_cache()
        b = generate_trace(model, 2000, 0, 8, seed=1)
        assert a.itypes == b.itypes
        assert a.addrs == b.addrs
        assert a.pcs == b.pcs

    def test_seeds_differ(self):
        model = PARALLEL_APPS["fft"]
        a = generate_trace(model, 2000, 0, 8, seed=1)
        b = generate_trace(model, 2000, 0, 8, seed=2)
        assert a.addrs != b.addrs

    def test_cache_returns_same_object(self):
        model = PARALLEL_APPS["fft"]
        a = generate_trace(model, 2000, 0, 8, seed=1)
        b = generate_trace(model, 2000, 0, 8, seed=1)
        assert a is b


class TestStructure:
    def test_exact_length(self):
        model = PARALLEL_APPS["mg"]
        trace = generate_trace(model, 3333, 0, 8, seed=1)
        assert len(trace) == 3333

    def test_threads_share_static_code(self):
        t0 = parallel_traces("fft", 2, 8000, seed=1)[0]
        t1 = parallel_traces("fft", 2, 8000, seed=1)[1]
        # Same SPMD program: the threads draw PCs from one static pool
        # (which loop bodies each thread visits varies).
        shared = t0.static_pcs() & t1.static_pcs()
        assert shared
        universe = t0.static_pcs() | t1.static_pcs()
        assert max(universe) < 16 * 1024  # one program's PC space

    def test_threads_have_disjoint_private_regions(self):
        traces = parallel_traces("fft", 2, 4000, seed=1)
        model = PARALLEL_APPS["fft"]
        shared_limit = max(64 * 1024, model.footprint_bytes // 4)
        private = []
        for t in traces:
            addrs = {a for a, ty in zip(t.addrs, t.itypes)
                     if ty in (LOAD, STORE) and a >= shared_limit}
            private.append(addrs)
        assert not (private[0] & private[1])

    def test_prewarm_hints_present(self):
        trace = generate_trace(PARALLEL_APPS["fft"], 1000, 0, 8, seed=1)
        assert len(trace.prewarm) == 2
        levels = {level for _b, _n, level in trace.prewarm}
        assert levels == {1, 2}

    def test_dependencies_point_backwards(self):
        trace = generate_trace(PARALLEL_APPS["scalparc"], 3000, 0, 8, seed=1)
        for i in range(len(trace)):
            assert trace.dep1[i] >= 0
            assert trace.dep2[i] >= 0

    def test_mispredicts_only_on_branches(self):
        trace = generate_trace(PARALLEL_APPS["fft"], 3000, 0, 8, seed=1)
        for ty, m in zip(trace.itypes, trace.misp):
            if m:
                assert ty == BRANCH


class TestMix:
    def test_load_fraction_close_to_model(self):
        model = PARALLEL_APPS["swim"]
        trace = generate_trace(model, 20000, 0, 8, seed=1)
        loads = trace.count_type(LOAD) / len(trace)
        # Base mix plus planted burst loads.
        assert model.load_frac * 0.7 < loads < model.load_frac + 0.15

    def test_memory_intensive_app_has_more_cold_traffic(self):
        # 'mg' (M) should touch far more distinct high addresses than 'ep' (P).
        def distinct_cold(name):
            model = SPEC_APPS[name]
            trace = generate_trace(model, 15000, 0, 1, seed=1)
            hot_warm = model.hot_bytes + model.warm_bytes + 64 * 1024 * 16
            return len({
                a // 64 for a, ty in zip(trace.addrs, trace.itypes)
                if ty == LOAD and a > hot_warm
            })
        assert distinct_cold("mg") > 3 * distinct_cold("ep")


class TestBundles:
    def test_all_bundles_defined(self):
        assert set(BUNDLES) == {
            "AELV", "CMLI", "GAMV", "GDPC", "GSMV", "RFEV", "RFGI", "RGTM"
        }

    def test_bundles_are_four_apps(self):
        for apps in BUNDLES.values():
            assert len(apps) == 4
            for app in apps:
                assert app in SPEC_APPS

    def test_disjoint_pc_and_address_spaces(self):
        traces = bundle_traces("AELV", 3000, seed=1)
        pcs = [t.static_pcs() for t in traces]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (pcs[i] & pcs[j])
        addr_sets = [
            {a for a, ty in zip(t.addrs, t.itypes) if ty in (LOAD, STORE) and a}
            for t in traces
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (addr_sets[i] & addr_sets[j])

    def test_unknown_bundle_raises(self):
        with pytest.raises(ValueError):
            bundle_traces("NOPE", 100)

    def test_unknown_app_raises(self):
        with pytest.raises(ValueError):
            parallel_traces("nosuch", 2, 100)


class TestModels:
    def test_nine_parallel_apps(self):
        assert len(PARALLEL_APPS) == 9
        assert set(PARALLEL_APP_NAMES) == set(PARALLEL_APPS)

    def test_sensitivity_classes(self):
        assert SPEC_APPS["ep"].sensitivity == "P"
        assert SPEC_APPS["mcf"].sensitivity == "M"
        assert SPEC_APPS["vpr"].sensitivity == "C"

    def test_ocean_has_large_static_population(self):
        assert PARALLEL_APPS["ocean"].static_loads > 5 * PARALLEL_APPS["art"].static_loads
