"""Open-page precharge policy: scheduler-owned admissibility rules."""

import pytest

from repro.core.critsched import CasRasCritScheduler, CritCasRasScheduler
from repro.dram.addressmap import DramLocation
from repro.dram.command import CandidateCommand, CommandKind
from repro.dram.transaction import Transaction
from repro.sched.frfcfs import FrFcfsScheduler
from repro.sched.tcm_crit import TcmCritScheduler


class FakeController:
    def __init__(self, reads=()):
        self.read_queue = list(reads)
        self.write_queue = []

    class config:
        row_idle_precharge_cycles = 12


def txn(seq, critical=False, magnitude=0):
    t = Transaction(0, DramLocation(0, 0, 0, 1, 0), core=0,
                    critical=critical, magnitude=magnitude)
    t.seq = seq
    t.arrival = 0
    return t


def pre(t, blocked_by_hits=False, hit_is_critical=False, row_idle=100):
    return CandidateCommand(
        CommandKind.PRECHARGE, t, 0, 0, 5,
        blocked_by_hits=blocked_by_hits,
        hit_is_critical=hit_is_critical,
        row_idle=row_idle,
    )


class TestBasePolicy:
    def test_frfcfs_never_closes_row_with_pending_hits(self):
        sched = FrFcfsScheduler()
        t = txn(1)
        cand = pre(t, blocked_by_hits=True)
        assert not sched.pre_admissible(cand, FakeController([t]))

    def test_frfcfs_respects_idle_threshold(self):
        sched = FrFcfsScheduler()
        t = txn(1)
        assert not sched.pre_admissible(pre(t, row_idle=5), FakeController([t]))
        assert sched.pre_admissible(pre(t, row_idle=12), FakeController([t]))

    def test_non_precharge_always_admissible(self):
        sched = FrFcfsScheduler()
        t = txn(1)
        cas = CandidateCommand(CommandKind.READ, t, 0, 0, 1)
        assert sched.pre_admissible(cas, FakeController([t]))

    def test_frfcfs_select_skips_blocked_pre(self):
        sched = FrFcfsScheduler()
        t = txn(1)
        cand = pre(t, blocked_by_hits=True)
        assert sched.select([cand], FakeController([t]), 0) is None


@pytest.mark.parametrize("sched_cls", [
    CasRasCritScheduler, CritCasRasScheduler, TcmCritScheduler,
])
class TestCriticalityPolicy:
    def test_critical_conflict_may_preempt_noncritical_hits(self, sched_cls):
        sched = sched_cls()
        t = txn(1, critical=True, magnitude=500)
        cand = pre(t, blocked_by_hits=True, hit_is_critical=False, row_idle=0)
        assert sched.pre_admissible(cand, FakeController([t]))

    def test_critical_hits_stay_protected(self, sched_cls):
        sched = sched_cls()
        t = txn(1, critical=True, magnitude=500)
        cand = pre(t, blocked_by_hits=True, hit_is_critical=True, row_idle=0)
        assert not sched.pre_admissible(cand, FakeController([t]))

    def test_noncritical_conflict_uses_base_rule(self, sched_cls):
        sched = sched_cls()
        t = txn(1, critical=False)
        blocked = pre(t, blocked_by_hits=True, row_idle=100)
        idle_ok = pre(t, blocked_by_hits=False, row_idle=100)
        ctrl = FakeController([t])
        assert not sched.pre_admissible(blocked, ctrl)
        assert sched.pre_admissible(idle_ok, ctrl)


class TestCritCasRasPreemption:
    def test_critical_pre_beats_noncritical_cas(self):
        """The arrangement difference the mechanism experiment exposes."""
        sched = CritCasRasScheduler()
        hog = txn(1, critical=False)
        walker = txn(2, critical=True, magnitude=500)
        hog_cas = CandidateCommand(CommandKind.READ, hog, 0, 1, 3)
        walker_pre = pre(walker, blocked_by_hits=True, hit_is_critical=False)
        chosen = sched.select([hog_cas, walker_pre],
                              FakeController([hog, walker]), 0)
        assert chosen is walker_pre

    def test_casras_crit_cannot_preempt(self):
        sched = CasRasCritScheduler()
        hog = txn(1, critical=False)
        walker = txn(2, critical=True, magnitude=500)
        hog_cas = CandidateCommand(CommandKind.READ, hog, 0, 1, 3)
        walker_pre = pre(walker, blocked_by_hits=True, hit_is_critical=False)
        chosen = sched.select([hog_cas, walker_pre],
                              FakeController([hog, walker]), 0)
        assert chosen is hog_cas
