"""Shadow JEDEC protocol sanitizer: injected violations must be caught.

Drives the :class:`~repro.analysis.protocol.ProtocolSanitizer` directly
with hand-built command streams that each break exactly one Table-3
constraint, asserting the oracle raises with the right rule name — and
that legal streams pass.  Then breaks a constraint through the *real*
controller path (forging bank bookkeeping under ``REPRO_SANITIZE=1``) to
prove the wiring, and runs a clean end-to-end simulation sanitized.
"""

from __future__ import annotations

import pytest

from repro.analysis.protocol import (
    ProtocolSanitizer,
    ProtocolViolation,
    maybe_attach,
    sanitize_enabled,
)
from repro.config import DramConfig, SimScale

CONFIG = DramConfig(channels=1, ranks_per_channel=2, banks_per_rank=4)
T = CONFIG.timings


def make_sanitizer(**kwargs) -> ProtocolSanitizer:
    return ProtocolSanitizer(CONFIG, channel_id=0, **kwargs)


def cas(san, rank, bank, row, now, is_write=False, arrival=None,
        data_end=None):
    """Issue a CAS with the burst-end cycle the shared-bus model implies.

    Mirrors the controller's bus queue (tCL/tWL start, tRTRS on rank
    switch, pushback behind the previous burst) so tests can build legal
    streams; pass ``data_end`` explicitly to test the cross-check itself.
    """
    if data_end is None:
        start = now + (T.tWL if is_write else T.tCL)
        bus_free = san.bus_free
        if san.bus_last_rank not in (-1, rank):
            bus_free += T.tRTRS
        start = max(start, bus_free)
        data_end = start + T.burst_cycles
    san.on_cas(rank, bank, row, now, is_write, data_end,
               now if arrival is None else arrival)


class TestLegalStreams:
    def test_open_read_close_reopen(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 5, now=0)
        cas(san, 0, 0, 5, now=T.tRCD)
        pre = max(T.tRAS, T.tRCD + T.tRTP)
        san.on_precharge(0, 0, now=pre)
        san.on_activate(0, 0, 9, now=pre + T.tRP)
        assert san.commands == 4
        assert san.checks > 0

    def test_write_then_read_after_twtr(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 1, now=0)
        san.on_activate(0, 1, 2, now=T.tRRD)
        cas(san, 0, 0, 1, now=T.tRCD, is_write=True)
        write_end = san.rank_write_data_end[0]
        cas(san, 0, 1, 2, now=write_end + T.tWTR)

    def test_rank_switch_pays_trtrs(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 1, now=0)
        san.on_activate(1, 0, 1, now=0)  # other rank: tRRD does not apply
        cas(san, 0, 0, 1, now=T.tRCD)
        # Back-to-back CAS to the other rank: its data must queue behind
        # the first burst plus the tRTRS switch gap.
        cas(san, 1, 0, 1, now=T.tRCD + T.tCCD)
        assert san.bus_last_rank == 1

    def test_refresh_cycle(self):
        san = make_sanitizer()
        san.on_refresh(0, now=100)
        san.on_activate(0, 0, 1, now=100 + T.tRFC)
        assert san.rank_last_ref[0] == 100


class TestBankViolations:
    def test_trcd(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 5, now=0)
        with pytest.raises(ProtocolViolation, match="tRCD"):
            cas(san, 0, 0, 5, now=T.tRCD - 1)

    def test_trp(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 5, now=0)
        pre = max(T.tRAS, 20)
        san.on_precharge(0, 0, now=pre)
        with pytest.raises(ProtocolViolation, match="tRP"):
            san.on_activate(0, 0, 6, now=pre + T.tRP - 1)

    def test_tras(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 5, now=0)
        with pytest.raises(ProtocolViolation, match="tRAS"):
            san.on_precharge(0, 0, now=T.tRAS - 1)

    def test_trc(self):
        # DDR3-2133 has tRC == tRAS + tRP, so any tRC-only violation is
        # masked by tRP; stretch tRC to isolate the ACT->ACT window.
        import dataclasses

        timings = dataclasses.replace(T, tRC=T.tRAS + T.tRP + 6)
        san = ProtocolSanitizer(dataclasses.replace(CONFIG, timings=timings))
        san.on_activate(0, 0, 5, now=0)
        san.on_precharge(0, 0, now=T.tRAS)
        with pytest.raises(ProtocolViolation, match="tRC"):
            san.on_activate(0, 0, 6, now=T.tRAS + T.tRP)

    def test_trtp(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 5, now=0)
        read = T.tRAS  # late read: tRAS is already satisfied at precharge
        cas(san, 0, 0, 5, now=read)
        with pytest.raises(ProtocolViolation, match="tRTP"):
            san.on_precharge(0, 0, now=read + T.tRTP - 1)

    def test_twr(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 5, now=0)
        write = T.tRAS  # late write: isolates write recovery from tRAS
        cas(san, 0, 0, 5, now=write, is_write=True)
        recovery_end = write + T.tWL + T.burst_cycles + T.tWR
        with pytest.raises(ProtocolViolation, match="tWR"):
            san.on_precharge(0, 0, now=recovery_end - 1)

    def test_activate_with_row_open(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 5, now=0)
        with pytest.raises(ProtocolViolation, match="already has row"):
            san.on_activate(0, 0, 6, now=T.tRC)

    def test_cas_row_mismatch(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 5, now=0)
        with pytest.raises(ProtocolViolation, match="open row"):
            cas(san, 0, 0, 7, now=T.tRCD)

    def test_precharge_closed_bank(self):
        san = make_sanitizer()
        with pytest.raises(ProtocolViolation, match="closed"):
            san.on_precharge(0, 0, now=50)


class TestRankAndChannelViolations:
    def test_trrd(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 1, now=0)
        with pytest.raises(ProtocolViolation, match="tRRD"):
            san.on_activate(0, 1, 1, now=T.tRRD - 1)

    def test_tccd(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 1, now=0)
        san.on_activate(0, 1, 2, now=T.tRRD)
        # First CAS late enough that bank 1's tRCD is already satisfied,
        # so only the CAS->CAS gap is at fault.
        first = T.tRRD + T.tRCD
        cas(san, 0, 0, 1, now=first)
        with pytest.raises(ProtocolViolation, match="tCCD"):
            cas(san, 0, 1, 2, now=first + T.tCCD - 1)

    def test_twtr(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 1, now=0)
        san.on_activate(0, 1, 2, now=T.tRRD)
        cas(san, 0, 0, 1, now=T.tRCD, is_write=True)
        write_end = san.rank_write_data_end[0]
        with pytest.raises(ProtocolViolation, match="tWTR"):
            cas(san, 0, 1, 2, now=write_end + T.tWTR - 1)

    def test_tfaw_fifth_activate_in_window(self):
        import dataclasses

        timings = dataclasses.replace(T, tFAW=4 * T.tRRD + 8)
        config = DramConfig(timings=timings, channels=1,
                            ranks_per_channel=2, banks_per_rank=8)
        san = ProtocolSanitizer(config, channel_id=0)
        for bank in range(4):
            san.on_activate(0, bank, 1, now=bank * T.tRRD)
        # Legal by tRRD spacing alone, but the fifth ACTIVATE lands
        # inside the four-activate window.
        with pytest.raises(ProtocolViolation, match="tFAW"):
            san.on_activate(0, 4, 1, now=4 * T.tRRD)

    def test_tfaw_fifth_activate_after_window_ok(self):
        import dataclasses

        timings = dataclasses.replace(T, tFAW=4 * T.tRRD + 8)
        config = DramConfig(timings=timings, channels=1,
                            ranks_per_channel=2, banks_per_rank=8)
        san = ProtocolSanitizer(config, channel_id=0)
        for bank in range(4):
            san.on_activate(0, bank, 1, now=bank * T.tRRD)
        san.on_activate(0, 4, 1, now=timings.effective_tFAW)
        # Other rank never shares the window.
        san.on_activate(1, 0, 1, now=4 * T.tRRD)

    def test_derived_tfaw_not_triggered_by_trrd_spacing(self):
        config = DramConfig(channels=1, ranks_per_channel=2,
                            banks_per_rank=8)
        san = ProtocolSanitizer(config, channel_id=0)
        for bank in range(4):
            san.on_activate(0, bank, 1, now=bank * T.tRRD)
        # At the derived default (4 * tRRD) the oldest ACTIVATE rolls out
        # exactly when tRRD admits the fifth.
        san.on_activate(0, 4, 1, now=4 * T.tRRD)

    def test_burst_end_mismatch(self):
        san = make_sanitizer()
        san.on_activate(0, 0, 1, now=0)
        with pytest.raises(ProtocolViolation, match="burst-end mismatch"):
            cas(san, 0, 0, 1, now=T.tRCD,
                data_end=T.tRCD + T.tCL + T.burst_cycles - 1)

    def test_read_starvation(self):
        san = make_sanitizer(starvation_factor=2)
        limit = 2 * CONFIG.starvation_cap_dram_cycles
        san.on_activate(0, 0, 1, now=limit + 100)
        with pytest.raises(ProtocolViolation, match="starvation"):
            cas(san, 0, 0, 1, now=limit + 100 + T.tRCD, arrival=50)


class TestRefreshViolations:
    def test_refresh_with_open_bank(self):
        san = make_sanitizer()
        san.on_activate(0, 2, 7, now=0)
        with pytest.raises(ProtocolViolation, match="REFRESH.*open"):
            san.on_refresh(0, now=T.tRAS + T.tRP)

    def test_activate_during_trfc(self):
        san = make_sanitizer()
        san.on_refresh(0, now=100)
        with pytest.raises(ProtocolViolation, match="refresh"):
            san.on_activate(0, 0, 1, now=100 + T.tRFC - 1)

    def test_other_rank_not_blocked_by_refresh(self):
        san = make_sanitizer()
        san.on_refresh(0, now=100)
        san.on_activate(1, 0, 1, now=101)  # rank 1 is unaffected

    def test_overdue_refresh(self):
        san = make_sanitizer()
        allowance = 2 * T.refresh_interval_cycles + T.tRFC + 64
        with pytest.raises(ProtocolViolation, match="overdue"):
            san.on_refresh(0, now=allowance + 1)

    def test_finish_flags_never_refreshed_rank(self):
        san = make_sanitizer()
        allowance = 2 * T.refresh_interval_cycles + T.tRFC + 64
        san.finish(allowance)  # exactly at the bound: still legal
        with pytest.raises(ProtocolViolation, match="overdue"):
            san.finish(allowance + 1)


class TestWiring:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()

        class FakeController:
            config = CONFIG
            channel_id = 0

        assert maybe_attach(FakeController()) is None

    def test_injected_trp_violation_caught_via_controller(self, monkeypatch):
        """Forge a bank's tRP bookkeeping; only the shadow oracle notices."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        from repro.dram.addressmap import DramLocation
        from repro.dram.controller import ChannelController
        from repro.dram.transaction import Transaction
        from repro.sched.frfcfs import FrFcfsScheduler

        config = DramConfig(channels=1, ranks_per_channel=1, banks_per_rank=2)
        controller = ChannelController(0, config, FrFcfsScheduler())
        assert controller.sanitizer is not None

        first = Transaction(0, DramLocation(0, 0, 0, 1, 0))
        controller.enqueue(first, 0)
        now = 0
        while first in controller.read_queue:
            controller.step(now)
            now += 1

        bank = controller.banks[0][0]
        controller.enqueue(Transaction(0, DramLocation(0, 0, 0, 2, 0)), now)
        with pytest.raises(ProtocolViolation, match="tRP"):
            for now in range(now, now + 400):
                row_was_open = bank.open_row is not None
                controller.step(now)
                if row_was_open and bank.open_row is None:
                    bank.act_ready = 0  # forge: erase the tRP delay

    def test_clean_run_under_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        from repro.sim.runner import run_parallel_workload

        scale = SimScale(instructions_per_core=800, warmup_instructions=100)
        result = run_parallel_workload("fft", scale=scale)
        assert result.cycles > 0

    def test_sanitizer_does_not_change_results(self, monkeypatch):
        from repro.sim.runner import run_parallel_workload
        from repro.sim.stats import result_fingerprint

        scale = SimScale(instructions_per_core=800, warmup_instructions=100)
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        plain = run_parallel_workload("fft", scale=scale)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        checked = run_parallel_workload("fft", scale=scale)
        assert result_fingerprint(plain) == result_fingerprint(checked)
