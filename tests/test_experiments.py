"""Experiment harness: every registered experiment produces sane rows.

Runs at a drastically reduced scale (few hundred instructions) — these
tests check structure, not measured values.
"""

import pytest

from repro.experiments import common
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.workloads.synthetic import clear_trace_cache


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "700")
    monkeypatch.setenv("REPRO_SEEDS", "1")
    common.clear_run_cache()
    clear_trace_cache()
    yield
    common.clear_run_cache()
    clear_trace_cache()


TWO_APPS = ("fft", "radix")


class TestRegistry:
    def test_all_expected_experiments_registered(self):
        expected = {
            "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "table5", "table7", "naive", "reset",
            "overhead", "mechanism", "ablation",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")


class TestFigures:
    def test_fig1_rows(self):
        res = run_experiment("fig1", apps=TWO_APPS)
        assert [r["app"] for r in res.rows] == ["fft", "radix", "Average"]
        for row in res.rows:
            assert 0 <= row["blocking_loads_pct"] <= 100
            assert 0 <= row["blocked_cycles_pct"] <= 100

    def test_fig3_sweeps_sizes_and_algorithms(self):
        res = run_experiment("fig3", apps=("radix",),
                             algorithms=("casras-crit",))
        configs = [r["config"] for r in res.rows]
        assert "CLPT-Binary" in configs
        assert "Binary CBP 64" in configs
        assert "Binary CBP unlimited" in configs
        for row in res.rows:
            assert row["Average"] > 0.5

    def test_fig4_predictor_set(self):
        res = run_experiment("fig4", apps=("radix",))
        names = [r["predictor"] for r in res.rows]
        assert names == [
            "Binary", "CLPT-Consumers", "BlockCount", "LastStallTime",
            "MaxStallTime", "TotalStallTime",
        ]

    def test_fig5_table_sizes(self):
        res = run_experiment("fig5", apps=("radix",))
        assert [r["table"] for r in res.rows] == [
            "64-entry", "256-entry", "1024-entry", "unlimited"
        ]

    def test_fig6_latency_columns(self):
        res = run_experiment("fig6", apps=("radix",))
        assert "FR-FCFS crit" in res.columns
        assert "MaxStallTime noncrit" in res.columns

    def test_fig8_devices_and_ranks(self):
        res = run_experiment("fig8", apps=("radix",))
        devices = {r["device"] for r in res.rows}
        assert devices == {"DDR3-1600", "DDR3-2133"}
        assert {r["ranks"] for r in res.rows} == {1, 2, 4}

    def test_fig9_lq_sizes(self):
        res = run_experiment("fig9", apps=("radix",))
        assert [r["load_queue"] for r in res.rows] == [32, 48, 64]

    def test_fig11_monotone_axis(self):
        res = run_experiment("fig11", apps=("radix",))
        ns = [r["commands_checked"] for r in res.rows]
        assert ns == sorted(ns)

    def test_fig12_bundle_columns(self):
        res = run_experiment("fig12", bundles=("AELV",))
        schedulers = [r["scheduler"] for r in res.rows]
        assert schedulers == [
            "FR-FCFS", "TCM", "MaxStallTime", "TCM+MaxStallTime"
        ]
        for row in res.rows:
            assert row["AELV"] > 0.3

    def test_mechanism_runs(self):
        res = run_experiment("mechanism", instructions=3000)
        assert [r["scheduler"] for r in res.rows] == [
            "casras-crit", "crit-casras"
        ]


class TestSectionStudies:
    def test_naive_experiment(self):
        res = run_experiment("naive", apps=("radix",))
        assert [r["app"] for r in res.rows] == ["radix", "Average"]
        assert "naive" in res.columns

    def test_reset_experiment_structure(self, monkeypatch):
        # Shrink to a single train/test interval comparison via the
        # module's own constants.
        from repro.experiments import reset as reset_mod

        monkeypatch.setattr(reset_mod, "TRAIN_APPS", ("radix",))
        monkeypatch.setattr(reset_mod, "TEST_APPS", ("fft",))
        monkeypatch.setattr(reset_mod, "INTERVALS", (None, 50_000))
        res = reset_mod.run()
        sets = [r["set"] for r in res.rows]
        assert sets.count("train") == 2
        assert sets.count("test") == 2

    def test_ablation_experiment(self):
        res = run_experiment("ablation", apps=("radix",))
        configs = res.column("config")
        assert "Fields-like (excluded)" in configs
        assert "MaxStall / saturating" in configs


class TestTables:
    def test_table5_widths(self):
        res = run_experiment("table5", apps=("radix",))
        metrics = [r["metric"] for r in res.rows]
        assert "MaxStallTime" in metrics
        for row in res.rows:
            assert row["width_bits"] >= 1

    def test_overhead_is_analytic(self):
        res = run_experiment("overhead")
        by_name = {r["predictor"]: r for r in res.rows}
        assert by_name["Binary"]["value_bits"] == 1
        assert by_name["MaxStallTime"]["value_bits"] == 14

    def test_table7_summary(self):
        res = run_experiment("table7", apps=("radix",), bundles=("AELV",))
        names = [r["scheduler"] for r in res.rows]
        assert "MaxStallTime CBP" in names
        assert "MORSE-P" in names


class TestRenderer:
    def test_table_renders(self):
        res = run_experiment("overhead")
        text = res.table()
        assert "overhead" in text
        assert "Binary" in text

    def test_column_accessor(self):
        res = run_experiment("overhead")
        assert len(res.column("predictor")) == len(res.rows)


class TestRunCache:
    def test_baseline_shared_across_experiments(self):
        common.clear_run_cache()
        run_experiment("fig1", apps=("radix",))
        size_after_fig1 = len(common._RUN_CACHE)
        run_experiment("fig1", apps=("radix",))
        assert len(common._RUN_CACHE) == size_after_fig1
