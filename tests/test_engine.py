"""Engine: content-hashed cache keys, disk cache, parallel fan-out."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.config import SimScale
from repro.sim import engine
from repro.sim.engine import (
    RunSpec,
    UnportableSpec,
    run_many,
    run_one_cached,
    spec_key,
)
from repro.sim.stats import result_fingerprint

SCALE = SimScale(instructions_per_core=600, warmup_instructions=0, seed=5)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def _spec(**over):
    base = dict(kind="parallel", workload="fft", scale=SCALE)
    base.update(over)
    return RunSpec(**base)


class TestSpecKey:
    def test_stable(self):
        assert spec_key(_spec()) == spec_key(_spec())

    @pytest.mark.parametrize(
        "change",
        [
            {"workload": "radix"},
            {"scheduler": "par-bs"},
            {"provider_spec": ("cbp", {"entries": 64})},
            {"scheduler_kwargs": {"batch_cap": 3}},
            {"scale": SimScale(instructions_per_core=601,
                               warmup_instructions=0, seed=5)},
            {"scale": SimScale(instructions_per_core=600,
                               warmup_instructions=0, seed=6)},
            {"kind": "bundle"},
            {"slot": 1},
        ],
        ids=lambda c: next(iter(c)),
    )
    def test_any_field_invalidates(self, change):
        assert spec_key(_spec(**change)) != spec_key(_spec())

    def test_kwarg_order_is_canonical(self):
        a = _spec(provider_spec=("cbp", {"entries": 64, "reset_interval": 9}))
        b = _spec(provider_spec=("cbp", {"reset_interval": 9, "entries": 64}))
        assert spec_key(a) == spec_key(b)

    def test_enum_kwargs_hash(self):
        from repro.core.cbp import CbpMetric

        spec = _spec(
            provider_spec=("cbp", {"entries": 64, "metric": CbpMetric.BINARY})
        )
        assert spec_key(spec) != spec_key(
            _spec(provider_spec=("cbp", {"entries": 64,
                                         "metric": CbpMetric.MAX_STALL}))
        )

    def test_code_version_invalidates(self, monkeypatch):
        before = spec_key(_spec())
        monkeypatch.setenv("REPRO_CODE_VERSION", "deadbeef")
        assert spec_key(_spec()) != before

    def test_callable_provider_is_unportable(self):
        with pytest.raises(UnportableSpec):
            spec_key(_spec(provider_spec=lambda core: None))


class TestDiskCache:
    def test_round_trip(self, cache_dir):
        first = run_one_cached(_spec())
        assert list(cache_dir.glob("*.pkl"))
        engine.clear_metrics()
        second = run_one_cached(_spec())
        assert engine.last_metrics[-1]["source"] == "disk"
        assert result_fingerprint(first) == result_fingerprint(second)

    def test_no_cache_env(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        run_one_cached(_spec())
        assert not list(cache_dir.glob("*.pkl"))

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        run_one_cached(_spec())
        (path,) = cache_dir.glob("*.pkl")
        path.write_bytes(b"not a pickle")
        engine.clear_metrics()
        result = run_one_cached(_spec())
        assert engine.last_metrics[-1]["source"] == "run"
        assert result.cycles > 0

    def test_cached_results_unpickle_cleanly(self, cache_dir):
        run_one_cached(_spec(provider_spec=("naive", {})))
        (path,) = cache_dir.glob("*.pkl")
        restored = pickle.loads(path.read_bytes())
        assert restored.cycles > 0

    def test_clear_disk_cache(self, cache_dir):
        run_one_cached(_spec())
        assert engine.clear_disk_cache() == 1
        assert not list(cache_dir.glob("*.pkl"))


class TestRunMany:
    def test_results_align_and_dedup(self, cache_dir):
        specs = [_spec(), _spec(workload="radix"), _spec()]
        engine.clear_metrics()
        results = run_many(specs, jobs=2)
        assert [r.label for r in results] == [
            "fft/fr-fcfs", "radix/fr-fcfs", "fft/fr-fcfs"
        ]
        simulated = [m for m in engine.last_metrics if m["source"] == "run"]
        assert len(simulated) == 2  # the duplicate cost nothing

    def test_serial_path_matches_pool(self, cache_dir, monkeypatch):
        specs = [_spec(), _spec(workload="radix")]
        pooled = run_many(specs, jobs=2, cache=False)
        serial = run_many(specs, jobs=1, cache=False)
        for a, b in zip(pooled, serial):
            assert result_fingerprint(a) == result_fingerprint(b)

    def test_warm_pass_hits_disk(self, cache_dir):
        specs = [_spec(), _spec(workload="radix")]
        run_many(specs, jobs=2)
        engine.clear_metrics()
        run_many(specs, jobs=2)
        assert all(m["source"] == "disk" for m in engine.last_metrics)

    def test_unportable_spec_runs_inline(self, cache_dir):
        from repro.core.provider import NullProvider

        specs = [_spec(provider_spec=lambda core: NullProvider())]
        results = run_many(specs, jobs=2)
        assert results[0].cycles > 0
        assert not list(cache_dir.glob("*.pkl"))

    def test_run_log(self, cache_dir, tmp_path, monkeypatch):
        import json

        log = tmp_path / "runs.jsonl"
        monkeypatch.setenv("REPRO_RUN_LOG", str(log))
        run_many([_spec()], jobs=1, cache=False)
        lines = [json.loads(l) for l in log.read_text().splitlines()]
        assert lines and lines[0]["source"] == "run"
        assert lines[0]["wall_s"] > 0


class TestCachedRunIntegration:
    def test_cached_run_uses_disk_across_memo_clears(self, cache_dir,
                                                     monkeypatch):
        from repro.experiments import common

        monkeypatch.setenv("REPRO_INSTRUCTIONS", "600")
        common.clear_run_cache()
        first = common.cached_run("parallel", "fft")
        assert len(common._RUN_CACHE) == 1
        common.clear_run_cache()
        engine.clear_metrics()
        second = common.cached_run("parallel", "fft")
        assert engine.last_metrics[-1]["source"] == "disk"
        assert result_fingerprint(first) == result_fingerprint(second)
        common.clear_run_cache()
