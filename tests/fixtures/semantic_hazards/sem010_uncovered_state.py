"""SEM010: mutable simulator state that escapes the determinism chain."""


class ChannelController:
    """Audited by name, like the simulator's real controller."""

    def __init__(self):
        self.commands_issued_total = 0
        self.sneaky_counter = 0

    def step(self, now):
        self.commands_issued_total += 1  # covered: read by det_state below
        # SEM010: mutated every step but never folded into det_state —
        # two diverging runs would hash identically.
        self.sneaky_counter += 1

    def det_state(self):
        return [self.commands_issued_total]
