"""A correctly suppressed semantic finding: counted, not reported."""


def tolerated_mix(cpu_now, dram_now):
    # The violation is real but acknowledged with a rationale; the
    # analyzer must count it as suppressed, not as a finding.
    return cpu_now + dram_now  # repro-lint: disable=SEM001 fixture example
