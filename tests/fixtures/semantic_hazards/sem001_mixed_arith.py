"""SEM001: arithmetic across clock domains without a conversion."""


def total_latency(cpu_now, dram_now):
    # SEM001: cpu- and dram-domain cycle counts added directly; the
    # result is meaningful on neither clock.
    return cpu_now + dram_now


def earliest_deadline(cpu_done, dram_done):
    # SEM001: min() across clock domains picks by raw magnitude, which
    # inverts whenever the clock ratio is not 1.
    return min(cpu_done, dram_done)
