"""Seeded hazard fixtures for the whole-program semantic analyzer.

One module per SEM rule, each containing the minimal code that must
trigger it plus (in ``clean.py``) the legal counter-example that must
NOT.  ``python -m repro analyze tests/fixtures/semantic_hazards`` exits
nonzero with every SEM rule represented, proving the analyzer detects
each hazard class — the semantic counterpart of
``tests/fixtures/lint_hazards.py``.

The files are never imported (the analyzer is purely syntactic); they
only need to parse.  Do NOT "fix" these; they are the test vectors.
"""
