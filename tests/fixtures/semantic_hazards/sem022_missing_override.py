"""SEM022: concrete schedulers missing a required override."""

from tests.fixtures.semantic_hazards._base import Scheduler


class NamelessScheduler(Scheduler):
    """SEM022: no ``name`` class attribute — invisible to the registry."""

    def select(self, candidates, controller, now):
        ordered = sorted(candidates, key=lambda c: c.txn.seq)
        return ordered[0] if ordered else None


class UnimplementedScheduler(Scheduler):
    """SEM022: inherits the base's raising ``select`` stub."""

    name = "unimplemented"
