"""SEM002: ordering comparison between counters on different clocks."""


def deadline_passed(cpu_now, dram_wake):
    # SEM002: a cpu-cycle count compared against a dram-cycle deadline;
    # true/false flips with the configured clock ratio.
    return cpu_now >= dram_wake
