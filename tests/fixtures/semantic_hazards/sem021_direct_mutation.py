"""SEM021: a scheduler mutating controller-owned state directly."""

from tests.fixtures.semantic_hazards._base import Scheduler


class PushyScheduler(Scheduler):
    """Ranks by age, then 'helps' the controller issue — forbidden."""

    name = "pushy"

    def select(self, candidates, controller, now):
        best = None
        for cand in candidates:
            if best is None or cand.txn.seq < best.txn.seq:
                best = cand
        if best is not None:
            # SEM021: popping queues is the controller's job.
            controller.read_queue.remove(best.txn)
            bank = controller.banks[best.rank][best.bank]
            # SEM021: bank bookkeeping belongs to the DRAM model.
            bank.open_row = best.row
        return best
