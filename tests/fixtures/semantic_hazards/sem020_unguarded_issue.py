"""SEM020: an issue path that never consults an age/starvation signal."""

from tests.fixtures.semantic_hazards._base import Scheduler


class GreedyRowHitScheduler(Scheduler):
    """Pure row-hit-first policy: row misses can starve forever."""

    name = "greedy-row-hit"

    def select(self, candidates, controller, now):
        candidates = self.admissible(candidates, controller)
        for cand in candidates:
            if cand.is_cas:
                # SEM020: issued without any age or starvation check.
                return cand
        if candidates:
            # SEM020: same — first-listed wins regardless of queue age.
            return candidates[0]
        return None


class AgeLoggingScheduler(Scheduler):
    """Reads the age signal but never *orders* by it: summing ``seq``
    into a stat is bookkeeping, not a starvation bound, so the issue
    decision is still unguarded."""

    name = "age-logging"

    def select(self, candidates, controller, now):
        candidates = self.admissible(candidates, controller)
        total_age = 0
        for cand in candidates:
            # Mention without comparison: must NOT count as a guard.
            total_age = total_age + cand.txn.seq
        if total_age and candidates:
            # SEM020: the pick ignores the ages it just tallied.
            return candidates[0]
        return None
