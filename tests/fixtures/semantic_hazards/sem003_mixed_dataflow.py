"""SEM003: a cycle count crossing a seeded domain boundary unconverted."""


class Request:
    def stamp(self, cpu_now):
        # SEM003: `arrival` is dram-domain state everywhere in the
        # simulator, but a cpu-cycle count is stored into it.
        self.arrival = cpu_now


def wake_channel(dram_wake):
    return dram_wake


def schedule_wake(cpu_now):
    # SEM003: cpu-domain argument bound to a dram-seeded parameter.
    return wake_channel(cpu_now)
