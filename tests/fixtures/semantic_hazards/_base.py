"""Local stand-in for ``repro.sched.base.Scheduler``.

The analyzer resolves base classes statically inside the analysis
roots, so the fixture package carries its own interface root: the
scheduler fixtures subclass this and are checked against the same
contract clauses as the real policies.
"""


class Scheduler:
    """Policy interface: rank admissible candidates, mutate nothing."""

    def select(self, candidates, controller, now):
        raise NotImplementedError

    def admissible(self, candidates, controller):
        return candidates

    def det_state(self):
        return ()
