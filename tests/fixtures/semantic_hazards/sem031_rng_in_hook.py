"""SEM031: randomness inside a per-cycle model hook.

``select`` runs every DRAM cycle; drawing from an RNG there (even a
seeded one) without the documented suppression-with-rationale makes
the per-cycle path nondeterministic by default.  The sort-by-seq step
keeps SEM020 satisfied, and the scheduler holds no state of its own,
so this fixture isolates the RNG hazard.
"""

from tests.fixtures.semantic_hazards._base import Scheduler


class JitterScheduler(Scheduler):
    name = "jitter"

    def select(self, candidates, controller, now):
        if not candidates:
            return None
        ordered = sorted(candidates, key=lambda c: c.txn.seq)
        # SEM031: per-cycle decision depends on an RNG draw.
        pick = controller.rng.randrange(len(ordered))
        return ordered[pick]
