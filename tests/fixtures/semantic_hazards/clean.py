"""Legal counter-examples: none of these may produce a finding.

Each mirrors one hazard module with the sanctioned version of the same
pattern — conversions through the clock ratio, chained state, an
age-guarded scheduler — so the analyzer's precision is pinned alongside
its recall.
"""

from tests.fixtures.semantic_hazards._base import Scheduler


def to_cpu_cycles(dram_cycle, cpu_ratio):
    # Sanctioned cast: the ratio multiply converts dram -> cpu cycles.
    return dram_cycle * cpu_ratio


def deadline_passed(cpu_now, dram_wake, cpu_ratio):
    # Legal version of the SEM002 fixture: convert before comparing.
    cpu_wake = dram_wake * cpu_ratio
    return cpu_now >= cpu_wake


class CoveredController:
    """Legal version of the SEM010 fixture: state reaches det_state."""

    def __init__(self):
        self.commands_issued_total = 0

    def step(self, now):
        self.commands_issued_total += 1

    def next_wake(self, now):
        # Legal version of the SEM030 fixture: genuinely pure probe.
        return now + 1

    def det_state(self):
        return [self.commands_issued_total]


class WindowReader:
    """Legal version of the SEM032 fixture: the cited certificate is
    current (det_state is window-invariant)."""

    def snapshot(self, controller):
        # repro-batch: cert=CoveredController.det_state
        return controller.det_state()


class OldestFirstScheduler(Scheduler):
    """Legal policy: every issue path breaks ties by age (txn.seq)."""

    name = "oldest-first"

    def select(self, candidates, controller, now):
        candidates = self.admissible(candidates, controller)
        best = None
        for cand in candidates:
            if best is None or cand.txn.seq < best.txn.seq:
                best = cand
        return best
