"""SEM032: a batching shortcut citing a certificate that does not hold.

``WindowJumper.jump`` skips the per-cycle loop by calling
``MutatingModel.step`` once for the whole window, citing it as
batch-safe — but the effect analysis classifies ``step`` as
per-cycle-only (it mutates ``count`` and appends to ``log``), so the
cited certificate is not current and SEM032 fires on the marker.
"""


class MutatingModel:
    def __init__(self):
        self.count = 0
        self.log = []

    def step(self, now):
        self.count += 1
        self.log.append(now)
        return self.count


class WindowJumper:
    def jump(self, model, start, end):
        # SEM032: step is per-cycle-only; this certificate is stale.
        # repro-batch: cert=MutatingModel.step
        return model.step(end)
