"""SEM030: a certified-pure method with an undeclared mutation.

``next_wake`` is on the batching layer's certified-pure path: the
wake-driven loop may call it once per ready-window and trust the
answer.  This controller "instruments" it with a probe counter — the
mutation is folded into det_state (so SEM010 stays silent; the chain
is sound) but the purity certificate is now a lie: evaluating
next_wake more or fewer times changes simulator state.
"""


class WindowCertController:
    """Audited because it bears a det_state, like the real models."""

    def __init__(self):
        self._probe_calls = 0
        self.queue = []

    def next_wake(self, now):
        # SEM030: a certified-pure method mutates state on every call.
        self._probe_calls += 1
        return now + len(self.queue)

    def det_state(self):
        return [self._probe_calls, len(self.queue)]
