"""Seeded hazard fixtures for the process-safety analyzer (CONC rules).

One module per CONC rule, each containing the minimal code that must
trigger it plus (in ``clean.py``) the legal counter-example that must
NOT.  ``python -m repro analyze --concurrency tests/fixtures/conc_hazards``
exits nonzero with every CONC rule represented, proving the analyzer
detects each hazard class — the process-safety counterpart of
``tests/fixtures/semantic_hazards``.

The files are never imported (the analyzer is purely syntactic); they
only need to parse.  Do NOT "fix" these; they are the test vectors.
"""
