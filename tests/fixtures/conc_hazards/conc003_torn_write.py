"""CONC003: non-atomic writes to shared on-disk artifacts.

Three violations: a hand-rolled tmp+replace (the idiom must live only
in ``repro.util.atomicio``), a direct write-mode open of a manifest,
and a buffered append to a shared run log (concurrent appenders can
interleave partial lines).
"""

import json
import os


def save_entry(path, payload):
    tmp = str(path) + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(payload)
    # CONC003: raw os.replace outside repro.util.atomicio.
    os.replace(tmp, path)


def write_manifest(directory, manifest):
    # CONC003: write-mode open of a shared manifest, not atomic.
    with open(directory + "/MANIFEST.json", "w") as fh:
        json.dump(manifest, fh)


def log_metrics(run_log_path, records):
    # CONC003: buffered append to a shared log tears under concurrency.
    with open(run_log_path, "a") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
