"""A correctly suppressed CONC finding: counted, not reported."""

import os


def publish(path, payload):
    tmp = str(path) + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(payload)
    # The violation is real but acknowledged with a rationale; the
    # analyzer must count it as suppressed, not as a finding.
    os.replace(tmp, path)  # repro-lint: disable=CONC003 fixture example
