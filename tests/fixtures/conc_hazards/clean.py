"""Legal counter-examples: none of these may produce a finding.

Each mirrors one hazard module with the sanctioned version of the same
pattern — explicit state through the spec, module-level entrypoints,
seeds instead of generators, sorted tuples instead of sets, config
snapshotted before the fork — so the analyzer's precision is pinned
alongside its recall.
"""

import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

#: Read-only module constant: workers may *read* fork-copied state
#: freely; only writes are a hazard (CONC001 counter-example).
_DEFAULTS = {"scale": 1}


@dataclass
class CleanSpec:
    """Pickle-safe spec: plain data, ordered containers, a seed instead
    of a generator, env snapshotted by the parent (CONC004/005
    counter-example)."""

    workload: str
    seed: int = 1
    flags: tuple = ()
    env_scale: int = 1


def simulate(spec):
    # Sanctioned RNG pattern: construct from the injected seed inside
    # the worker; nothing live crossed the fork (CONC002
    # counter-example).
    rng = random.Random(spec.seed)
    scale = spec.env_scale or _DEFAULTS["scale"]
    totals = {}
    # Locals named like module globals stay locals: precision check.
    totals[spec.workload] = rng.random() * scale
    return totals


def sweep(specs):
    # Module-level entrypoint, plain-data payload (CONC002
    # counter-example).
    with ProcessPoolExecutor() as pool:
        return list(pool.map(simulate, specs))


def export_report(path, text):
    # A write-mode open of a private, unshared artifact is legal:
    # CONC003 polices shared artifacts, not every file (precision
    # check for the token matcher).
    with open(path, "w") as fh:
        fh.write(text)
