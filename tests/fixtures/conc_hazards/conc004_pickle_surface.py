"""CONC004: order-nondeterministic or unpicklable pool payloads.

``RunSpec``/``SimResult`` cross the pool's pickle boundary by name, so
the audit walks their transitive type surface: a raw ``set`` pickles in
process-dependent iteration order (two bit-identical runs produce
different cache bytes), and lambdas/bound methods fail to pickle at
all.  ``TagBag`` is reached through the annotation on ``RunSpec.tags``,
proving the walk is transitive.
"""

from dataclasses import dataclass, field


class TagBag:
    def __init__(self, names):
        # CONC004: raw set payload inside a type reachable from RunSpec.
        self.names = set(names)


@dataclass
class RunSpec:
    workload: str
    # CONC004: raw set field pickles in process-dependent order.
    flags: set[str] = field(default_factory=set)
    tags: TagBag | None = None


class SimResult:
    def __init__(self, label):
        self.label = label
        # CONC004: lambda cannot cross the pickle boundary.
        self.reduce = lambda xs: sum(xs)
        # CONC004: bound method drags the whole instance along.
        self.finisher = self.finish

    def finish(self):
        return self.label
