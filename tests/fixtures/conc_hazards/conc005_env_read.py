"""CONC005: post-fork ``os.environ`` reads in worker-reachable code.

The parent hashes its view of the environment into the cache key; a
worker that re-reads ``os.environ`` after the fork can observe a
different value (a test mutated it, a wrapper exported a new knob) and
silently simulate a machine the key does not describe.  Config must be
snapshotted before the fork and passed through the spec.
"""

import os
from concurrent.futures import ProcessPoolExecutor


def configured_scale(spec):
    # CONC005: raw post-fork env read outside a sanctioned accessor.
    return int(os.environ.get("HAZARD_SCALE", "1")) * spec


def run_spec(spec):
    return configured_scale(spec)


def sweep(specs):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(run_spec, specs))
