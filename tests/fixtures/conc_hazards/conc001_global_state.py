"""CONC001: module-global mutable state written by worker-reachable code.

``tally`` runs inside forked pool workers, but it accumulates into a
module-level dict and list.  Each worker mutates its own copy-on-write
page; the parent's ``_TOTALS`` never changes, so the sweep silently
reports nothing — the classic fork-shared-state bug the rule exists to
catch.  The indirection through ``_bump`` proves detection is
reachability-based, not a lexical scan of the entrypoint alone.
"""

from concurrent.futures import ProcessPoolExecutor

_TOTALS: dict = {}
_SEEN: list = []


def _bump(name, amount):
    # CONC001: writes a module global from worker-reachable code.
    _TOTALS[name] = _TOTALS.get(name, 0) + amount
    _SEEN.append(name)


def tally(item):
    name, amount = item
    _bump(name, amount)
    return name


def sweep(items):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(tally, items))
