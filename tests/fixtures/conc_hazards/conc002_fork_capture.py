"""CONC002: fork-captured resources crossing the pool boundary.

Four distinct captures, each a real production failure mode: a lambda
(unpicklable), a bound method (drags the whole instance through
pickle), an open file handle (duplicated descriptor, interleaved
writes), and a live RNG object (every worker inherits the same stream
state, so "independent" draws collide).
"""

import random
from concurrent.futures import ProcessPoolExecutor


def simulate(seed):
    return seed * 2


class Sweeper:
    def work(self, item):
        return item

    def run(self, items):
        rng = random.Random(42)
        log = open("sweep.log", "w")
        with ProcessPoolExecutor() as pool:
            # CONC002: lambda across the fork/pickle boundary.
            pool.submit(lambda item: item + 1, items[0])
            # CONC002: bound method captures the whole instance.
            pool.submit(self.work, items[0])
            # CONC002: live RNG object shipped to the worker.
            pool.submit(simulate, rng)
            # CONC002: open file handle shipped to the worker.
            pool.submit(simulate, log)
        log.close()
