"""Seeded hazard fixture for the simulator lint pass.

Every rule in :mod:`repro.analysis.lint` must fire at least once on this
file, so ``tools/lint.py tests/fixtures/lint_hazards.py`` exiting nonzero
proves the linter actually detects each hazard class.  The file is never
imported — it only needs to parse.

Do NOT "fix" these; they are the test vectors.
"""

import datetime
import os
import random
import time


def unseeded_randomness(queue):
    # DET001: the module-global generator depends on process history.
    pick = random.choice(queue)
    random.shuffle(queue)
    return pick


def wall_clock_timestamp():
    # DET002: host time leaking into simulated state.
    started = time.time()
    stamp = datetime.datetime.now()
    return started, stamp


def set_order_decision(pending):
    # DET003: set iteration order varies with PYTHONHASHSEED.
    ready = {txn for txn in pending}
    for txn in ready:
        return txn
    return None


def environ_order_decision():
    # DET004: os.environ's order reflects process history, not the run.
    for key in os.environ:
        return key
    return None


def shared_default_history(event, history=[]):
    # ARG001: the default list is evaluated once and shared across calls.
    history.append(event)
    return history


def float_cycles(total, banks):
    # FLT001: float arithmetic stored into a cycle counter.
    next_ready_cycle = total / banks
    return next_ready_cycle


def mutate_frozen(config):
    # CFG001: frozen configs are hashed into cache keys.
    config.tCL = 5
    object.__setattr__(config, "tRP", 9)


class RogueScheduler:
    # SCH001: bypasses the sched.base interface contracts.
    def select(self, candidates, controller, now):
        return candidates[0] if candidates else None


def swallow_everything(action):
    try:
        action()
    except:  # EXC001: bare except
        return None


def drop_silently(action):
    try:
        action()
    except ValueError:
        pass  # EXC002: error erased without a trace


class HotPathWaste:
    """PERF rules: per-cycle hot methods paying avoidable loop costs."""

    def step(self, now):
        # PERF001: a fresh list per iteration of a per-cycle loop.
        for channel in self.channels:
            staged = []
            staged.append(channel)
        # PERF003: a dict built from scratch every iteration.
        while now < self.deadline:
            lookup = {"now": now}
            now += lookup["now"]

    def select(self, candidates, controller, now):
        # PERF002: controller.read_queue re-walked on every iteration.
        best = None
        for cand in candidates:
            if len(controller.read_queue) > 4 and controller.read_queue:
                best = cand
        return best


def suppressed_example():
    # A correctly suppressed finding: counts as `suppressed`, not a finding.
    t0 = time.perf_counter()  # repro-lint: disable=DET002 fixture example
    return t0


def stale_suppression(value):
    # SUP001: the named rule does not exist, so this comment silences
    # nothing — likely a typo or a rule that was renamed away.
    return value  # repro-lint: disable=DET999
