"""CBP counter update policies (Section 5.3 extension)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cbp import CbpMetric, CommitBlockPredictor
from repro.core.counters import (
    FullCounter,
    ProbabilisticCounter,
    SaturatingCounter,
    make_counter,
)


class TestFullCounter:
    def test_exact_accumulation(self):
        c = FullCounter()
        assert c.apply(100, 50) == 150

    def test_store_passthrough(self):
        assert FullCounter().store(1 << 30) == 1 << 30


class TestSaturatingCounter:
    def test_saturates_at_width(self):
        c = SaturatingCounter(width=4)
        assert c.maximum == 15
        assert c.apply(14, 5) == 15
        assert c.store(100) == 15

    def test_below_max_exact(self):
        c = SaturatingCounter(width=8)
        assert c.apply(10, 20) == 30

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SaturatingCounter(width=0)


class TestProbabilisticCounter:
    def test_exact_below_pivot(self):
        c = ProbabilisticCounter(pivot=100)
        assert c.apply(50, 10) == 60

    def test_deterministic_given_seed(self):
        def run():
            c = ProbabilisticCounter(pivot=16, seed=3)
            value = 0
            for _ in range(200):
                value = c.apply(value, 5)
            return value
        assert run() == run()

    def test_expectation_roughly_preserved(self):
        # Sum of 2000 increments of 10 -> expect ~20000 (saturated prob.
        # counting keeps expectation; allow wide tolerance).
        c = ProbabilisticCounter(pivot=256, width=20, seed=7)
        value = 0
        for _ in range(2000):
            value = c.apply(value, 10)
        assert 10_000 < value < 40_000

    def test_invalid_pivot(self):
        with pytest.raises(ValueError):
            ProbabilisticCounter(pivot=0)


class TestFactory:
    def test_make_by_name(self):
        assert isinstance(make_counter("full"), FullCounter)
        assert isinstance(make_counter("saturating"), SaturatingCounter)
        assert isinstance(make_counter("probabilistic"), ProbabilisticCounter)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_counter("nope")


class TestCbpIntegration:
    def test_saturating_caps_total_stall(self):
        cbp = CommitBlockPredictor(
            64, CbpMetric.TOTAL_STALL, counter=SaturatingCounter(width=8)
        )
        for _ in range(10):
            cbp.record_stall(3, 100)
        assert cbp.predict(3) == 255

    def test_string_counter_spec(self):
        cbp = CommitBlockPredictor(64, CbpMetric.MAX_STALL, counter="saturating")
        cbp.record_stall(3, 1 << 20)
        assert cbp.predict(3) == (1 << 14) - 1

    def test_default_is_full(self):
        cbp = CommitBlockPredictor(64, CbpMetric.TOTAL_STALL)
        cbp.record_stall(3, 1 << 20)
        assert cbp.predict(3) == 1 << 20


@given(st.lists(st.integers(1, 500), min_size=1, max_size=100))
def test_saturating_never_exceeds_max(increments):
    c = SaturatingCounter(width=10)
    value = 0
    for inc in increments:
        value = c.apply(value, inc)
        assert 0 <= value <= c.maximum
