"""Unit tests for :mod:`repro.util.atomicio` — the one sanctioned writer.

CONC003 forces every shared-artifact write through this module, so its
guarantees carry the whole persistence contract: replace-based writes
are all-or-nothing (a failing serializer leaves the old content and no
tmp litter), appends are one ``os.write`` per record (no interior
newlines allowed in), and JSON is canonicalized with ``sort_keys`` so
racing writers of the same payload produce identical bytes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.util import atomicio


class TestWriteReplace:
    def test_write_bytes_round_trip(self, tmp_path):
        target = tmp_path / "artifact.bin"
        atomicio.write_bytes(target, b"\x00\x01payload")
        assert target.read_bytes() == b"\x00\x01payload"

    def test_overwrite_replaces_content(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomicio.write_text(target, "old")
        atomicio.write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_tmp_litter_after_success(self, tmp_path):
        atomicio.write_text(tmp_path / "a.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]

    def test_failed_write_preserves_old_and_cleans_tmp(self, tmp_path):
        target = tmp_path / "index.json"
        atomicio.write_json(target, {"version": 1})
        with pytest.raises(TypeError):
            atomicio.write_json(target, {"bad": object()})
        assert json.loads(target.read_text()) == {"version": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["index.json"]

    def test_write_json_bytes_are_canonical(self, tmp_path):
        # Two writers racing the same logical payload must produce
        # identical bytes whichever wins the replace.
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        atomicio.write_json(a, {"z": 1, "a": 2})
        atomicio.write_json(b, {"a": 2, "z": 1})
        assert a.read_bytes() == b.read_bytes()
        assert a.read_text().endswith("\n")

    def test_tmp_paths_are_per_writer_unique(self, tmp_path):
        target = tmp_path / "x"
        first = atomicio._tmp_path(target)
        second = atomicio._tmp_path(target)
        assert first != second
        assert first.parent == target.parent


class TestAppend:
    def test_append_line_accumulates(self, tmp_path):
        log = tmp_path / "log"
        atomicio.append_line(log, "one")
        atomicio.append_line(log, "two")
        assert log.read_text() == "one\ntwo\n"

    def test_append_records_is_one_write_per_line(self, tmp_path):
        log = tmp_path / "log"
        atomicio.append_records(log, ["a", "b", "c"])
        assert log.read_text() == "a\nb\nc\n"

    def test_interior_newline_is_rejected(self, tmp_path):
        # A record with an embedded newline would fake a torn write on
        # the reader side; refuse it at the API boundary.
        with pytest.raises(ValueError):
            atomicio.append_records(tmp_path / "log", ["one\ntwo"])

    def test_append_jsonl_lines_parse_and_sort_keys(self, tmp_path):
        log = tmp_path / "log.jsonl"
        atomicio.append_jsonl(log, [{"b": 1, "a": 2}, {"x": 3}])
        lines = log.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [
            {"a": 2, "b": 1},
            {"x": 3},
        ]
        assert lines[0].index('"a"') < lines[0].index('"b"')

    def test_append_creates_parent_file_with_sane_mode(self, tmp_path):
        log = tmp_path / "log"
        atomicio.append_line(log, "x")
        assert os.access(log, os.R_OK)


class TestStringAndPathTargets:
    def test_accepts_str_paths(self, tmp_path):
        target = str(tmp_path / "s.json")
        atomicio.write_json(target, {"k": 1})
        assert json.loads(Path(target).read_text()) == {"k": 1}
