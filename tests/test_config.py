"""Configuration objects: presets, derived values, scaling helpers."""

import dataclasses

import pytest

from repro.config import (
    DDR3_1066,
    DDR3_1600,
    DDR3_2133,
    CacheConfig,
    CoreConfig,
    DramConfig,
    SimScale,
    SystemConfig,
    L1D_DEFAULT,
    L2_DEFAULT,
)


class TestDramTimings:
    def test_ddr3_2133_matches_paper_table3(self):
        t = DDR3_2133
        assert t.tRCD == 14
        assert t.tCL == 14
        assert t.tWL == 7
        assert t.tCCD == 4
        assert t.tWTR == 8
        assert t.tWR == 16
        assert t.tRTP == 8
        assert t.tRP == 14
        assert t.tRRD == 6
        assert t.tRTRS == 2
        assert t.tRAS == 36
        assert t.tRC == 50
        assert t.tRFC == 118
        assert t.burst_length == 8

    def test_clock_is_half_data_rate(self):
        assert DDR3_2133.clock_mhz == pytest.approx(1066.5)
        assert DDR3_1066.clock_mhz == pytest.approx(533.0)

    def test_burst_occupies_half_burst_length_cycles(self):
        assert DDR3_2133.burst_cycles == 4

    def test_refresh_interval_is_7_8125_us(self):
        # 8192 refreshes per 64 ms.
        cycles = DDR3_2133.refresh_interval_cycles
        assert cycles == int(7.8125 * DDR3_2133.clock_mhz)

    def test_slower_devices_have_fewer_refresh_cycles(self):
        assert (
            DDR3_1066.refresh_interval_cycles
            < DDR3_1600.refresh_interval_cycles
            < DDR3_2133.refresh_interval_cycles
        )

    def test_trc_at_least_tras_plus_trp(self):
        for t in (DDR3_1066, DDR3_1600, DDR3_2133):
            assert t.tRC >= t.tRAS + t.tRP - 1


class TestCacheConfig:
    def test_l1_geometry(self):
        assert L1D_DEFAULT.sets == 32 * 1024 // (32 * 4)

    def test_l2_geometry(self):
        assert L2_DEFAULT.sets == 4 * 1024 * 1024 // (64 * 8)

    def test_custom_sets(self):
        c = CacheConfig(size_bytes=1024, line_bytes=64, ways=2,
                        round_trip_latency=3, mshr_entries=4)
        assert c.sets == 8


class TestSystemConfig:
    def test_parallel_default_is_table1_table3_machine(self):
        cfg = SystemConfig.parallel_default()
        assert cfg.cores == 8
        assert cfg.core.rob_entries == 128
        assert cfg.core.load_queue_entries == 32
        assert cfg.dram.channels == 4
        assert cfg.dram.ranks_per_channel == 4
        assert cfg.dram.banks_per_rank == 8
        assert cfg.dram.timings is DDR3_2133

    def test_multiprogrammed_default_halves_resources(self):
        cfg = SystemConfig.multiprogrammed_default()
        assert cfg.cores == 4
        assert cfg.dram.channels == 2
        assert cfg.l2.mshr_entries == 32

    def test_scaled_replaces_fields(self):
        cfg = SystemConfig().scaled(cores=2)
        assert cfg.cores == 2
        assert cfg.dram.channels == 4  # untouched

    def test_core_scaled(self):
        core = CoreConfig().scaled(load_queue_entries=48)
        assert core.load_queue_entries == 48
        assert core.rob_entries == 128

    def test_dram_scaled(self):
        d = DramConfig().scaled(ranks_per_channel=1)
        assert d.ranks_per_channel == 1

    def test_configs_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SystemConfig().cores = 3


class TestClockRatio:
    def test_ratio_derived_from_device_clock(self):
        assert DramConfig(timings=DDR3_2133).cpu_ratio == 4
        assert DramConfig(timings=DDR3_1600).cpu_ratio == 5
        assert DramConfig(timings=DDR3_1066).cpu_ratio == 8

    def test_explicit_ratio_wins(self):
        cfg = DramConfig(timings=DDR3_1066, cpu_cycles_per_dram_cycle=4)
        assert cfg.cpu_ratio == 4

    def test_faster_device_really_faster_end_to_end(self):
        """A single uncontended read completes in fewer CPU cycles on
        DDR3-2133 than on DDR3-1066."""
        from repro.dram.controller import MemorySystem
        from repro.sched.frfcfs import FrFcfsScheduler

        def read_latency(timings):
            ms = MemorySystem(DramConfig(timings=timings, channels=1),
                              lambda c: FrFcfsScheduler())
            done = []
            txn = ms.make_transaction(0, core=0,
                                      callback=lambda d: done.append(d))
            ms.try_enqueue(txn, 0)
            cycle = 0
            while not done and cycle < 100_000:
                ms.step(cycle)
                cycle += 1
            return ms.dram_to_cpu(done[0])

        assert read_latency(DDR3_2133) < read_latency(DDR3_1066)


class TestSimScale:
    def test_defaults(self):
        s = SimScale()
        assert s.instructions_per_core > 0
        assert s.warmup_instructions >= 0

    def test_scaled(self):
        s = SimScale().scaled(seed=9)
        assert s.seed == 9
