"""Shared fixtures: tiny deterministic systems and traces."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_disk_cache(tmp_path_factory):
    """Keep the engine's disk cache out of the user's real cache dir."""
    import os

    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old

from repro.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    SimScale,
    SystemConfig,
)
from repro.cpu.instruction import BRANCH, FP, INT, LOAD, STORE, Trace

#: A fast scale for end-to-end tests.
TEST_SCALE = SimScale(instructions_per_core=1_200, warmup_instructions=100)


@pytest.fixture
def dram_config():
    return DramConfig()


@pytest.fixture
def small_system_config():
    """A 2-core machine that runs quickly."""
    return SystemConfig(cores=2, dram=DramConfig(channels=2))


def make_compute_trace(n=500, pc_base=0):
    """Pure register compute: no memory traffic at all."""
    trace = Trace("compute")
    for i in range(n):
        trace.append(INT if i % 3 else FP, pc_base + (i % 40), 0, 1 if i else 0)
    return trace


def make_load_trace(n=300, stride=64, base=1 << 20, pc=7, dep_on_prev=False):
    """A simple strided load stream with optional serial dependence."""
    trace = Trace("loads")
    addr = base
    last_load = None
    for i in range(n):
        if i % 5 == 0:
            dep = 0
            if dep_on_prev and last_load is not None:
                dep = len(trace) - last_load
            last_load = len(trace)
            trace.append(LOAD, pc, addr, dep)
            addr += stride
        else:
            trace.append(INT, 100 + (i % 10), 0, 1)
    return trace


def make_store_trace(n=200, base=2 << 20):
    trace = Trace("stores")
    addr = base
    for i in range(n):
        if i % 4 == 0:
            trace.append(STORE, 50, addr, 0)
            addr += 64
        else:
            trace.append(INT, 60 + (i % 5), 0, 1)
    return trace


def make_branch_trace(n=400, mispredict_every=10):
    trace = Trace("branches")
    for i in range(n):
        if i % 5 == 0:
            trace.append(BRANCH, 200 + (i % 8), 0, 1, 0,
                         misp=(i % (5 * mispredict_every) == 0 and i > 0))
        else:
            trace.append(INT, 300 + (i % 16), 0, 1)
    return trace
